//! Bench: the three customer-cone computations.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::cone::CustomerCones;
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::{sanitize, SanitizeConfig};
use asrank_types::prelude::Parallelism;
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cones(c: &mut Criterion) {
    let mut group = c.benchmark_group("cones");
    group.sample_size(10);
    for (name, factor) in [("1k", 1.0), ("2k", 2.0)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 4);
        let mut cfg = SimConfig::defaults(4);
        cfg.vp_selection = VpSelection::Count(20);
        let sim = simulate(&topo, &cfg);
        let inference = infer(&sim.paths, &InferenceConfig::default());
        let clean = sanitize(&sim.paths, &SanitizeConfig::default());
        let rels = &inference.relationships;
        // Prefix tables are passed because that is how `rank` calls these
        // in the real pipeline — cone sizing is part of the measured work.
        let prefixes = &topo.ground_truth.prefixes;
        group.bench_with_input(BenchmarkId::new("recursive", name), rels, |b, rels| {
            b.iter(|| black_box(CustomerCones::recursive(rels, Some(prefixes))))
        });
        // The pre-rewrite HashSet closure — the baseline the bitset
        // implementation is measured against (acceptance: ≥ 3× faster).
        group.bench_with_input(
            BenchmarkId::new("recursive_reference", name),
            rels,
            |b, rels| {
                b.iter(|| black_box(CustomerCones::recursive_reference(rels, Some(prefixes))))
            },
        );
        // The arena engines, measured per cone flavour over the shared
        // prebuilt arena — exactly what `ConeSets::compute` pays per
        // flavour (the pipeline builds the arena once; its one-shot cost
        // is the separate `arena_build` bench below).
        let arena = clean.arena();
        group.bench_with_input(
            BenchmarkId::new("bgp_observed", name),
            &(&arena, rels),
            |b, (arena, rels)| {
                b.iter(|| {
                    black_box(CustomerCones::bgp_observed_from_arena(
                        arena,
                        rels,
                        None,
                        Parallelism::auto(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("provider_peer", name),
            &(&arena, rels),
            |b, (arena, rels)| {
                b.iter(|| {
                    black_box(CustomerCones::provider_peer_observed_from_arena(
                        arena,
                        rels,
                        None,
                        Parallelism::auto(),
                    ))
                })
            },
        );
        // The pre-arena per-AS-rescan engines (the PR1 baselines, kept as
        // proptest oracles) — the denominators of the derived
        // `bgp_observed_speedup` / `provider_peer_speedup` ratios.
        group.bench_with_input(
            BenchmarkId::new("bgp_observed_reference", name),
            &(&clean, rels),
            |b, (clean, rels)| {
                b.iter(|| black_box(CustomerCones::bgp_observed_reference(clean, rels, None)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("provider_peer_reference", name),
            &(&clean, rels),
            |b, (clean, rels)| {
                b.iter(|| {
                    black_box(CustomerCones::provider_peer_observed_reference(clean, rels, None))
                })
            },
        );
        // Arena construction alone: the one-shot cost the pipeline pays
        // once and every path-consuming stage then shares.
        group.bench_with_input(BenchmarkId::new("arena_build", name), &clean, |b, clean| {
            b.iter(|| black_box(clean.arena()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cones);
criterion_main!(benches);
