//! Bench: longest-prefix-match trie vs. a naive linear scan.

use asrank_types::{Ipv4Prefix, PrefixTrie};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn build(n: u32) -> (PrefixTrie<u32>, Vec<(Ipv4Prefix, u32)>) {
    let entries: Vec<(Ipv4Prefix, u32)> = (0..n)
        .map(|i| {
            let len = 12 + (i % 13) as u8; // /12../24
            (Ipv4Prefix::new(i.wrapping_mul(2654435761), len).unwrap(), i)
        })
        .collect();
    let trie: PrefixTrie<u32> = entries.iter().copied().collect();
    (trie, entries)
}

fn bench_trie(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_lpm");
    group.sample_size(20);
    for n in [10_000u32, 100_000] {
        let (trie, entries) = build(n);
        let queries: Vec<u32> = (0..1_000u32).map(|i| i.wrapping_mul(40503)).collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("trie", n), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    black_box(trie.lookup_addr(q));
                }
            })
        });
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("linear", n), &queries, |b, qs| {
                b.iter(|| {
                    for &q in qs {
                        black_box(
                            entries
                                .iter()
                                .filter(|(p, _)| p.contains_addr(q))
                                .max_by_key(|(p, _)| p.len()),
                        );
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trie);
criterion_main!(benches);
