//! Bench: the serve tier's zero-copy read path against owned-decode
//! baselines, plus the peak-RSS comparison the PR6 acceptance records.
//!
//! Rates (gated by `make bench-serve` via the derived
//! `serve_rel_mlookups_per_s` / `serve_cone_mchecks_per_s` families):
//!
//! * `rel_lookup` / `cone_contains` — binary searches straight over the
//!   memory-mapped frames ([`asrank_serve::ServeSnapshot`]);
//! * `rel_lookup_owned` / `cone_contains_owned` — the same query mix
//!   over fully decoded owned structures (`RelationshipMap`,
//!   `CustomerCones`), what a caller paid before the serve tier.
//!
//! Peak RSS: `VmHWM` is a per-process high-water mark, so the mapped
//! and owned loads are measured in separate child processes (the bench
//! re-execs itself with `ASRANK_SERVE_RSS_MODE` set) and emitted as
//! `serve_rss` JSON lines for the snapshot document.

use as_topology_gen::{generate, TopologyConfig};
use asrank_bench::rss::peak_rss_kb;
use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::{CacheDir, CustomerCones};
use asrank_serve::{ConeFlavor, ServeSnapshot, SourceSpec};
use asrank_types::{checksum64, Asn, RelationshipMap};
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrt_codec::{read_rib_dump_parallel, write_rib_dump};
use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Child-process entry for the RSS comparison. `cargo bench` runs one
/// process per bench binary; when the RSS env vars are present this
/// process instead loads ONE variant over an already-warm cache, prints
/// its `VmHWM`, and exits before any benchmark group runs.
fn rss_child_mode_if_requested() {
    let Ok(mode) = std::env::var("ASRANK_SERVE_RSS_MODE") else {
        return;
    };
    let rib = PathBuf::from(std::env::var("ASRANK_SERVE_RSS_RIB").unwrap_or_default());
    let cache_root = PathBuf::from(std::env::var("ASRANK_SERVE_RSS_CACHE").unwrap_or_default());
    let cfg = InferenceConfig::default();
    match mode.as_str() {
        "mapped" => {
            let spec = SourceSpec {
                rib,
                cache_root,
                cfg,
                prefixes: None,
            };
            let snap = ServeSnapshot::load(&spec, 1).expect("rss child: serve load");
            // Touch the read path so the mapped pages it needs are
            // actually resident, not just reserved.
            let mut hits = 0u64;
            for asn in 1..=4096u32 {
                hits += u64::from(snap.rank(Asn(asn)).is_some());
                hits += snap.degree(Asn(asn)).0;
            }
            black_box(hits);
        }
        "owned" => {
            let bytes = std::fs::read(&rib).expect("rss child: read rib");
            let cache = CacheDir::new(&cache_root);
            let paths = cache
                .load_paths("rib_ingest", checksum64(&bytes))
                .expect("rss child: cached path set");
            let mut snap = Snapshot::new(&paths, cfg).with_cache_dir(&cache_root);
            black_box(snap.inference().expect("rss child: inference"));
            black_box(snap.cones().expect("rss child: cones"));
        }
        other => {
            eprintln!("unknown ASRANK_SERVE_RSS_MODE {other:?}");
            std::process::exit(2);
        }
    }
    println!("rss_kb={}", peak_rss_kb().unwrap_or(0));
    std::process::exit(0);
}

struct Fixture {
    dir: PathBuf,
    spec: SourceSpec,
    serve: ServeSnapshot,
    rels: RelationshipMap,
    cone: Arc<CustomerCones>,
    rel_queries: Vec<(Asn, Asn)>,
    cone_queries: Vec<(Asn, Asn)>,
}

/// Generate the 2k-AS scenario, warm a cache exactly as
/// `asrank infer --cache-dir` would, and load both the mapped serve
/// snapshot and the owned baselines over it.
fn build_fixture() -> Fixture {
    let topo = generate(&TopologyConfig::small().scaled(2.0), 4);
    let mut sim_cfg = SimConfig::defaults(4);
    sim_cfg.vp_selection = VpSelection::Count(20);
    let sim = simulate(&topo, &sim_cfg);
    let mut bytes = Vec::new();
    write_rib_dump(&sim.paths, &mut bytes, 1_600_000_000).unwrap();

    let dir = std::env::temp_dir().join(format!("asrank_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let rib = dir.join("rib.mrt");
    std::fs::write(&rib, &bytes).unwrap();
    let cache_root = dir.join("cache");

    let cfg = InferenceConfig::default();
    let cache = CacheDir::new(&cache_root);
    let paths = read_rib_dump_parallel(&bytes, cfg.parallelism).unwrap();
    assert!(cache.store_paths("rib_ingest", checksum64(&bytes), &paths));
    let (rels, cone) = {
        let mut seed = Snapshot::new(&paths, cfg.clone()).with_cache_dir(&cache_root);
        let rels = seed.inference().unwrap().relationships.clone();
        seed.cones().unwrap();
        (rels, seed.recursive_cone().unwrap())
    };

    let spec = SourceSpec {
        rib,
        cache_root,
        cfg,
        prefixes: None,
    };
    let serve = ServeSnapshot::load(&spec, 1).unwrap();

    // Deterministic query mixes: every classified link in both orders
    // (hits), interleaved with guaranteed misses, cycled up to a fixed
    // batch size so the throughput element count is stable.
    let links: Vec<(Asn, Asn)> = rels.iter().map(|(l, _)| (l.a, l.b)).collect();
    let mut rel_queries = Vec::with_capacity(4096);
    for (i, &(a, b)) in links.iter().cycle().take(2048).enumerate() {
        rel_queries.push(if i % 2 == 0 { (a, b) } else { (b, a) });
        rel_queries.push((a, Asn(b.0.wrapping_add(1_000_000))));
    }

    let ases: Vec<Asn> = rels.ases().collect();
    let mut cone_queries = Vec::with_capacity(4096);
    for i in 0..4096usize {
        let x = ases[i % ases.len()];
        let y = ases[(i * 7 + 3) % ases.len()];
        cone_queries.push((x, y));
    }

    Fixture {
        dir,
        spec,
        serve,
        rels,
        cone,
        rel_queries,
        cone_queries,
    }
}

/// Fork the bench binary once per RSS variant and collect `VmHWM`.
fn measure_rss(fx: &Fixture) -> Option<(u64, u64)> {
    let exe = std::env::current_exe().ok()?;
    let run = |mode: &str| -> Option<u64> {
        let out = std::process::Command::new(&exe)
            .env("ASRANK_SERVE_RSS_MODE", mode)
            .env("ASRANK_SERVE_RSS_RIB", &fx.spec.rib)
            .env("ASRANK_SERVE_RSS_CACHE", &fx.spec.cache_root)
            .env_remove("CRITERION_JSON")
            .output()
            .ok()?;
        if !out.status.success() {
            eprintln!(
                "serve_rss child ({mode}) failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            return None;
        }
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find_map(|l| l.strip_prefix("rss_kb=")?.trim().parse().ok())
            .filter(|&kb| kb > 0)
    };
    Some((run("mapped")?, run("owned")?))
}

/// Record the RSS pair both to stdout and — when `CRITERION_JSON` is set
/// — as extra snapshot lines (`rss_kb` instead of `median_ns`; the
/// report binary's derived pass reads them by field name).
fn report_rss(mapped_kb: u64, owned_kb: u64) {
    println!(
        "serve_rss: mapped {mapped_kb} kB, owned {owned_kb} kB ({:.2}x)",
        owned_kb as f64 / mapped_kb as f64
    );
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    let _ = writeln!(fh, r#"{{"group":"serve_rss","bench":"mapped/2k","rss_kb":{mapped_kb}}}"#);
    let _ = writeln!(fh, r#"{{"group":"serve_rss","bench":"owned/2k","rss_kb":{owned_kb}}}"#);
}

fn bench_serve(c: &mut Criterion) {
    rss_child_mode_if_requested();
    let fx = build_fixture();

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    group.throughput(Throughput::Elements(fx.rel_queries.len() as u64));
    group.bench_function(BenchmarkId::new("rel_lookup", "2k"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &(x, y) in &fx.rel_queries {
                hits += u64::from(fx.serve.rel(x, y).is_some());
            }
            black_box(hits)
        })
    });
    group.bench_function(BenchmarkId::new("rel_lookup_owned", "2k"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &(x, y) in &fx.rel_queries {
                hits += u64::from(fx.rels.get(x, y).is_some());
            }
            black_box(hits)
        })
    });

    group.throughput(Throughput::Elements(fx.cone_queries.len() as u64));
    group.bench_function(BenchmarkId::new("cone_contains", "2k"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &(x, y) in &fx.cone_queries {
                hits += u64::from(fx.serve.cone_contains(ConeFlavor::Recursive, x, y));
            }
            black_box(hits)
        })
    });
    group.bench_function(BenchmarkId::new("cone_contains_owned", "2k"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &(x, y) in &fx.cone_queries {
                hits += u64::from(fx.cone.contains(x, y));
            }
            black_box(hits)
        })
    });
    group.finish();

    if let Some((mapped_kb, owned_kb)) = measure_rss(&fx) {
        report_rss(mapped_kb, owned_kb);
    }

    let _ = std::fs::remove_dir_all(&fx.dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
