//! Bench: MRT encode/decode throughput on RIB dumps.

use as_topology_gen::{generate, TopologyConfig};
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mrt_codec::{read_rib_dump, write_rib_dump};
use std::hint::black_box;

fn bench_mrt(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::small(), 6);
    let mut cfg = SimConfig::defaults(6);
    cfg.vp_selection = VpSelection::Count(20);
    let sim = simulate(&topo, &cfg);
    let mut encoded = Vec::new();
    write_rib_dump(&sim.paths, &mut encoded, 0).unwrap();

    let mut group = c.benchmark_group("mrt");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_rib_dump", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_rib_dump(black_box(&sim.paths), &mut buf, 0).unwrap();
            black_box(buf)
        })
    });
    group.bench_function("decode_rib_dump", |b| {
        b.iter(|| black_box(read_rib_dump(black_box(&encoded[..])).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_mrt);
criterion_main!(benches);
