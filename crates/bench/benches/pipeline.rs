//! Bench: the full ASRank pipeline (S1–S11) vs. topology size —
//! experiment E12's main series.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::pipeline::{infer, InferenceConfig};
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (name, factor, vps) in [("500", 0.5, 15), ("1k", 1.0, 20), ("2k", 2.0, 25)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 3);
        let mut cfg = SimConfig::defaults(3);
        cfg.vp_selection = VpSelection::Count(vps);
        let sim = simulate(&topo, &cfg);
        let ixps: Vec<_> = topo.ixps.iter().map(|i| i.route_server).collect();
        let icfg = InferenceConfig::with_ixps(ixps);
        group.throughput(Throughput::Elements(sim.paths.len() as u64));
        group.bench_with_input(BenchmarkId::new("infer", name), &sim.paths, |b, paths| {
            b.iter(|| black_box(infer(paths, &icfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
