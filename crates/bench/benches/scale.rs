//! Bench: the InternetScale tier — cold-`infer` wall time and elems/sec
//! at 8k/16k/42k synthetic ASes, child-process peak RSS for the 42k
//! cold run, and the cache-blocked vs full-width pair-merge comparison
//! the PR8 acceptance gates (`make bench-scale`).
//!
//! The tiers are shrunk copies of the paper's 2013 Internet preset
//! (42k ASes, 315 VPs), so the recorded elems/sec *trajectory* shows
//! whether the cold path stays linear as the topology approaches real
//! scale — the question none of the micro benches (≤ 2k ASes) answers.
//!
//! Peak RSS: `VmHWM` is a per-process high-water mark, so the 42k cold
//! infer is measured in a child process (the bench re-execs itself with
//! `ASRANK_SCALE_RSS_TIER` set, the same pattern as `benches/serve.rs`)
//! and emitted as a `scale_rss` JSON line for the snapshot document.
//!
//! The tenx tier (~400k ASes, `Scale::TenX`) rides the same machinery
//! but only when `ASRANK_SCALE_TENX=1` (`make bench-tenx`): its
//! generate + simulate setup alone runs for minutes and needs several
//! GiB, so it must not tax every `make bench-scale` invocation. When
//! enabled it records `infer/tenx`, `arena_build/tenx`, and the
//! child-process `scale_rss` line the `scale_rss_headroom/tenx` gate
//! reads.

use as_topology_gen::TopologyConfig;
use asrank_bench::harness::{scenario_inputs, Scale, Scenario};
use asrank_bench::rss::peak_rss_kb;
use asrank_core::cone::{
    bgp_raw_sweep_pairs, merge_sweep_pairs_blocked, merge_sweep_pairs_unblocked,
};
use asrank_core::pipeline::{infer, InferenceConfig};
use asrank_core::{sanitize, CustomerCones};
use asrank_types::prelude::*;
use bgp_sim::AnomalyConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrt_codec::{read_rib_dump_parallel, write_rib_dump};
use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;

/// Size tiers: (name, fraction of the 2013 Internet preset, VP count,
/// destination sample). VP counts scale roughly with topology size up
/// to the paper's 315-collector population; destination sampling keeps
/// simulation tractable exactly as `Scale::Internet` does.
const TIERS: [(&str, f64, usize, usize); 3] = [
    ("8k", 0.19, 60, 2_000),
    ("16k", 0.38, 120, 3_500),
    ("42k", 1.0, 315, 6_000),
];

/// Generate + simulate one tier (the 42k tier is exactly the
/// `Scale::Internet` scenario; the others are its scaled-down copies).
fn tier_inputs(factor: f64, vps: usize, sample: usize) -> (PathSet, InferenceConfig) {
    let scenario = Scenario {
        topology: TopologyConfig::internet_2013().scaled(factor),
        vps,
        full_feed: 116.0 / 315.0,
        anomalies: AnomalyConfig::none(),
        destination_sample: Some(sample),
        rib_cap_per_vp: None,
        seed: 42,
    };
    scenario_inputs(&scenario)
}

/// Child-process entry for the RSS measurement: decode the rib the
/// parent wrote, run one cold infer, print `VmHWM`, exit. The rib
/// round-trip keeps the child independent of the generator; the
/// default config (no IXP list) changes which ASNs sanitize drops,
/// not the shape or scale of what inference allocates.
fn rss_child_mode_if_requested() {
    let Ok(_tier) = std::env::var("ASRANK_SCALE_RSS_TIER") else {
        return;
    };
    let rib = PathBuf::from(std::env::var("ASRANK_SCALE_RSS_RIB").unwrap_or_default());
    let bytes = std::fs::read(&rib).expect("rss child: read rib");
    let paths = read_rib_dump_parallel(&bytes, Parallelism::auto()).expect("rss child: decode rib");
    black_box(infer(&paths, &InferenceConfig::default()));
    println!("rss_kb={}", peak_rss_kb().unwrap_or(0));
    std::process::exit(0);
}

/// Fork the bench binary for one tier's cold-infer RSS and read `VmHWM`.
fn measure_rss(tier: &str, rib: &PathBuf) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(&exe)
        .env("ASRANK_SCALE_RSS_TIER", tier)
        .env("ASRANK_SCALE_RSS_RIB", rib)
        .env_remove("CRITERION_JSON")
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "scale_rss child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("rss_kb=")?.trim().parse().ok())
        .filter(|&kb| kb > 0)
}

/// Record the child's peak RSS both to stdout and — when
/// `CRITERION_JSON` is set — as an extra snapshot line (`rss_kb`
/// instead of `median_ns`; the report binary's derived pass reads it
/// by field name).
fn report_rss(tier: &str, rss_kb: u64) {
    println!("scale_rss: {tier} cold infer peaked at {rss_kb} kB");
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    let _ = writeln!(
        fh,
        r#"{{"group":"scale_rss","bench":"infer/{tier}","rss_kb":{rss_kb}}}"#
    );
}

/// Write `paths` to an MRT rib in a fresh temp dir, measure a cold
/// infer over it in a child process, and record the peak. The rib
/// round-trip keeps the child's allocations independent of the parent's
/// live topology fixtures.
fn measure_and_report_rss(tier: &str, paths: &PathSet) {
    let dir = std::env::temp_dir().join(format!(
        "asrank_bench_scale_{tier}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scale bench temp dir");
    let rib = dir.join("rib.mrt");
    let mut bytes = Vec::new();
    write_rib_dump(paths, &mut bytes, 1_600_000_000).expect("write rib");
    std::fs::write(&rib, &bytes).expect("store rib");
    drop(bytes);
    if let Some(rss_kb) = measure_rss(tier, &rib) {
        report_rss(tier, rss_kb);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_scale(c: &mut Criterion) {
    rss_child_mode_if_requested();

    // Cold infer + arena build per tier. sample_size(5) bounds the 42k
    // tier (~10 s per cold run) to about a minute of samples.
    let mut fixture_42k: Option<(PathSet, InferenceConfig)> = None;
    let mut group = c.benchmark_group("scale");
    group.sample_size(5);
    for (name, factor, vps, sample) in TIERS {
        let (paths, icfg) = tier_inputs(factor, vps, sample);
        group.throughput(Throughput::Elements(paths.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("infer", name),
            &(&paths, &icfg),
            |b, (paths, icfg)| b.iter(|| black_box(infer(paths, icfg))),
        );
        // The PR8 allocation-frugality target, isolated: distinct-path
        // dedup + interning + CSR fill over the sanitized samples.
        let clean = sanitize(&paths, &icfg.sanitize);
        group.bench_with_input(BenchmarkId::new("arena_build", name), &clean, |b, clean| {
            b.iter(|| black_box(clean.arena()))
        });
        if name == "42k" {
            fixture_42k = Some((paths, icfg));
        }
    }
    group.finish();

    // Blocked vs full-width pair merge on identical 42k raw pairs (the
    // `scale_blocked_sweep_speedup` gate), plus the whole cone build
    // through both merges for the end-to-end view.
    let (paths, icfg) = fixture_42k.expect("42k tier is in TIERS");
    let inference = infer(&paths, &icfg);
    let rels = &inference.relationships;
    let clean = sanitize(&paths, &icfg.sanitize);
    let arena = clean.arena();
    let n = arena.num_ases();
    let raw = bgp_raw_sweep_pairs(&arena, rels, Parallelism::auto());
    println!(
        "scale_sweep: 42k raw pairs = {} over {} live ASes",
        raw.len(),
        n
    );

    let mut group = c.benchmark_group("scale_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raw.len() as u64));
    group.bench_function(BenchmarkId::new("merge_blocked", "42k"), |b| {
        b.iter(|| {
            black_box(merge_sweep_pairs_blocked(&raw, n, 0, Parallelism::auto()))
        })
    });
    group.bench_function(BenchmarkId::new("merge_unblocked", "42k"), |b| {
        b.iter(|| black_box(merge_sweep_pairs_unblocked(&raw, n)))
    });
    group.bench_function(BenchmarkId::new("cone_blocked", "42k"), |b| {
        b.iter(|| {
            black_box(CustomerCones::bgp_observed_from_arena_with_block(
                &arena,
                rels,
                None,
                Parallelism::auto(),
                0,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("cone_unblocked", "42k"), |b| {
        b.iter(|| {
            black_box(CustomerCones::bgp_observed_from_arena_unblocked(
                &arena,
                rels,
                None,
                Parallelism::auto(),
            ))
        })
    });
    group.finish();

    // Peak RSS of a full 42k cold infer, in its own process.
    measure_and_report_rss("42k", &paths);
    drop((paths, inference, clean, arena, raw));

    // The tenx tier, opt-in: cold infer + arena build + child RSS.
    if std::env::var("ASRANK_SCALE_TENX").as_deref() == Ok("1") {
        let scenario = Scenario::at_scale(Scale::TenX, 42);
        let (paths, icfg) = scenario_inputs(&scenario);
        println!("scale: tenx tier generated ({} samples)", paths.len());
        let mut group = c.benchmark_group("scale");
        group.sample_size(5);
        group.throughput(Throughput::Elements(paths.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("infer", "tenx"),
            &(&paths, &icfg),
            |b, (paths, icfg)| b.iter(|| black_box(infer(paths, icfg))),
        );
        let clean = sanitize(&paths, &icfg.sanitize);
        group.bench_with_input(
            BenchmarkId::new("arena_build", "tenx"),
            &clean,
            |b, clean| b.iter(|| black_box(clean.arena())),
        );
        group.finish();
        drop(clean);
        measure_and_report_rss("tenx", &paths);
    }
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
