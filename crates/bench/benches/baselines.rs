//! Bench: baseline inference algorithms vs. ASRank on identical inputs
//! (the cost side of experiment E4).

use as_topology_gen::{generate, TopologyConfig};
use asrank_baselines::Baseline;
use asrank_core::pipeline::{infer, InferenceConfig};
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::small(), 7);
    let mut cfg = SimConfig::defaults(7);
    cfg.vp_selection = VpSelection::Count(20);
    let sim = simulate(&topo, &cfg);

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("infer", "asrank"), |b| {
        b.iter(|| black_box(infer(&sim.paths, &InferenceConfig::default())))
    });
    for baseline in Baseline::all() {
        group.bench_function(BenchmarkId::new("infer", baseline.name()), |b| {
            b.iter(|| black_box(baseline.run(&sim.paths)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
