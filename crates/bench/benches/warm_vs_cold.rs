//! Bench: full-pipeline wall time, cold (decode the RIB + run every
//! engine stage) vs warm (decoded path set and every stage artifact
//! served from a populated `--cache-dir`).
//!
//! This is the repeat-run experience the persistent cache buys: the cold
//! bench is what every invocation used to cost; the warm bench is the
//! cost of a re-run over unchanged inputs.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::CacheDir;
use asrank_types::checksum64;
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrt_codec::{read_rib_dump_parallel, write_rib_dump};
use std::hint::black_box;

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_vs_cold");
    group.sample_size(10);

    let topo = generate(&TopologyConfig::small().scaled(2.0), 4);
    let mut sim_cfg = SimConfig::defaults(4);
    sim_cfg.vp_selection = VpSelection::Count(20);
    let sim = simulate(&topo, &sim_cfg);
    let mut bytes = Vec::new();
    write_rib_dump(&sim.paths, &mut bytes, 1_600_000_000).unwrap();
    let cfg = InferenceConfig::default();

    // Cold: decode the dump and materialize every stage, no cache.
    group.bench_with_input(BenchmarkId::new("cold", "2k"), &bytes, |b, bytes| {
        b.iter(|| {
            let paths = read_rib_dump_parallel(bytes, cfg.parallelism).unwrap();
            let mut snap = Snapshot::new(&paths, cfg.clone());
            black_box(snap.cones().unwrap());
            black_box(snap.inference().unwrap());
        })
    });

    // Warm: pre-populate the cache exactly as a first CLI run would
    // (decoded path set keyed by file checksum + every stage artifact),
    // then measure a fresh process-shaped run served entirely from disk.
    let dir = std::env::temp_dir().join(format!("asrank_bench_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CacheDir::new(&dir);
    let key = checksum64(&bytes);
    let paths = read_rib_dump_parallel(&bytes, cfg.parallelism).unwrap();
    assert!(cache.store_paths("rib_ingest", key, &paths));
    {
        let mut seed = Snapshot::new(&paths, cfg.clone()).with_cache_dir(&dir);
        seed.cones().unwrap();
        seed.inference().unwrap();
    }

    group.bench_with_input(BenchmarkId::new("warm", "2k"), &bytes, |b, bytes| {
        b.iter(|| {
            let cache = CacheDir::new(&dir);
            let paths = cache.load_paths("rib_ingest", checksum64(bytes)).unwrap();
            let mut snap = Snapshot::new(&paths, cfg.clone()).with_cache_dir(&dir);
            black_box(snap.cones().unwrap());
            black_box(snap.inference().unwrap());
        })
    });

    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
