//! Bench: jackknife stability (many re-inferences) — the most expensive
//! analysis in the toolbox.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::pipeline::InferenceConfig;
use asrank_core::stability::jackknife;
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_stability(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::tiny(), 8);
    let mut cfg = SimConfig::defaults(8);
    cfg.vp_selection = VpSelection::Count(10);
    let sim = simulate(&topo, &cfg);

    let mut group = c.benchmark_group("stability");
    group.sample_size(10);
    for subsamples in [4usize, 8] {
        group.bench_function(format!("jackknife_{subsamples}"), |b| {
            b.iter(|| {
                black_box(jackknife(
                    &sim.paths,
                    &InferenceConfig::default(),
                    subsamples,
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stability);
criterion_main!(benches);
