//! Bench: S1 path sanitization throughput vs. dataset size and artifact
//! density.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::{sanitize, SanitizeConfig};
use bgp_sim::{simulate, AnomalyConfig, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sanitize(c: &mut Criterion) {
    let mut group = c.benchmark_group("sanitize");
    group.sample_size(20);
    for (name, factor) in [("1k", 1.0), ("2k", 2.0)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 1);
        let clique = topo.ground_truth.clique();
        let mut cfg = SimConfig::defaults(1);
        cfg.vp_selection = VpSelection::Count(20);
        cfg.anomalies = AnomalyConfig::realistic(clique);
        let sim = simulate(&topo, &cfg);
        let ixps: Vec<_> = topo.ixps.iter().map(|i| i.route_server).collect();
        let scfg = SanitizeConfig::with_ixps(ixps);
        group.throughput(Throughput::Elements(sim.paths.len() as u64));
        group.bench_with_input(BenchmarkId::new("paths", name), &sim.paths, |b, paths| {
            b.iter(|| black_box(sanitize(paths, &scfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sanitize);
criterion_main!(benches);
