//! Bench: incremental delta runs vs the cold pipeline at the 8k tier
//! (`make bench-delta`).
//!
//! A long-lived [`DeltaSession`] absorbs an update batch and refreshes;
//! the question is what fraction of a cold run that refresh costs at
//! realistic churn. Three churn points:
//!
//! * `delta_1pct` — 1% of the samples re-announced as path *swaps* that
//!   preserve the distinct path set and the per-`(vp, first hop)`
//!   evidence: the dirty set is exactly S1 + the arena fast path + the
//!   S6 counter re-classification, everything else is injected. This is
//!   the PR9 acceptance point (`delta_over_cold_ratio/1pct <= 0.10`).
//! * `delta_5pct` / `delta_20pct` — mixed withdraw + never-seen-path
//!   churn that dirties the path structure, so most of the DAG
//!   recomputes. `delta_20pct` is gated at `<= 1.0`: even when every
//!   stage re-runs, the session must not cost *more* than a cold
//!   rebuild.
//!
//! Measured crossover for the dirty-fraction cutover
//! (`InferenceConfig::delta_cold_cutover`): **none up to 20% churn**.
//! The session's maintained evidence keeps the walk's S1 (fate
//! reassembly), S2 (link-refcount ledger), arena (slot
//! canonicalization), and S6 (counter re-classification) strictly
//! cheaper than their cold scans, and every other stage runs the same
//! body either way — so the walk undercuts a cold rebuild at every
//! churn point this bench exercises, and the cutover defaults to off
//! (`1.0`). Routing high-churn refreshes through a cold rebuild was
//! measured *slower* (~1.5-1.8x the walk at 20%) because it forfeits
//! those provider savings. What actually fixed the former
//! `delta_20pct` regression (1.10 in the PR9 record) was making the
//! evidence cheaper to maintain and consume: the flattened S6
//! triple-sort, the S2 degree ledger, and `apply`'s in-place
//! compaction with index fix-up instead of a rebuild.
//!
//! The vendored criterion has no `iter_batched`, so each delta bench
//! alternates a forward batch with its exact inverse — every timed
//! iteration is a real churn-then-refresh cycle and the session returns
//! to the base state every second iteration, with nothing cloned inside
//! the timed path.

use as_topology_gen::TopologyConfig;
use asrank_bench::harness::{scenario_inputs, Scenario};
use asrank_core::delta::DeltaSession;
use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_types::prelude::*;
use asrank_types::{PathDelta, UpdateBatch};
use bgp_sim::AnomalyConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;

/// The 8k scale tier (same parameters as `benches/scale.rs`).
fn tier_inputs() -> (PathSet, InferenceConfig) {
    let scenario = Scenario {
        topology: TopologyConfig::internet_2013().scaled(0.19),
        vps: 60,
        full_feed: 116.0 / 315.0,
        anomalies: AnomalyConfig::none(),
        destination_sample: Some(2_000),
        rib_cap_per_vp: None,
        seed: 42,
    };
    scenario_inputs(&scenario)
}

/// Deterministic churn-site picker (splitmix-style LCG) — the batches
/// must be identical run to run for the recorded medians to be
/// comparable across snapshots.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Paths the sanitizer passes through untouched: no repeated ASN (no
/// loop to discard, no prepending to compress) and at least three hops.
/// Swapping between such paths leaves every sanitize counter unchanged.
fn is_simple(path: &AsPath) -> bool {
    let h = &path.0;
    h.len() >= 3 && (1..h.len()).all(|i| !h[..i].contains(&h[i]))
}

/// A churn batch plus its exact inverse (applying `forward` then
/// `backward` returns the session to its starting state).
struct ChurnPair {
    forward: UpdateBatch,
    backward: UpdateBatch,
}

/// Multiplicity-preserving 1% churn: for ~`len/100` samples, re-announce
/// the key with the raw path of another sample that shares the same
/// first two hops (so `(vp, first hop)` evidence totals are unchanged)
/// and whose own path stays in the set. A path retired `r` times across
/// the batch needs `r + 1` original occurrences — then its live count
/// stays positive at every intermediate point of the batch application
/// (in either direction, in any sample order), so the distinct path set
/// never changes and only multiplicities move.
fn swap_churn(paths: &PathSet, fraction_pct: usize) -> ChurnPair {
    let samples: Vec<&PathSample> = paths.iter().collect();
    let mut occurrences: HashMap<&AsPath, u32> = HashMap::new();
    for s in &samples {
        *occurrences.entry(&s.path).or_default() += 1;
    }
    // Candidate pools keyed by the first two hops, simple paths only.
    let mut pools: HashMap<(Asn, Asn), Vec<usize>> = HashMap::new();
    for (i, s) in samples.iter().enumerate() {
        if is_simple(&s.path) {
            pools.entry((s.path.0[0], s.path.0[1])).or_default().push(i);
        }
    }

    let target = samples.len() * fraction_pct / 100;
    let mut rng = Lcg::new(0x9e37_79b9_97f4_a7c5);
    let mut used: HashSet<(Asn, Ipv4Prefix)> = HashSet::new();
    let mut retired: HashMap<&AsPath, u32> = HashMap::new();
    let mut forward = Vec::new();
    let mut backward = Vec::new();
    let mut attempts = 0usize;
    while forward.len() < target && attempts < samples.len() * 20 {
        attempts += 1;
        let i = (rng.next() as usize) % samples.len();
        let s = samples[i];
        if !is_simple(&s.path) || used.contains(&(s.vp, s.prefix)) {
            continue;
        }
        // Cap total retirements of this path at occurrences - 1: the
        // worst-case interleaving leaves at least one live copy.
        if retired.get(&s.path).copied().unwrap_or(0) + 1 >= occurrences[&s.path] {
            continue;
        }
        let pool = &pools[&(s.path.0[0], s.path.0[1])];
        let j = pool[(rng.next() as usize) % pool.len()];
        if samples[j].path == s.path {
            continue;
        }
        used.insert((s.vp, s.prefix));
        *retired.entry(&s.path).or_default() += 1;
        forward.push((s.vp, s.prefix, PathDelta::Announce(samples[j].path.clone())));
        backward.push((s.vp, s.prefix, PathDelta::Announce(s.path.clone())));
    }
    assert!(
        forward.len() * 2 >= target,
        "swap churn could only build {}/{} entries",
        forward.len(),
        target
    );
    ChurnPair {
        forward: UpdateBatch::from_deltas(forward),
        backward: UpdateBatch::from_deltas(backward),
    }
}

/// Mixed structural churn: half withdraws of live keys, half
/// announcements of never-seen paths under fresh prefixes. Both halves
/// change the distinct path set, so the refresh pays the
/// structure-dirty pipeline.
fn mixed_churn(paths: &PathSet, fraction_pct: usize) -> ChurnPair {
    let samples: Vec<&PathSample> = paths.iter().collect();
    let target = samples.len() * fraction_pct / 100;
    let mut rng = Lcg::new(0x0123_4567_89ab_cdef);
    let mut used: HashSet<(Asn, Ipv4Prefix)> = HashSet::new();
    let mut forward = Vec::new();
    let mut backward = Vec::new();
    for k in 0..target {
        if k % 2 == 0 {
            // Withdraw a live key (re-announced exactly on the way back).
            loop {
                let i = (rng.next() as usize) % samples.len();
                let s = samples[i];
                if used.insert((s.vp, s.prefix)) {
                    forward.push((s.vp, s.prefix, PathDelta::Withdraw));
                    backward.push((s.vp, s.prefix, PathDelta::Announce(s.path.clone())));
                    break;
                }
            }
        } else {
            // A brand-new path (unique trailing ASN) under a fresh /24.
            let i = (rng.next() as usize) % samples.len();
            let s = samples[i];
            let mut hops: Vec<u32> = s.path.0.iter().map(|a| a.0).collect();
            hops.push(3_000_000 + k as u32);
            let prefix = Ipv4Prefix::new(0xC600_0000 | ((k as u32) << 8), 24)
                .expect("fresh bench prefix");
            forward.push((s.vp, prefix, PathDelta::Announce(AsPath::from_u32s(hops))));
            backward.push((s.vp, prefix, PathDelta::Withdraw));
        }
    }
    ChurnPair {
        forward: UpdateBatch::from_deltas(forward),
        backward: UpdateBatch::from_deltas(backward),
    }
}

fn bench_delta(c: &mut Criterion) {
    let (paths, cfg) = tier_inputs();
    let mut group = c.benchmark_group("delta");
    group.sample_size(10);

    // Cold: every stage plus the three cones from scratch — the
    // denominator of every delta_over_cold ratio.
    group.bench_with_input(BenchmarkId::new("cold", "8k"), &paths, |b, paths| {
        b.iter(|| {
            let mut snap = Snapshot::new(paths, cfg.clone());
            black_box(snap.inference().unwrap());
            black_box(snap.cones().unwrap());
        })
    });

    let churns: [(&str, ChurnPair); 3] = [
        ("delta_1pct", swap_churn(&paths, 1)),
        ("delta_5pct", mixed_churn(&paths, 5)),
        ("delta_20pct", mixed_churn(&paths, 20)),
    ];
    for (name, pair) in churns {
        let mut session = DeltaSession::new(paths.clone(), cfg.clone()).expect("delta session");
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new(name, "8k"), &pair, |b, pair| {
            b.iter(|| {
                let batch = if flip { &pair.backward } else { &pair.forward };
                flip = !flip;
                session.apply(batch).expect("apply");
                black_box(session.refresh().expect("refresh"))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
