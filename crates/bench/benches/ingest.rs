//! Bench: MRT RIB decode throughput, sequential streaming reader vs the
//! parallel byte-range reader (`ingest` group — MB/s via the declared
//! byte throughput).

use as_topology_gen::{generate, TopologyConfig};
use asrank_types::prelude::Parallelism;
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrt_codec::{read_rib_dump, read_rib_dump_parallel, write_rib_dump};
use std::hint::black_box;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for (name, factor) in [("1k", 1.0), ("2k", 2.0)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 4);
        let mut cfg = SimConfig::defaults(4);
        cfg.vp_selection = VpSelection::Count(20);
        let sim = simulate(&topo, &cfg);
        let mut bytes = Vec::new();
        write_rib_dump(&sim.paths, &mut bytes, 1_600_000_000).unwrap();
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(BenchmarkId::new("sequential", name), &bytes, |b, bytes| {
            b.iter(|| black_box(read_rib_dump(&bytes[..]).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", name), &bytes, |b, bytes| {
            b.iter(|| {
                black_box(read_rib_dump_parallel(bytes, Parallelism::threads(4)).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
