//! Bench: per-destination Gao-Rexford route propagation — the
//! simulator's hot loop.

use as_topology_gen::{generate, TopologyConfig};
use asrank_types::Parallelism;
use bgp_sim::{
    propagate::{compute_route_tree, compute_route_trees},
    PolicyGraph,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    for (name, factor) in [("1k", 1.0), ("4k", 4.0)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 5);
        let g = PolicyGraph::new(&topo.ground_truth);
        let dests: Vec<u32> = (0..g.len() as u32).step_by(97).take(16).collect();
        group.throughput(Throughput::Elements(dests.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("route_tree", name),
            &(&g, &dests),
            |b, (g, dests)| {
                b.iter(|| {
                    for &d in dests.iter() {
                        black_box(compute_route_tree(g, d, None));
                    }
                })
            },
        );
        // Batch API fanning the same destinations over worker threads.
        group.bench_with_input(
            BenchmarkId::new("route_trees_batch", name),
            &(&g, &dests),
            |b, (g, dests)| {
                b.iter(|| black_box(compute_route_trees(g, dests, None, Parallelism::auto())))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
