//! Bench: S2+S3 — degree computation and Bron-Kerbosch clique inference.

use as_topology_gen::{generate, TopologyConfig};
use asrank_core::{infer_clique, sanitize, CliqueConfig, DegreeTable, SanitizeConfig};
use bgp_sim::{simulate, SimConfig, VpSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique");
    group.sample_size(20);
    for (name, factor) in [("1k", 1.0), ("2k", 2.0)] {
        let topo = generate(&TopologyConfig::small().scaled(factor), 2);
        let mut cfg = SimConfig::defaults(2);
        cfg.vp_selection = VpSelection::Count(20);
        let sim = simulate(&topo, &cfg);
        let clean = sanitize(&sim.paths, &SanitizeConfig::default());
        group.bench_with_input(BenchmarkId::new("degrees", name), &clean, |b, clean| {
            b.iter(|| black_box(DegreeTable::compute(clean)))
        });
        let degrees = DegreeTable::compute(&clean);
        group.bench_with_input(
            BenchmarkId::new("bron_kerbosch", name),
            &(&clean, &degrees),
            |b, (clean, degrees)| {
                b.iter(|| black_box(infer_clique(clean, degrees, &CliqueConfig::default())))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
