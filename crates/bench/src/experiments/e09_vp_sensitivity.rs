//! E9 — visibility: inference quality vs. number of vantage points
//! (paper analog: the discussion of VP coverage and peering-link
//! invisibility).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::evaluate_against_truth;

/// Produce the E9 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let truth = &wb.topo.ground_truth.relationships;
    let (true_c2p, true_p2p, _) = truth.counts();

    let sweeps: &[usize] = match scale {
        Scale::Tiny => &[2, 4, 8],
        Scale::Small => &[5, 10, 20, 40, 80],
        _ => &[10, 40, 120, 315],
    };

    let mut t = Table::new([
        "VPs",
        "c2p PPV",
        "p2p PPV",
        "links seen",
        "c2p seen",
        "p2p seen",
    ]);
    for &vps in sweeps {
        let (_sim, inf) = wb.with_vps(vps);
        let r = evaluate_against_truth(&inf.relationships, truth);
        let c2p_seen = r.confusion[0].iter().sum::<usize>();
        let p2p_seen = r.confusion[1].iter().sum::<usize>();
        t.row([
            vps.to_string(),
            pct(r.c2p_ppv()),
            pct(r.p2p_ppv()),
            pct((r.c2p.1 + r.p2p.1) as f64 / truth.len() as f64),
            pct(c2p_seen as f64 / true_c2p.max(1) as f64),
            pct(p2p_seen as f64 / true_p2p.max(1) as f64),
        ]);
    }
    format!(
        "E9: sensitivity to vantage-point count (paper: peering links \
         are visible only near their endpoints, so p2p coverage rises \
         sharply with VPs while c2p saturates early)\n\n{}",
        t.render()
    )
}
