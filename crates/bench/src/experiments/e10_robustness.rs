//! E10 — robustness to path artifacts (paper analog: the sanitization /
//! poisoned-path discussion: inference quality must degrade gracefully).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::evaluate_against_truth;
use bgp_sim::AnomalyConfig;

/// Produce the E10 report: PPV under increasing artifact rates.
pub fn run(scale: Scale, seed: u64) -> String {
    let mut t = Table::new([
        "poison/leak rate",
        "c2p PPV",
        "p2p PPV",
        "paths discarded",
        "poisoned discarded",
    ]);
    for &rate in &[0.0, 0.001, 0.005, 0.02] {
        let mut scenario = Scenario::at_scale(scale, seed);
        let clique_guess = scenario.topology.mix.tier1;
        scenario.anomalies = AnomalyConfig {
            leak_prob: rate / 10.0,
            poison_prob: rate,
            prepend_prob: 0.02,
            rs_insertion_prob: 0.3,
            // The poisoner forges prominent ASNs; clique members are the
            // lowest ASNs by construction in the generator.
            poison_pool: (1..=clique_guess as u32).map(asrank_types::Asn).collect(),
        };
        let wb = Workbench::build(scenario);
        let r = evaluate_against_truth(
            &wb.inference.relationships,
            &wb.topo.ground_truth.relationships,
        );
        let rep = &wb.inference.report;
        let discarded = rep.sanitize.input_paths - rep.sanitize.output_paths;
        t.row([
            format!("{rate}"),
            pct(r.c2p_ppv()),
            pct(r.p2p_ppv()),
            discarded.to_string(),
            rep.discarded_poisoned.to_string(),
        ]);
    }
    format!(
        "E10: robustness to injected artifacts (paper: sanitization and \
         the poisoned-path discard keep PPV high under real-world noise)\n\n{}",
        t.render()
    )
}
