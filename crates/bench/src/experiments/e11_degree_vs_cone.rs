//! E11 — transit degree vs. customer cone (paper analog: the observation
//! that cone size and transit degree correlate strongly but diverge for
//! peering-heavy networks).

use crate::harness::{Scale, Scenario, Workbench};
use crate::sanitized;
use crate::table::{f, Table};
use asrank_core::centrality::transit_centrality;
use asrank_core::cone::CustomerCones;
use asrank_core::rank::{rank_ases, spearman};

/// Produce the E11 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let clean = sanitized(&wb);
    let cones = CustomerCones::recursive(&wb.inference.relationships, None);
    let degrees = &wb.inference.degrees;
    let centrality = transit_centrality(&clean);

    let xs: Vec<(asrank_types::Asn, f64)> = cones
        .iter_sizes()
        .map(|(a, s)| (a, s.ases as f64))
        .collect();
    let ys: Vec<(asrank_types::Asn, f64)> = xs
        .iter()
        .map(|&(a, _)| (a, degrees.transit_degree(a) as f64))
        .collect();
    let rho = spearman(&xs, &ys).unwrap_or(f64::NAN);

    // Centrality correlation alongside the degree correlation.
    let zs: Vec<(asrank_types::Asn, f64)> =
        xs.iter().map(|&(a, _)| (a, centrality.score(a))).collect();
    let rho_centrality = spearman(&xs, &zs).unwrap_or(f64::NAN);

    let ranked = rank_ases(&cones, degrees);
    let mut t = Table::new([
        "cone rank",
        "asn",
        "cone (ASes)",
        "transit degree",
        "degree rank",
        "centrality",
    ]);
    for row in ranked.iter().take(10) {
        let drank = degrees
            .position(row.asn)
            .map(|p| (p + 1).to_string())
            .unwrap_or_else(|| "-".into());
        t.row([
            row.rank.to_string(),
            row.asn.to_string(),
            row.cone.ases.to_string(),
            row.transit_degree.to_string(),
            drank,
            f(centrality.score(row.asn), 3),
        ]);
    }
    format!(
        "E11: transit degree vs customer cone (paper: strong but \
         imperfect rank correlation); transit centrality added as the \
         follow-on-work contrast\n\nSpearman rho (cone vs degree) = {}\n\
         Spearman rho (cone vs centrality) = {}\n\n{}",
        f(rho, 3),
        f(rho_centrality, 3),
        t.render()
    )
}
