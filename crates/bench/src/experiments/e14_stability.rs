//! E14 — inference stability vs. link visibility.
//!
//! The follow-on claim the paper's error analysis gestures at: links
//! seen by few vantage points are exactly the ones whose classification
//! flips under resampling. A jackknife over half-VP subsamples makes it
//! measurable.

use crate::harness::{Scale, Scenario, Workbench};
use crate::sanitized;
use crate::table::{f, pct, Table};
use asrank_core::pipeline::InferenceConfig;
use asrank_core::stability::jackknife;
use asrank_core::visibility::VisibilityTable;
use asrank_types::Asn;

/// Produce the E14 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let ixps: Vec<Asn> = wb.topo.ixps.iter().map(|i| i.route_server).collect();
    let cfg = InferenceConfig::with_ixps(ixps);
    let subsamples = 8;
    let report = jackknife(&wb.sim.paths, &cfg, subsamples, seed);
    let visibility = VisibilityTable::compute(&sanitized(&wb));

    // Bucket agreement by VP visibility.
    let buckets: [(&str, usize, usize); 4] = [
        ("1 VP", 1, 1),
        ("2–5", 2, 5),
        ("6–20", 6, 20),
        (">20", 21, usize::MAX),
    ];
    let mut t = Table::new(["visibility", "links", "mean agreement", "unstable (<90%)"]);
    for (label, lo, hi) in buckets {
        let mut agreements = Vec::new();
        let mut unstable = 0usize;
        for (link, stab) in report.iter() {
            let Some(vis) = visibility.get(link.a, link.b) else {
                continue;
            };
            if vis.vps < lo || vis.vps > hi || stab.observed == 0 {
                continue;
            }
            let a = stab.agreement();
            agreements.push(a);
            if a < 0.9 {
                unstable += 1;
            }
        }
        let mean = if agreements.is_empty() {
            1.0
        } else {
            agreements.iter().sum::<f64>() / agreements.len() as f64
        };
        t.row([
            label.to_string(),
            agreements.len().to_string(),
            f(mean, 3),
            unstable.to_string(),
        ]);
    }
    format!(
        "E14: inference stability (jackknife over {} half-VP subsamples) \
         vs. link visibility — weakly-observed links are the unstable \
         tail\n\nmean agreement overall: {}\n\n{}",
        subsamples,
        pct(report.mean_agreement()),
        t.render()
    )
}
