//! E2 — validation corpus composition (paper analog: the validation-data
//! table: assertion counts per source, split by relationship kind).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::ValidationSource;

/// Produce the E2 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let truth = &wb.topo.ground_truth.relationships;
    let mut t = Table::new(["source", "assertions", "c2p", "p2p", "corpus error"]);
    for source in [
        ValidationSource::DirectReport,
        ValidationSource::Rpsl,
        ValidationSource::Communities,
    ] {
        let (c2p, p2p, _) = wb.corpus.counts(source);
        let only: asrank_validation::ValidationCorpus = asrank_validation::ValidationCorpus {
            assertions: wb.corpus.from_source(source).copied().collect(),
        };
        t.row([
            source.name().to_string(),
            (c2p + p2p).to_string(),
            c2p.to_string(),
            p2p.to_string(),
            pct(only.corpus_error(truth)),
        ]);
    }
    format!(
        "E2: validation corpus composition (paper: direct reports are the \
         smallest/cleanest source; RPSL is c2p-heavy and stale; communities \
         are the largest and p2p-rich)\n\n{}",
        t.render()
    )
}
