//! E3 — the headline result: PPV of ASRank inferences against each
//! validation source, plus full-ground-truth scoring (paper: ≈99.6 %
//! c2p, ≈98.7 % p2p PPV against its corpus).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::{evaluate_against_corpus, evaluate_against_truth};

/// Produce the E3 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let rows = evaluate_against_corpus(&wb.inference.relationships, &wb.corpus);
    let mut t = Table::new(["source", "c2p PPV", "(n)", "p2p PPV", "(n)", "unobserved"]);
    for r in &rows {
        t.row([
            r.source.name().to_string(),
            pct(r.c2p_ppv()),
            r.c2p.1.to_string(),
            pct(r.p2p_ppv()),
            r.p2p.1.to_string(),
            r.unobserved.to_string(),
        ]);
    }
    let gt = evaluate_against_truth(
        &wb.inference.relationships,
        &wb.topo.ground_truth.relationships,
    );
    let mut g = Table::new(["metric", "value"]);
    g.row(["c2p PPV (full ground truth)", &pct(gt.c2p_ppv())]);
    g.row(["c2p inferences scored", &gt.c2p.1.to_string()]);
    g.row([
        "  of which reversed orientation",
        &gt.reversed_c2p.to_string(),
    ]);
    g.row(["p2p PPV (full ground truth)", &pct(gt.p2p_ppv())]);
    g.row(["p2p inferences scored", &gt.p2p.1.to_string()]);
    g.row(["link coverage of ground truth", &pct(gt.coverage())]);
    g.row(["phantom links (artifacts)", &gt.phantom_links.to_string()]);
    g.row([
        "c2p cycles detected (S11)",
        &wb.inference.report.cycle_links.to_string(),
    ]);
    format!(
        "E3: inference PPV (paper headline: 99.6% c2p / 98.7% p2p against \
         its corpus)\n\nAgainst emulated validation sources:\n{}\nAgainst \
         full ground truth (impossible for the paper):\n{}",
        t.render(),
        g.render()
    )
}
