//! E13 — corpus bias, quantified.
//!
//! The paper could only *discuss* how representative its validation
//! corpus was; with ground truth we can measure it. For each source we
//! compare the PPV the corpus *reports* against the PPV the same
//! inferences achieve on the full ground truth, and the corpus's own
//! error rate. The gap is the bias a real-world validation study
//! inherits silently.

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::{evaluate_against_corpus, evaluate_against_truth, ValidationSource};

/// Produce the E13 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let truth = &wb.topo.ground_truth.relationships;
    let gt = evaluate_against_truth(&wb.inference.relationships, truth);
    let rows = evaluate_against_corpus(&wb.inference.relationships, &wb.corpus);

    let mut t = Table::new([
        "source",
        "corpus error",
        "c2p PPV (corpus)",
        "c2p PPV (truth)",
        "bias",
    ]);
    for r in &rows {
        let only = asrank_validation::ValidationCorpus {
            assertions: wb.corpus.from_source(r.source).copied().collect(),
        };
        let corpus_err = only.corpus_error(truth);
        let bias = r.c2p_ppv() - gt.c2p_ppv();
        t.row([
            r.source.name().to_string(),
            pct(corpus_err),
            pct(r.c2p_ppv()),
            pct(gt.c2p_ppv()),
            format!("{:+.1} pp", bias * 100.0),
        ]);
    }

    // Coverage bias: which link population does each source sample?
    let mut cov = Table::new(["source", "assertions", "share of all links", "p2p share"]);
    let total_links = truth.len();
    for source in [
        ValidationSource::DirectReport,
        ValidationSource::Rpsl,
        ValidationSource::Communities,
    ] {
        let (c2p, p2p, s2s) = wb.corpus.counts(source);
        let n = c2p + p2p + s2s;
        cov.row([
            source.name().to_string(),
            n.to_string(),
            pct(n as f64 / total_links.max(1) as f64),
            pct(p2p as f64 / n.max(1) as f64),
        ]);
    }
    let (tc2p, tp2p, ts2s) = truth.counts();
    format!(
        "E13: validation-corpus bias (the gap between corpus-reported PPV \
         and true PPV — measurable only with ground truth)\n\n{}\nCoverage \
         bias (ground truth: {} links, {:.1}% p2p):\n{}",
        t.render(),
        tc2p + tp2p + ts2s,
        100.0 * tp2p as f64 / (tc2p + tp2p + ts2s).max(1) as f64,
        cov.render()
    )
}
