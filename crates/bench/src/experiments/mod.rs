//! Experiment implementations `e1`–`e11`.
//!
//! Each experiment regenerates one table/figure analog of the paper (see
//! the experiment index in `DESIGN.md`) as formatted text. All accept
//! `(Scale, seed)` so reports are reproducible and cheap at small scale.

pub mod e01_data_stats;
pub mod e02_corpus;
pub mod e03_ppv;
pub mod e04_comparison;
pub mod e05_clique;
pub mod e06_cone_ccdf;
pub mod e07_cone_divergence;
pub mod e08_flattening;
pub mod e09_vp_sensitivity;
pub mod e10_robustness;
pub mod e11_degree_vs_cone;
pub mod e12_ablation;
pub mod e13_corpus_bias;
pub mod e14_stability;
pub mod e15_error_locus;

use crate::harness::Scale;

/// Run an experiment by id (`"e1"`…`"e15"`). Returns `None` for unknown
/// ids.
pub fn run(id: &str, scale: Scale, seed: u64) -> Option<String> {
    Some(match id {
        "e1" => e01_data_stats::run(scale, seed),
        "e2" => e02_corpus::run(scale, seed),
        "e3" => e03_ppv::run(scale, seed),
        "e4" => e04_comparison::run(scale, seed),
        "e5" => e05_clique::run(scale, seed),
        "e6" => e06_cone_ccdf::run(scale, seed),
        "e7" => e07_cone_divergence::run(scale, seed),
        "e8" => e08_flattening::run(seed),
        "e9" => e09_vp_sensitivity::run(scale, seed),
        "e10" => e10_robustness::run(scale, seed),
        "e11" => e11_degree_vs_cone::run(scale, seed),
        "e12" => e12_ablation::run(scale, seed),
        "e13" => e13_corpus_bias::run(scale, seed),
        "e14" => e14_stability::run(scale, seed),
        "e15" => e15_error_locus::run(scale, seed),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("e99", Scale::Tiny, 1).is_none());
    }

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        for id in ALL {
            let out = run(id, Scale::Tiny, 7).unwrap();
            assert!(
                out.len() > 40,
                "experiment {id} produced suspiciously little output: {out:?}"
            );
        }
    }
}
