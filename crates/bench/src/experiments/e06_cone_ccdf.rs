//! E6 — customer cone size distributions for the three definitions
//! (paper analog: the cone-size CCDF figure).

use crate::harness::{Scale, Scenario, Workbench};
use crate::sanitized;
use crate::table::{pct, Table};
use asrank_core::cone::ConeSets;

/// Produce the E6 report: CCDF points and quantiles per definition.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let clean = sanitized(&wb);
    let cones = ConeSets::compute(
        &clean,
        &wb.inference.relationships,
        Some(&wb.topo.ground_truth.prefixes),
    );

    let defs: [(&str, &asrank_core::CustomerCones); 3] = [
        ("recursive", &cones.recursive),
        ("bgp-observed", &cones.bgp_observed),
        ("provider/peer", &cones.provider_peer_observed),
    ];

    let thresholds = [2usize, 5, 10, 50, 100, 1000];
    let mut t = Table::new({
        let mut h = vec![
            "definition".to_string(),
            "max".to_string(),
            "p99".to_string(),
        ];
        h.extend(thresholds.iter().map(|k| format!("P(cone>={k})")));
        h
    });
    for (name, c) in defs {
        let mut sizes: Vec<usize> = c.iter_sizes().map(|(_, s)| s.ases).collect();
        sizes.sort_unstable();
        let n = sizes.len().max(1);
        let p99 = sizes[(n * 99 / 100).min(n - 1)];
        let max = sizes.last().copied().unwrap_or(0);
        let mut row = vec![name.to_string(), max.to_string(), p99.to_string()];
        for &k in &thresholds {
            let ge = sizes.iter().filter(|&&s| s >= k).count();
            row.push(pct(ge as f64 / n as f64));
        }
        t.row(row);
    }
    format!(
        "E6: customer cone CCDF by definition (paper: the observed \
         definitions trade recall for robustness; heavy tail at the top)\n\n{}",
        t.render()
    )
}
