//! E15 — where the errors live: PPV broken down by the structural
//! classes of the link endpoints (the paper's error analysis localizes
//! mistakes to the edge and to peering-dense networks).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_validation::ppv_by_class;

/// Produce the E15 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let rows = ppv_by_class(
        &wb.inference.relationships,
        &wb.topo.ground_truth.relationships,
        &wb.topo.ground_truth.classes,
    );
    let mut t = Table::new(["link class", "links", "correct", "PPV"]);
    // Sort worst-first so the error locus leads.
    let mut rows = rows;
    rows.sort_by(|a, b| {
        let pa = a.1 as f64 / a.2.max(1) as f64;
        let pb = b.1 as f64 / b.2.max(1) as f64;
        pa.partial_cmp(&pb).unwrap().then_with(|| a.0.cmp(&b.0))
    });
    for (bucket, correct, total) in &rows {
        t.row([
            bucket.clone(),
            total.to_string(),
            correct.to_string(),
            pct(*correct as f64 / (*total).max(1) as f64),
        ]);
    }
    format!(
        "E15: error locus by link class, worst first (paper: errors \
         concentrate at the edge and around peering-dense networks; \
         backbone c2p is near-perfect)\n\n{}",
        t.render()
    )
}
