//! E1 — BGP data and vantage-point statistics (paper analog: the data
//! table describing collectors, VPs, full feeds, and distinct paths).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::Table;

/// Produce the E1 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let paths = &wb.sim.paths;
    let full = paths.full_feed_vps(0.8);
    let links = {
        let mut set = std::collections::HashSet::new();
        for p in paths.paths() {
            for (a, b) in p.compress_prepending().links() {
                if a != b {
                    set.insert(asrank_types::AsLink::new(a, b));
                }
            }
        }
        set.len()
    };
    let mut t = Table::new(["metric", "value"]);
    t.row([
        "ASes in topology",
        &wb.topo.ground_truth.as_count().to_string(),
    ]);
    t.row([
        "links in topology",
        &wb.topo.ground_truth.link_count().to_string(),
    ]);
    t.row([
        "prefixes originated",
        &wb.topo.ground_truth.prefix_count().to_string(),
    ]);
    t.row(["vantage points", &wb.sim.vps.len().to_string()]);
    t.row(["full-feed VPs (>=80% of prefixes)", &full.len().to_string()]);
    t.row(["RIB entries collected", &paths.len().to_string()]);
    t.row([
        "distinct AS paths",
        &paths.distinct_paths().len().to_string(),
    ]);
    t.row([
        "distinct prefixes observed",
        &paths.prefixes().len().to_string(),
    ]);
    t.row(["ASes observed in paths", &paths.ases().len().to_string()]);
    t.row(["links observed in paths", &links.to_string()]);
    t.row([
        "destinations propagated",
        &wb.sim.stats.destinations.to_string(),
    ]);

    // Collection quality: path lengths and per-class link visibility.
    let analysis = bgp_sim::analyze(paths, &wb.topo.ground_truth.relationships);
    let mut a = Table::new(["metric", "value"]);
    a.row([
        "path length (min/median/p95/max)".to_string(),
        format!(
            "{}/{}/{}/{} (mean {:.2})",
            analysis.path_lengths.min,
            analysis.path_lengths.median,
            analysis.path_lengths.p95,
            analysis.path_lengths.max,
            analysis.path_lengths.mean
        ),
    ]);
    a.row([
        "c2p links observed".to_string(),
        format!(
            "{}/{} ({:.1}%)",
            analysis.c2p.observed,
            analysis.c2p.total,
            100.0 * analysis.c2p.fraction()
        ),
    ]);
    a.row([
        "p2p links observed".to_string(),
        format!(
            "{}/{} ({:.1}%)",
            analysis.p2p.observed,
            analysis.p2p.total,
            100.0 * analysis.p2p.fraction()
        ),
    ]);
    a.row([
        "phantom links".to_string(),
        analysis.phantom_links.to_string(),
    ]);

    // Calibration: does the generated Internet match published structure?
    let realism = as_topology_gen::check_realism(&wb.topo.ground_truth);
    for check in &realism.checks {
        a.row([
            format!("realism: {}", check.name),
            format!(
                "{:.3} (accepted {:.2}–{:.2}) {}",
                check.value,
                check.range.0,
                check.range.1,
                if check.ok() { "✓" } else { "✗" }
            ),
        ]);
    }

    format!(
        "E1: BGP data / VP statistics (paper: 315 VPs, 116 full feeds over \
         ~42k ASes, ~450k prefixes)\n\n{}\nCollection quality:\n{}",
        t.render(),
        a.render()
    )
}
