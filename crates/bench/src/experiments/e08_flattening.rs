//! E8 — longitudinal "flattening" (paper analog: top-AS customer cones
//! across years).
//!
//! Two growth regimes are evolved side by side:
//!
//! * **preferential** — newcomers attach to already-large providers
//!   (rich-get-richer, the early Internet);
//! * **regional** — newcomers buy from regional transit, new regional
//!   transit providers keep appearing, and stubs churn away from
//!   incumbents (the flattening era).
//!
//! The robust flattening signal our generative model reproduces is the
//! rising p2p share of links. The *recursive* cone share of the largest
//! AS is structurally sticky under multihoming (every added home can
//! only add cone memberships) — which is precisely the paper's argument
//! for preferring the observed-cone definitions in longitudinal work.

use crate::table::{f, pct, Table};
use as_topology_gen::{evolve, EvolutionConfig};
use asrank_core::cone::CustomerCones;

fn run_regime(preferential: bool, seed: u64) -> (Table, f64, f64, f64) {
    let mut cfg = EvolutionConfig::small();
    cfg.preferential_attachment = preferential;
    let snaps = evolve(&cfg, seed);
    let mut t = Table::new([
        "snapshot",
        "ASes",
        "links",
        "p2p share",
        "largest cone",
        "cone share",
    ]);
    let mut first_share = 0.0;
    let mut last_share = 0.0;
    let (mut first_p2p, mut last_p2p) = (0.0, 0.0);
    for (i, snap) in snaps.iter().enumerate() {
        let gt = &snap.ground_truth;
        let (c2p, p2p, _) = gt.relationships.counts();
        let cones = CustomerCones::recursive(&gt.relationships, None);
        let (top, size) = cones.largest().unwrap();
        let share = size.ases as f64 / gt.as_count() as f64;
        let p2p_share = p2p as f64 / (c2p + p2p).max(1) as f64;
        if i == 0 {
            first_share = share;
            first_p2p = p2p_share;
        }
        last_share = share;
        last_p2p = p2p_share;
        t.row([
            i.to_string(),
            gt.as_count().to_string(),
            gt.link_count().to_string(),
            pct(p2p_share),
            format!("{top}: {}", size.ases),
            pct(share),
        ]);
    }
    (t, last_share / first_share, first_p2p, last_p2p)
}

/// Produce the E8 report.
pub fn run(seed: u64) -> String {
    let (pref_table, pref_ratio, _, _) = run_regime(true, seed);
    let (flat_table, flat_ratio, p2p_first, p2p_last) = run_regime(false, seed);
    format!(
        "E8: longitudinal flattening (paper: peering spreads and the \
         largest transit cones stop growing relative to the AS \
         population)\n\n--- preferential-attachment regime ---\n{}\n--- \
         regional/flattening regime ---\n{}\nfindings:\n  • p2p share of \
         links rises {} → {} in the flattening regime (the paper's \
         robust signal);\n  • largest-cone share growth over the run: {}× \
         (preferential) vs {}× (regional);\n  • the *recursive* cone share never truly shrinks \
         under multihoming (every added provider link only adds cone \
         memberships), which is exactly the paper's argument for the \
         observed-cone definitions in longitudinal analysis.\n",
        pref_table.render(),
        flat_table.render(),
        pct(p2p_first),
        pct(p2p_last),
        f(pref_ratio, 3),
        f(flat_ratio, 3),
    )
}
