//! E7 — cone-definition divergence for the largest ASes (paper analog:
//! the figure comparing the three definitions per AS).

use crate::harness::{Scale, Scenario, Workbench};
use crate::sanitized;
use crate::table::{f, Table};
use asrank_core::cone::ConeSets;
use asrank_core::rank_ases;

/// Produce the E7 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let clean = sanitized(&wb);
    let cones = ConeSets::compute(
        &clean,
        &wb.inference.relationships,
        Some(&wb.topo.ground_truth.prefixes),
    );
    let ranked = rank_ases(&cones.recursive, &wb.inference.degrees);

    let mut t = Table::new([
        "rank",
        "asn",
        "recursive",
        "bgp-obs",
        "prov/peer",
        "obs/rec",
        "true cone",
    ]);
    for row in ranked.iter().take(10) {
        let rec = cones.recursive.size(row.asn).ases;
        let obs = cones.bgp_observed.size(row.asn).ases;
        let pp = cones.provider_peer_observed.size(row.asn).ases;
        let truth = wb.topo.ground_truth.true_customer_cone(row.asn).len();
        t.row([
            row.rank.to_string(),
            row.asn.to_string(),
            rec.to_string(),
            obs.to_string(),
            pp.to_string(),
            f(obs as f64 / rec.max(1) as f64, 2),
            truth.to_string(),
        ]);
    }
    format!(
        "E7: cone definitions on the top-10 ASes (paper: observed cones \
         shrink relative to recursive cones as visibility thins)\n\n{}",
        t.render()
    )
}
