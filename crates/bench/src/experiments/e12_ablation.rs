//! E12 — step ablation: the contribution of each pipeline step to final
//! accuracy (the design-choice analysis DESIGN.md calls out). Run under
//! realistic artifact injection so the defensive steps (S4, S7) have
//! something to defend against.

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_core::pipeline::{infer, Ablation, InferenceConfig};
use asrank_types::Asn;
use asrank_validation::evaluate_against_truth;
use bgp_sim::AnomalyConfig;

/// Produce the E12 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let mut scenario = Scenario::at_scale(scale, seed);
    let tier1 = scenario.topology.mix.tier1;
    // Deliberately hostile artifact rates (well above the wild) so each
    // defensive step's contribution is visible in the deltas.
    scenario.anomalies = AnomalyConfig {
        leak_prob: 0.003,
        poison_prob: 0.03,
        prepend_prob: 0.05,
        rs_insertion_prob: 0.5,
        poison_pool: (1..=tier1 as u32).map(Asn).collect(),
    };
    let wb = Workbench::build(scenario);
    let truth = &wb.topo.ground_truth.relationships;
    let ixps: Vec<Asn> = wb.topo.ixps.iter().map(|i| i.route_server).collect();

    let variants: Vec<(&str, Ablation)> = vec![
        ("full pipeline", Ablation::default()),
        (
            "w/o S4 poison filter",
            Ablation {
                no_poison_filter: true,
                ..Default::default()
            },
        ),
        (
            "w/o S6 VP providers",
            Ablation {
                no_vp_step: true,
                ..Default::default()
            },
        ),
        (
            "w/o S7 anomaly repair",
            Ablation {
                no_anomaly_repair: true,
                ..Default::default()
            },
        ),
        (
            "w/o S8 stub-clique",
            Ablation {
                no_stub_clique: true,
                ..Default::default()
            },
        ),
        (
            "w/o S9 provider-less",
            Ablation {
                no_providerless: true,
                ..Default::default()
            },
        ),
    ];

    let mut t = Table::new([
        "variant",
        "c2p PPV",
        "p2p PPV",
        "coverage",
        "phantom",
        "discarded",
    ]);
    for (name, ablation) in variants {
        let mut cfg = InferenceConfig::with_ixps(ixps.clone());
        cfg.ablation = ablation;
        let inf = infer(&wb.sim.paths, &cfg);
        let r = evaluate_against_truth(&inf.relationships, truth);
        t.row([
            name.to_string(),
            pct(r.c2p_ppv()),
            pct(r.p2p_ppv()),
            pct(r.coverage()),
            r.phantom_links.to_string(),
            inf.report.discarded_poisoned.to_string(),
        ]);
    }
    format!(
        "E12: pipeline step ablation under realistic artifacts (each row \
         disables one step; deltas against the full pipeline quantify the \
         step's contribution)\n\n{}",
        t.render()
    )
}
