//! E4 — algorithm comparison (paper analog: the table scoring ASRank
//! against prior algorithms on the same validation data).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{pct, Table};
use asrank_baselines::{xia_gao_infer, Baseline, XiaGaoConfig};
use asrank_types::{LinkRel, RelationshipMap};
use asrank_validation::{evaluate_against_truth, paired_comparison, ValidationSource};

/// Produce the E4 report.
pub fn run(scale: Scale, seed: u64) -> String {
    let wb = Workbench::build(Scenario::at_scale(scale, seed));
    let truth = &wb.topo.ground_truth.relationships;

    let ours = &wb.inference.relationships;
    let mut t = Table::new([
        "algorithm",
        "c2p PPV",
        "(n)",
        "p2p PPV",
        "(n)",
        "coverage",
        "vs ASRank (sign test)",
    ]);
    let mut add = |name: &str, rels: &RelationshipMap| {
        let r = evaluate_against_truth(rels, truth);
        // Exact sign test over links both algorithms classified: is
        // ASRank's advantage bigger than chance?
        let sig = if std::ptr::eq(rels, ours) {
            "—".to_string()
        } else {
            let c = paired_comparison(ours, rels, truth);
            format!("{}:{} discordant, p={:.1e}", c.a_only, c.b_only, c.p_value)
        };
        t.row([
            name.to_string(),
            pct(r.c2p_ppv()),
            r.c2p.1.to_string(),
            pct(r.p2p_ppv()),
            r.p2p.1.to_string(),
            pct(r.coverage()),
            sig,
        ]);
    };

    add("ASRank (this work)", ours);
    for b in [Baseline::Gao, Baseline::Sark, Baseline::Degree] {
        add(b.name(), &b.run(&wb.sim.paths));
    }
    // Xia-Gao gets the direct-report corpus as its seed, as in its paper
    // (it consumed registry data).
    let mut seed_map = RelationshipMap::new();
    for a in wb.corpus.from_source(ValidationSource::DirectReport) {
        match a.rel {
            LinkRel::AC2pB => seed_map.insert_c2p(a.link.a, a.link.b),
            LinkRel::AP2cB => seed_map.insert_c2p(a.link.b, a.link.a),
            LinkRel::P2p => seed_map.insert_p2p(a.link.a, a.link.b),
            LinkRel::S2s => seed_map.insert_s2s(a.link.a, a.link.b),
        }
    }
    add(
        "Xia-Gao (seeded: direct)",
        &xia_gao_infer(&wb.sim.paths, &seed_map, &XiaGaoConfig::default()),
    );

    format!(
        "E4: algorithm comparison on identical observed paths (paper: \
         ASRank dominates prior algorithms on both kinds)\n\n{}",
        t.render()
    )
}
