//! E5 — Tier-1 clique recovery (paper analog: the inferred clique's
//! membership and stability discussion).

use crate::harness::{Scale, Scenario, Workbench};
use crate::table::{f, pct, Table};

/// Produce the E5 report: clique precision/recall across several seeds.
pub fn run(scale: Scale, seed: u64) -> String {
    let mut t = Table::new(["seed", "inferred size", "true size", "precision", "recall"]);
    let seeds: Vec<u64> = (0..5).map(|i| seed + i).collect();
    let (mut sp, mut sr) = (0.0, 0.0);
    for &s in &seeds {
        let wb = Workbench::build(Scenario::at_scale(scale, s));
        let truth = wb.topo.ground_truth.clique();
        let inferred = &wb.inference.clique;
        let hit = inferred.iter().filter(|a| truth.contains(a)).count();
        let precision = hit as f64 / inferred.len().max(1) as f64;
        let recall = hit as f64 / truth.len().max(1) as f64;
        sp += precision;
        sr += recall;
        t.row([
            s.to_string(),
            inferred.len().to_string(),
            truth.len().to_string(),
            pct(precision),
            pct(recall),
        ]);
    }
    let n = seeds.len() as f64;
    format!(
        "E5: Tier-1 clique recovery across seeds (paper: the inferred \
         clique matched the operator-known Tier-1 set)\n\n{}\nmean \
         precision {}  mean recall {}\n",
        t.render(),
        f(sp / n, 3),
        f(sr / n, 3)
    )
}
