//! `report` — regenerate any experiment table/figure analog, or
//! assemble criterion output into a benchmark snapshot.
//!
//! Usage:
//! ```text
//! report <e1|e2|…|e11|all> [--scale tiny|small|medium|internet|tenx] [--seed N]
//! report stage-report [--scale tiny|small|medium|internet|tenx] [--seed N]
//! report bench-json <criterion-lines-file> <out.json>
//! report bench-check <new.json> <baseline.json>
//! ```
//!
//! `stage-report` runs the staged engine end to end over a generated
//! scenario and prints the per-stage instrumentation JSON (wall time,
//! item counts, artifact sizes, cache hits/misses) to stdout — the
//! `make stage-report` profile of where inference time goes.
//!
//! `bench-json` consumes the JSON-lines file the vendored criterion
//! writes when `CRITERION_JSON` is set (one object per benchmark) and
//! emits a single snapshot document with derived speedup ratios —
//! `make bench` drives it to produce `BENCH_*.json`.

use asrank_bench::experiments;
use asrank_bench::harness::{scenario_inputs, Scale, Scenario};
use asrank_core::engine::Snapshot;

/// Run the staged engine over a generated scenario and print the
/// per-stage instrumentation JSON. Every stage (inference plus all three
/// cone flavors) is materialized, so the report covers the whole DAG.
fn stage_report(scale: Scale, seed: u64) -> i32 {
    let (paths, cfg) = scenario_inputs(&Scenario::at_scale(scale, seed));
    let mut snapshot = Snapshot::new(&paths, cfg);
    if let Err(e) = snapshot.cones() {
        eprintln!("engine run failed: {e}");
        return 1;
    }
    print!("{}", snapshot.stage_report().to_json());
    0
}

/// Pull a string field out of a flat single-line JSON object.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pull a numeric field out of a flat single-line JSON object.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Assemble criterion JSON lines into one snapshot document.
fn bench_json(input: &str, output: &str) -> i32 {
    let raw = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return 1;
        }
    };
    let lines: Vec<&str> = raw
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .collect();
    if lines.is_empty() {
        eprintln!("no criterion JSON lines in {input}");
        return 1;
    }

    // Median lookup for the derived ratios.
    let median = |group: &str, bench: &str| -> Option<f64> {
        lines.iter().find_map(|l| {
            (json_str(l, "group").as_deref() == Some(group)
                && json_str(l, "bench").as_deref() == Some(bench))
            .then(|| json_num(l, "median_ns"))
            .flatten()
        })
    };

    // fast-vs-reference speedups per scale: `recursive` tracks PR1's
    // bitset-vs-HashSet acceptance; `bgp_observed`/`provider_peer`
    // track PR3's arena-sweep-vs-per-AS-rescan acceptance (the
    // `*_reference` benches are the retained PR1 implementations).
    let mut ratios: Vec<String> = Vec::new();
    let pairs = [
        ("recursive_cone_speedup", "recursive_reference", "recursive"),
        ("bgp_observed_speedup", "bgp_observed_reference", "bgp_observed"),
        ("provider_peer_speedup", "provider_peer_reference", "provider_peer"),
    ];
    for (ratio_name, reference, fast_name) in pairs {
        for scale in ["1k", "2k"] {
            if let (Some(slow), Some(fast)) = (
                median("cones", &format!("{reference}/{scale}")),
                median("cones", &format!("{fast_name}/{scale}")),
            ) {
                if fast > 0.0 {
                    ratios.push(format!(
                        "{{\"name\":\"{ratio_name}/{scale}\",\
                         \"baseline\":\"{reference}\",\"ratio\":{:.2}}}",
                        slow / fast
                    ));
                }
            }
        }
    }

    // PR5 acceptance ratios: parallel MRT decode vs the streaming
    // reader, and the warm full pipeline (all artifacts from the disk
    // cache) vs the cold one.
    for scale in ["1k", "2k"] {
        if let (Some(slow), Some(fast)) = (
            median("ingest", &format!("sequential/{scale}")),
            median("ingest", &format!("parallel4/{scale}")),
        ) {
            if fast > 0.0 {
                ratios.push(format!(
                    "{{\"name\":\"ingest_parallel_speedup/{scale}\",\
                     \"baseline\":\"sequential\",\"ratio\":{:.2}}}",
                    slow / fast
                ));
            }
        }
    }
    if let (Some(cold), Some(warm)) = (
        median("warm_vs_cold", "cold/2k"),
        median("warm_vs_cold", "warm/2k"),
    ) {
        if warm > 0.0 {
            ratios.push(format!(
                "{{\"name\":\"warm_vs_cold_speedup/2k\",\
                 \"baseline\":\"cold\",\"ratio\":{:.2}}}",
                cold / warm
            ));
        }
    }

    // PR6 serve-tier acceptance: absolute query rates over the mapped
    // frames (M-ops/s, derived from element throughput / median ns —
    // not a speedup, but gated through the same derived machinery), and
    // the peak-RSS ratio of the owned-decode load over the mapped one
    // (both measured in their own child process, `benches/serve.rs`).
    let field = |group: &str, bench: &str, key: &str| -> Option<f64> {
        lines.iter().find_map(|l| {
            (json_str(l, "group").as_deref() == Some(group)
                && json_str(l, "bench").as_deref() == Some(bench))
            .then(|| json_num(l, key))
            .flatten()
        })
    };
    for (family, bench) in [
        ("serve_rel_mlookups_per_s", "rel_lookup/2k"),
        ("serve_cone_mchecks_per_s", "cone_contains/2k"),
    ] {
        if let (Some(med), Some(elems)) = (
            field("serve", bench, "median_ns"),
            field("serve", bench, "throughput_elems"),
        ) {
            if med > 0.0 {
                // elems/iter over ns/iter is G-ops/s; x1000 -> M-ops/s.
                ratios.push(format!(
                    "{{\"name\":\"{family}/2k\",\
                     \"baseline\":\"wall_clock\",\"ratio\":{:.2}}}",
                    elems / med * 1000.0
                ));
            }
        }
    }
    if let (Some(owned), Some(mapped)) = (
        field("serve_rss", "owned/2k", "rss_kb"),
        field("serve_rss", "mapped/2k", "rss_kb"),
    ) {
        if mapped > 0.0 {
            ratios.push(format!(
                "{{\"name\":\"serve_rss_owned_over_mapped/2k\",\
                 \"baseline\":\"mapped\",\"ratio\":{:.2}}}",
                owned / mapped
            ));
        }
    }

    // PR8 scale-tier trajectories: absolute cold-infer rates per size
    // tier (kelems/s = path samples per wall second / 1000), recorded
    // for the micro sizes too so bench-check can compare the whole
    // trajectory across snapshots — a superlinear hot spot shows up as
    // the rate collapsing between tiers.
    for (family, group, tiers) in [
        ("pipeline_infer_kelems_per_s", "pipeline", &["500", "1k", "2k"][..]),
        ("scale_infer_kelems_per_s", "scale", &["8k", "16k", "42k", "tenx"][..]),
    ] {
        for tier in tiers {
            let bench = format!("infer/{tier}");
            if let (Some(med), Some(elems)) = (
                field(group, &bench, "median_ns"),
                field(group, &bench, "throughput_elems"),
            ) {
                if med > 0.0 {
                    // elems/iter over ns/iter is G-ops/s; x1e6 -> k-ops/s.
                    ratios.push(format!(
                        "{{\"name\":\"{family}/{tier}\",\
                         \"baseline\":\"wall_clock\",\"ratio\":{:.2}}}",
                        elems / med * 1.0e6
                    ));
                }
            }
        }
    }

    // PR8 cache-blocking acceptance: the blocked pair merge against the
    // full-width counting sort on identical 42k raw pairs, and the same
    // comparison over the whole cone build (merge + shared scan and
    // materialization, so the end-to-end win is on record too).
    for (family, fast, slow) in [
        ("scale_blocked_sweep_speedup", "merge_blocked/42k", "merge_unblocked/42k"),
        ("scale_blocked_cone_speedup", "cone_blocked/42k", "cone_unblocked/42k"),
    ] {
        if let (Some(slow_ns), Some(fast_ns)) = (
            median("scale_sweep", slow),
            median("scale_sweep", fast),
        ) {
            if fast_ns > 0.0 {
                ratios.push(format!(
                    "{{\"name\":\"{family}/42k\",\
                     \"baseline\":\"unblocked\",\"ratio\":{:.2}}}",
                    slow_ns / fast_ns
                ));
            }
        }
    }

    // PR8/PR10 memory acceptance: headroom of the cold infer under the
    // 8 GiB tier ceiling (>= 1.0 means the peak stayed below it), per
    // tier that measured a child-process RSS.
    const SCALE_RSS_CEILING_KB: f64 = 8.0 * 1024.0 * 1024.0; // 8 GiB
    for tier in ["42k", "tenx"] {
        if let Some(rss) = field("scale_rss", &format!("infer/{tier}"), "rss_kb") {
            if rss > 0.0 {
                ratios.push(format!(
                    "{{\"name\":\"scale_rss_headroom/{tier}\",\
                     \"baseline\":\"ceiling_8gib\",\"ratio\":{:.2}}}",
                    SCALE_RSS_CEILING_KB / rss
                ));
            }
        }
    }

    // PR9 incremental acceptance: the delta refresh after a churn batch
    // as a fraction of the cold pipeline at the same tier (lower is
    // better — the only derived family where bench-check applies a
    // ceiling instead of a floor). 1% is the gated multiplicity-
    // preserving point; 5%/20% document the structural-churn
    // degradation curve.
    if let Some(cold) = median("delta", "cold/8k") {
        for churn in ["1pct", "5pct", "20pct"] {
            if let Some(delta) = median("delta", &format!("delta_{churn}/8k")) {
                if cold > 0.0 {
                    ratios.push(format!(
                        "{{\"name\":\"delta_over_cold_ratio/{churn}\",\
                         \"baseline\":\"cold\",\"ratio\":{:.3}}}",
                        delta / cold
                    ));
                }
            }
        }
    }

    // Recorded so bench-check can judge thread-scaling floors against
    // what the measuring host could physically deliver.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut doc = format!("{{\n  \"host_cpus\": {host_cpus},\n  \"benches\": [\n");
    for (i, l) in lines.iter().enumerate() {
        doc.push_str("    ");
        doc.push_str(l);
        if i + 1 < lines.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ],\n  \"derived\": [\n");
    for (i, r) in ratios.iter().enumerate() {
        doc.push_str("    ");
        doc.push_str(r);
        if i + 1 < ratios.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(output, &doc) {
        eprintln!("cannot write {output}: {e}");
        return 1;
    }
    println!("wrote {output}: {} benches, {} derived ratios", lines.len(), ratios.len());
    0
}

/// Parse the `host_cpus` field out of a snapshot document. Snapshots
/// written before the field existed default to "enough cores" so their
/// floors keep gating at full strength.
fn snapshot_host_cpus(path: &str) -> usize {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|raw| {
            raw.lines()
                .find_map(|l| json_num(l.trim(), "host_cpus"))
                .map(|n| n as usize)
        })
        .unwrap_or(usize::MAX)
}

/// Rate (kelems/s) derivable from a snapshot's raw bench lines for
/// `group`/`bench` — the trajectory fallback for baselines written
/// before the derived `*_kelems_per_s` families existed.
fn snapshot_rate_kelems(path: &str, group: &str, bench: &str) -> Option<f64> {
    let raw = std::fs::read_to_string(path).ok()?;
    raw.lines().map(str::trim).find_map(|l| {
        (json_str(l, "group").as_deref() == Some(group)
            && json_str(l, "bench").as_deref() == Some(bench))
        .then(|| {
            let med = json_num(l, "median_ns")?;
            let elems = json_num(l, "throughput_elems")?;
            (med > 0.0).then_some(elems / med * 1.0e6)
        })
        .flatten()
    })
}

/// Parse the `derived` ratio entries out of a snapshot document.
fn derived_ratios(path: &str) -> Result<Vec<(String, f64)>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    let mut in_derived = false;
    for line in raw.lines() {
        let t = line.trim();
        if t.starts_with("\"derived\"") {
            in_derived = true;
            continue;
        }
        if !in_derived {
            continue;
        }
        if let (Some(name), Some(ratio)) = (json_str(t, "name"), json_num(t, "ratio")) {
            out.push((name, ratio));
        }
    }
    Ok(out)
}

/// Compare a fresh snapshot's derived speedup ratios against a baseline
/// snapshot, failing when any recorded speedup family regresses below
/// its acceptance floor (the `make bench-cones` / `make bench-ingest`
/// gate). Only the families present in the snapshot are gated — a cones
/// snapshot is not failed for lacking ingest ratios — but a snapshot
/// with no known family at all is an error.
fn bench_check(new_path: &str, baseline_path: &str) -> i32 {
    /// Per-family acceptance floors, applied to the family's best scale:
    /// the smaller workloads finish in ~100us per iteration and their
    /// medians jitter well past the margin between the measured speedup
    /// and the floor, so gating every scale would fail on measurement
    /// noise rather than real regressions.
    const FLOORS: &[(&str, f64)] = &[
        ("recursive_cone_speedup", 4.0),
        ("ingest_parallel_speedup", 2.0),
        ("warm_vs_cold_speedup", 5.0),
        // Serve-tier absolute rates in M-ops/s on one core (the PR6
        // targets: >=1M relationship lookups/s, >=500k cone checks/s),
        // plus "mapping the frames never costs more peak RSS than
        // decoding them".
        ("serve_rel_mlookups_per_s", 1.0),
        ("serve_cone_mchecks_per_s", 0.5),
        ("serve_rss_owned_over_mapped", 1.0),
        // PR8 scale-tier acceptance: the cache-blocked pair merge must
        // beat the full-width counting sort at 42k (a locality win, so
        // it holds on one core), and the 42k cold infer must peak under
        // the 8 GiB tier ceiling (headroom ratio >= 1.0).
        ("scale_blocked_sweep_speedup", 1.3),
        ("scale_rss_headroom", 1.0),
    ];
    /// The ingest floor asserts 2x thread scaling at 4 decode workers.
    /// A host with fewer cores than that cannot physically show it (the
    /// decode fan-out clamps workers to the cores available), so on such
    /// hosts the floor degrades to "the parallel path must not regress
    /// against the streaming reader" — still a real gate, honestly
    /// scoped to what the machine can measure.
    const SINGLE_CORE_INGEST_FLOOR: f64 = 0.9;
    /// The serve rate floors assume one reasonably provisioned core to
    /// itself. On a host with fewer than 4 cores (the same boundary the
    /// ingest floor uses) the bench shares its core with the OS and the
    /// sibling child processes, so the absolute-rate floors halve —
    /// still asserting the zero-copy path is in the right decade.
    const SMALL_HOST_SERVE_RATE_SCALE: f64 = 0.5;
    let (new, base) = match (derived_ratios(new_path), derived_ratios(baseline_path)) {
        (Ok(n), Ok(b)) => (n, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if new.is_empty() {
        eprintln!("{new_path} has no derived ratios");
        return 1;
    }

    println!("derived speedup ratios ({new_path} vs {baseline_path}):");
    for (name, ratio) in &new {
        let old = base.iter().find(|(n, _)| n == name).map(|&(_, r)| r);
        match old {
            Some(o) => println!("  {name}: {o:.2} -> {ratio:.2}"),
            None => println!("  {name}: (new) {ratio:.2}"),
        }
    }

    let host_cpus = snapshot_host_cpus(new_path);
    let mut gated = 0;
    let mut failed = false;
    for &(family, floor) in FLOORS {
        let prefix = format!("{family}/");
        // Speedup families gate their best scale (small tiers jitter);
        // the RSS headroom is a ceiling property that must hold at
        // every measured tier, so it gates its *worst* one.
        let pick = new.iter().filter(|(n, _)| n.starts_with(&prefix));
        let picked = if family == "scale_rss_headroom" {
            pick.min_by(|a, b| a.1.total_cmp(&b.1))
        } else {
            pick.max_by(|a, b| a.1.total_cmp(&b.1))
        };
        let Some((name, ratio)) = picked else {
            continue;
        };
        let floor = if family == "ingest_parallel_speedup" && host_cpus < 4 {
            println!(
                "bench-check: host has {host_cpus} cpu(s); {family} floor \
                 relaxed to {SINGLE_CORE_INGEST_FLOOR:.1}x (no-regression)"
            );
            SINGLE_CORE_INGEST_FLOOR
        } else if host_cpus < 4
            && matches!(
                family,
                "serve_rel_mlookups_per_s" | "serve_cone_mchecks_per_s"
            )
        {
            let relaxed = floor * SMALL_HOST_SERVE_RATE_SCALE;
            println!(
                "bench-check: host has {host_cpus} cpu(s); {family} floor \
                 relaxed to {relaxed:.2} M-ops/s (shared-host margin)"
            );
            relaxed
        } else {
            floor
        };
        gated += 1;
        if *ratio < floor {
            eprintln!("FAIL: best {name} = {ratio:.2} regressed below {floor:.1}x");
            failed = true;
        } else {
            println!("bench-check: {name} = {ratio:.2} >= {floor:.1}x");
        }
    }
    /// Cost-ratio ceilings (lower is better), matched by exact name:
    /// the PR9 incremental acceptance — a delta refresh after the
    /// multiplicity-preserving 1%-churn batch must cost at most 10% of
    /// a cold run — and the PR10 structural-churn bound: even at 20%
    /// mixed churn, where every stage recomputes, the session's
    /// maintained evidence must keep the refresh no dearer than a cold
    /// rebuild. The 5% ratio stays recorded but ungated.
    const CEILINGS: &[(&str, f64)] = &[
        ("delta_over_cold_ratio/1pct", 0.10),
        ("delta_over_cold_ratio/20pct", 1.0),
    ];
    for &(name, ceiling) in CEILINGS {
        let Some((_, ratio)) = new.iter().find(|(n, _)| n == name) else {
            continue;
        };
        gated += 1;
        if *ratio > ceiling {
            eprintln!("FAIL: {name} = {ratio:.3} exceeded the {ceiling:.2} ceiling");
            failed = true;
        } else {
            println!("bench-check: {name} = {ratio:.3} <= {ceiling:.2}");
        }
    }
    // Elems/sec trajectory families: every size tier recorded in BOTH
    // snapshots must retain TRAJECTORY_RETAIN of the baseline's rate.
    // Tiers the baseline lacks are warned about, never failed — adding
    // a new size tier must not require regenerating history. Baselines
    // written before the derived trajectory families existed are read
    // through their raw bench lines instead.
    const TRAJECTORY_RETAIN: f64 = 0.7;
    for (family, group) in [
        ("pipeline_infer_kelems_per_s", "pipeline"),
        ("scale_infer_kelems_per_s", "scale"),
    ] {
        let prefix = format!("{family}/");
        for (name, rate) in new.iter().filter(|(n, _)| n.starts_with(&prefix)) {
            let tier = &name[prefix.len()..];
            let base_rate = base
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, r)| r)
                .or_else(|| snapshot_rate_kelems(baseline_path, group, &format!("infer/{tier}")));
            match base_rate {
                Some(b) if b > 0.0 => {
                    gated += 1;
                    let floor = b * TRAJECTORY_RETAIN;
                    if *rate < floor {
                        eprintln!(
                            "FAIL: trajectory {name} = {rate:.2} kelems/s fell below \
                             {floor:.2} ({:.0}% of baseline {b:.2})",
                            TRAJECTORY_RETAIN * 100.0
                        );
                        failed = true;
                    } else {
                        println!(
                            "bench-check: trajectory {name} = {rate:.2} kelems/s \
                             >= {floor:.2} (baseline {b:.2})"
                        );
                    }
                }
                _ => println!(
                    "bench-check: warn: {name} has no tier in {baseline_path}; \
                     recorded {rate:.2} kelems/s, not gated"
                ),
            }
        }
    }

    if gated == 0 {
        eprintln!("FAIL: {new_path} records no gated speedup family");
        return 1;
    }
    if failed {
        1
    } else {
        println!("bench-check passed: {gated} speedup families at or above their floors");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("bench-json") {
        let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: report bench-json <criterion-lines-file> <out.json>");
            std::process::exit(2);
        };
        std::process::exit(bench_json(input, output));
    }

    if args.first().map(String::as_str) == Some("bench-check") {
        let (Some(new), Some(baseline)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: report bench-check <new.json> <baseline.json>");
            std::process::exit(2);
        };
        std::process::exit(bench_check(new, baseline));
    }

    let mut id: Option<String> = None;
    let mut scale = Scale::Small;
    let mut seed = 42u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(v) {
                    Ok(s) => scale = s,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("invalid seed {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            other if id.is_none() => id = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let Some(id) = id else {
        eprintln!(
            "usage: report <e1..e11|all|stage-report> \
             [--scale tiny|small|medium|internet|tenx] [--seed N]"
        );
        std::process::exit(2);
    };

    if id == "stage-report" {
        std::process::exit(stage_report(scale, seed));
    }

    let ids: Vec<&str> = if id == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![id.as_str()]
    };
    for (i, id) in ids.iter().enumerate() {
        match experiments::run(id, scale, seed) {
            Some(out) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(72));
                }
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment {id:?} (e1..e11 or all)");
                std::process::exit(2);
            }
        }
    }
}
