//! `report` — regenerate any experiment table/figure analog.
//!
//! Usage:
//! ```text
//! report <e1|e2|…|e11|all> [--scale tiny|small|medium|internet] [--seed N]
//! ```

use asrank_bench::experiments;
use asrank_bench::harness::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut scale = Scale::Small;
    let mut seed = 42u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match Scale::parse(v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {v:?} (tiny|small|medium|internet)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("invalid seed {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            other if id.is_none() => id = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let Some(id) = id else {
        eprintln!("usage: report <e1..e11|all> [--scale tiny|small|medium|internet] [--seed N]");
        std::process::exit(2);
    };

    let ids: Vec<&str> = if id == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![id.as_str()]
    };
    for (i, id) in ids.iter().enumerate() {
        match experiments::run(id, scale, seed) {
            Some(out) => {
                if i > 0 {
                    println!("\n{}\n", "=".repeat(72));
                }
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment {id:?} (e1..e11 or all)");
                std::process::exit(2);
            }
        }
    }
}
