//! Shared experiment harness: one place that generates a topology,
//! simulates BGP over it, runs the inference pipeline, and builds the
//! validation corpus — so every experiment starts from the same
//! reproducible state.

use as_topology_gen::{generate, GeneratedTopology, TopologyConfig};
use asrank_core::pipeline::{infer, Inference, InferenceConfig};
use asrank_types::prelude::*;
use asrank_validation::{build_corpus, CorpusConfig, ValidationCorpus};
use bgp_sim::{simulate, AnomalyConfig, SimConfig, SimOutput, VpSelection};

// The scale registry lives with the topology presets it names; the
// harness re-exports it so existing `asrank_bench::harness::Scale`
// callers keep compiling.
pub use as_topology_gen::{Scale, ScaleParseError};

/// A full experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Topology to generate.
    pub topology: TopologyConfig,
    /// Number of vantage points.
    pub vps: usize,
    /// Fraction of full-feed VPs.
    pub full_feed: f64,
    /// Artifact injection.
    pub anomalies: AnomalyConfig,
    /// Optional cap on propagated destinations.
    pub destination_sample: Option<usize>,
    /// Optional cap on retained RIB entries per vantage point.
    pub rib_cap_per_vp: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// Default scenario at a given scale: paper-like VP counts scaled to
    /// topology size, clean paths.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (vps, sample, rib_cap) = match scale {
            Scale::Tiny => (8, None, None),
            Scale::Small => (30, None, None),
            Scale::Medium => (120, Some(4_000), None),
            Scale::Internet => (315, Some(6_000), None),
            // Paper-like VP count held at the 2013 collector population;
            // destinations sampled harder so simulation stays tractable,
            // and per-VP RIB retention bounded so collection memory is
            // `vps × cap` rather than `vps × destinations × prefixes` —
            // the cap sits above what a full feed observes at this
            // sampling rate, so it is a ceiling, not a thinning.
            Scale::TenX => (315, Some(6_000), Some(24_000)),
        };
        Scenario {
            topology: scale.topology(),
            vps,
            full_feed: 116.0 / 315.0,
            anomalies: AnomalyConfig::none(),
            destination_sample: sample,
            rib_cap_per_vp: rib_cap,
            seed,
        }
    }
}

/// Build just the engine inputs for a scenario: generate the topology,
/// simulate BGP over it, and pair the observed paths with the inference
/// config (IXP list from the topology). This is the cheap front half of
/// [`Workbench::build`] for callers that drive the staged engine
/// directly — e.g. `report stage-report`, which wants the per-stage
/// instrumentation rather than the finished [`Inference`].
pub fn scenario_inputs(scenario: &Scenario) -> (PathSet, InferenceConfig) {
    let topo = generate(&scenario.topology, scenario.seed);
    let sim_cfg = SimConfig {
        vp_selection: VpSelection::Count(scenario.vps),
        full_feed_fraction: scenario.full_feed,
        anomalies: scenario.anomalies.clone(),
        destination_sample: scenario.destination_sample,
        rib_cap_per_vp: scenario.rib_cap_per_vp,
        threads: 0,
        seed: scenario.seed,
    };
    let sim = simulate(&topo, &sim_cfg);
    let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
    (sim.paths, InferenceConfig::with_ixps(ixps))
}

/// Everything an experiment needs, built once.
#[derive(Debug)]
pub struct Workbench {
    /// The scenario that produced this workbench.
    pub scenario: Scenario,
    /// Generated topology with ground truth.
    pub topo: GeneratedTopology,
    /// Simulated BGP collection.
    pub sim: SimOutput,
    /// ASRank inference over the simulated paths.
    pub inference: Inference,
    /// Emulated validation corpus.
    pub corpus: ValidationCorpus,
}

impl Workbench {
    /// Build the full chain: generate → simulate → infer → corpus.
    pub fn build(scenario: Scenario) -> Self {
        let topo = generate(&scenario.topology, scenario.seed);
        let sim_cfg = SimConfig {
            vp_selection: VpSelection::Count(scenario.vps),
            full_feed_fraction: scenario.full_feed,
            anomalies: scenario.anomalies.clone(),
            destination_sample: scenario.destination_sample,
            rib_cap_per_vp: scenario.rib_cap_per_vp,
            threads: 0,
            seed: scenario.seed,
        };
        let sim = simulate(&topo, &sim_cfg);
        let ixps: Vec<Asn> = topo.ixps.iter().map(|i| i.route_server).collect();
        let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
        let corpus = build_corpus(&topo.ground_truth, &CorpusConfig::paper_like(scenario.seed));
        Workbench {
            scenario,
            topo,
            sim,
            inference,
            corpus,
        }
    }

    /// Re-run only the simulation + inference with a different VP count
    /// (used by the sensitivity sweep; topology and corpus stay fixed).
    pub fn with_vps(&self, vps: usize) -> (SimOutput, Inference) {
        let sim_cfg = SimConfig {
            vp_selection: VpSelection::Count(vps),
            full_feed_fraction: self.scenario.full_feed,
            anomalies: self.scenario.anomalies.clone(),
            destination_sample: self.scenario.destination_sample,
            rib_cap_per_vp: self.scenario.rib_cap_per_vp,
            threads: 0,
            seed: self.scenario.seed,
        };
        let sim = simulate(&self.topo, &sim_cfg);
        let ixps: Vec<Asn> = self.topo.ixps.iter().map(|i| i.route_server).collect();
        let inference = infer(&sim.paths, &InferenceConfig::with_ixps(ixps));
        (sim, inference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Ok(Scale::Small));
        assert_eq!(Scale::parse("internet"), Ok(Scale::Internet));
        assert_eq!(Scale::parse("tenx"), Ok(Scale::TenX));
        let err = Scale::parse("bogus").unwrap_err();
        assert!(err.to_string().contains("tiny|small|medium|internet|tenx"));
    }

    #[test]
    fn workbench_builds_at_tiny_scale() {
        let wb = Workbench::build(Scenario::at_scale(Scale::Tiny, 3));
        assert!(!wb.sim.paths.is_empty());
        assert!(!wb.inference.relationships.is_empty());
        assert!(!wb.corpus.is_empty());
    }

    #[test]
    fn vp_override_changes_collection() {
        let wb = Workbench::build(Scenario::at_scale(Scale::Tiny, 4));
        let (sim2, _) = wb.with_vps(2);
        assert!(sim2.paths.vantage_points().len() <= 2);
    }
}
