//! Minimal fixed-width text tables for experiment reports.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (shorter rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                out.push_str(cell);
                if i + 1 < cols {
                    out.push_str(&" ".repeat(pad + 2));
                }
            }
            out.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a float as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9964), "99.6%");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
