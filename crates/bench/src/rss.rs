//! Peak-RSS measurement for the benchmark snapshots.
//!
//! Linux keeps a per-process resident-set high-water mark (`VmHWM` in
//! `/proc/self/status`), which is exactly the "how much memory did this
//! run ever need" number the serve-tier acceptance records: a process
//! that memory-maps the cached frames should peak far below one that
//! decodes them into owned structures. The mark is monotone for the
//! lifetime of a process, so comparative measurements must come from
//! separate processes — `benches/serve.rs` re-execs itself once per
//! variant and reads the child's mark.

/// The process's peak resident set size in kilobytes (`VmHWM`), or
/// `None` on platforms without `/proc/self/status`.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parse the `VmHWM` line out of a `/proc/<pid>/status` document.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    status.lines().find_map(|line| {
        let rest = line.strip_prefix("VmHWM:")?;
        rest.trim().strip_suffix("kB")?.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\tcat\nVmPeak:\t 1000 kB\nVmHWM:\t    5432 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(doc), Some(5432));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tcat\n"), None);
    }

    #[test]
    fn own_process_reports_nonzero_peak() {
        // Any live Linux process has touched at least a few pages.
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
