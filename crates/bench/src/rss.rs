//! Peak-RSS measurement for the benchmark snapshots.
//!
//! Linux keeps a per-process resident-set high-water mark (`VmHWM` in
//! `/proc/self/status`), which is exactly the "how much memory did this
//! run ever need" number the serve-tier acceptance records: a process
//! that memory-maps the cached frames should peak far below one that
//! decodes them into owned structures. The mark is monotone for the
//! lifetime of a process, so comparative measurements must come from
//! separate processes — `benches/serve.rs` re-execs itself once per
//! variant and reads the child's mark.

/// The process's peak resident set size in kilobytes (`VmHWM`), or
/// `None` on platforms without `/proc/self/status` (or with a status
/// document this parser does not recognize) — never a panic, so the
/// benches that record RSS still run on non-Linux hosts and simply
/// skip the measurement.
pub fn peak_rss_kb() -> Option<u64> {
    peak_rss_kb_from(std::path::Path::new("/proc/self/status"))
}

/// [`peak_rss_kb`] with the status document path injected — the
/// missing-`/proc` fallback is testable by pointing at a path that
/// does not exist.
fn peak_rss_kb_from(status_path: &std::path::Path) -> Option<u64> {
    let status = std::fs::read_to_string(status_path).ok()?;
    parse_vm_hwm(&status)
}

/// Parse the `VmHWM` line out of a `/proc/<pid>/status` document.
/// Tolerant of field-width/tab variations and unit-case differences
/// (`kB`/`KB`/`kb`); any other unit — or a malformed value — yields
/// `None` rather than a wrong number in a different scale.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    status.lines().find_map(|line| {
        let rest = line.strip_prefix("VmHWM:")?;
        let mut fields = rest.split_whitespace();
        let value: u64 = fields.next()?.parse().ok()?;
        match fields.next() {
            Some(unit) if unit.eq_ignore_ascii_case("kb") => Some(value),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let doc = "Name:\tcat\nVmPeak:\t 1000 kB\nVmHWM:\t    5432 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(doc), Some(5432));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tcat\n"), None);
    }

    #[test]
    fn unit_case_variants_parse() {
        assert_eq!(parse_vm_hwm("VmHWM:      77 KB\n"), Some(77));
        assert_eq!(parse_vm_hwm("VmHWM:\t77 kb\n"), Some(77));
    }

    #[test]
    fn unknown_units_and_garbage_are_none() {
        // A different unit must not be read as kilobytes.
        assert_eq!(parse_vm_hwm("VmHWM:\t 5 mB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t 5\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t lots kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
    }

    #[test]
    fn missing_proc_is_none_not_panic() {
        // Hosts without procfs (macOS, some containers) must degrade to
        // a skipped measurement, never an error.
        let bogus = std::env::temp_dir().join("asrank_no_such_proc_status");
        assert_eq!(peak_rss_kb_from(&bogus), None);
    }

    #[test]
    fn unreadable_status_document_is_none() {
        // A file that exists but is not a status document (e.g. a
        // stubbed /proc) parses to None rather than garbage.
        let dir = std::env::temp_dir().join(format!("asrank_rss_stub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status");
        std::fs::write(&path, "not a status file\n").unwrap();
        assert_eq!(peak_rss_kb_from(&path), None);
        // Non-kB units in an otherwise well-formed document: same story.
        std::fs::write(&path, "VmHWM:\t 12345 mB\n").unwrap();
        assert_eq!(peak_rss_kb_from(&path), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_process_reports_nonzero_peak() {
        // Any live Linux process has touched at least a few pages.
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
