//! Error type for domain-model construction.

use std::fmt;

/// Errors produced when constructing domain values from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A prefix length above /32 was supplied.
    InvalidPrefixLength(u8),
    /// A textual prefix failed to parse.
    InvalidPrefix(String),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::InvalidPrefixLength(len) => {
                write!(f, "invalid IPv4 prefix length /{len} (max /32)")
            }
            TypesError::InvalidPrefix(s) => write!(f, "invalid IPv4 prefix {s:?}"),
        }
    }
}

impl std::error::Error for TypesError {}

/// Structured failure of one stage of the inference engine.
///
/// The staged engine (`asrank-core::engine`) replaces panics on the
/// inference path with this error: a malformed input fails the stage
/// that detected it — loudly, with the stage named — instead of
/// aborting the whole process. Variants carry owned strings so the
/// error can outlive the engine that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A stage body rejected its input (the engine-path replacement for
    /// a panic): `stage` names the DAG node, `detail` the violated
    /// expectation.
    StageFailed {
        /// Name of the stage that failed (e.g. `s5_topdown`).
        stage: String,
        /// What the stage found wrong with its input.
        detail: String,
    },
    /// A stage name that is not a node of the engine's DAG was requested
    /// (e.g. a typo in `asrank audit --stage`).
    UnknownStage(String),
    /// The artifact store returned (or a stage was handed) an artifact of
    /// the wrong type — an engine wiring bug, reported rather than
    /// unwrapped.
    ArtifactType {
        /// Stage that requested the artifact.
        stage: String,
        /// Artifact kind the stage declared as input.
        expected: String,
        /// Artifact kind actually resolved.
        got: String,
    },
    /// Input ingest failed before any stage could run: the named source
    /// file could not be read or decoded. This is the typed replacement
    /// for the CLI's old `eprintln!` + `Option` loader path, so MRT and
    /// relationship-file failures carry the offending path and reason.
    Ingest {
        /// Path of the input file that failed to load.
        source: String,
        /// Why it failed (I/O error or decode error text).
        detail: String,
    },
}

impl EngineError {
    /// Convenience constructor for [`EngineError::StageFailed`].
    pub fn stage_failed(stage: &str, detail: impl Into<String>) -> Self {
        EngineError::StageFailed {
            stage: stage.to_string(),
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`EngineError::Ingest`].
    pub fn ingest(source: impl Into<String>, detail: impl Into<String>) -> Self {
        EngineError::Ingest {
            source: source.into(),
            detail: detail.into(),
        }
    }

    /// Name of the stage this error is attributed to, when known.
    pub fn stage(&self) -> Option<&str> {
        match self {
            EngineError::StageFailed { stage, .. } | EngineError::ArtifactType { stage, .. } => {
                Some(stage)
            }
            EngineError::UnknownStage(_) | EngineError::Ingest { .. } => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StageFailed { stage, detail } => {
                write!(f, "stage {stage} failed: {detail}")
            }
            EngineError::UnknownStage(name) => {
                write!(f, "unknown engine stage {name:?}")
            }
            EngineError::ArtifactType {
                stage,
                expected,
                got,
            } => write!(
                f,
                "stage {stage} resolved an artifact of the wrong type: expected {expected}, got {got}"
            ),
            EngineError::Ingest { source, detail } => {
                write!(f, "cannot load {source}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TypesError::InvalidPrefixLength(40)
            .to_string()
            .contains("/40"));
        assert!(TypesError::InvalidPrefix("x".into())
            .to_string()
            .contains("\"x\""));
    }

    #[test]
    fn engine_error_display_names_the_stage() {
        let e = EngineError::stage_failed("s5_topdown", "offset out of range");
        assert!(e.to_string().contains("s5_topdown"));
        assert_eq!(e.stage(), Some("s5_topdown"));

        let u = EngineError::UnknownStage("s99".into());
        assert!(u.to_string().contains("s99"));
        assert_eq!(u.stage(), None);

        let t = EngineError::ArtifactType {
            stage: "s2_degrees".into(),
            expected: "sanitized".into(),
            got: "clique".into(),
        };
        assert!(t.to_string().contains("expected sanitized"));
        assert_eq!(t.stage(), Some("s2_degrees"));

        let i = EngineError::ingest("rib.mrt", "truncated header");
        assert!(i.to_string().contains("rib.mrt"));
        assert!(i.to_string().contains("truncated header"));
        assert_eq!(i.stage(), None);
    }
}
