//! Error type for domain-model construction.

use std::fmt;

/// Errors produced when constructing domain values from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// A prefix length above /32 was supplied.
    InvalidPrefixLength(u8),
    /// A textual prefix failed to parse.
    InvalidPrefix(String),
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::InvalidPrefixLength(len) => {
                write!(f, "invalid IPv4 prefix length /{len} (max /32)")
            }
            TypesError::InvalidPrefix(s) => write!(f, "invalid IPv4 prefix {s:?}"),
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TypesError::InvalidPrefixLength(40)
            .to_string()
            .contains("/40"));
        assert!(TypesError::InvalidPrefix("x".into())
            .to_string()
            .contains("\"x\""));
    }
}
