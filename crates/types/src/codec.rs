//! Compact, length-prefixed, checksummed binary framing for persisted
//! engine artifacts.
//!
//! The staged engine (`asrank-core::engine`) memoizes every stage output
//! in memory; this module is the wire half of extending that memoization
//! across process boundaries. A cache file is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        "ASRC" (0x43_52_53_41 little-endian)
//! 4       4     version      format version word (bump on layout change)
//! 8       2     kind         artifact-kind tag (owned by the encoder's caller)
//! 10      8     payload_len  little-endian u64
//! 18      n     payload      artifact-specific encoding
//! 18+n    8     checksum     FxHash of bytes [0, 18+n)
//! ```
//!
//! Design constraints, in priority order:
//!
//! * **No dependencies, no serde.** Everything is hand-rolled over
//!   little-endian primitives so the codec stays inside the vendored-only
//!   build.
//! * **Single-`read` loads.** A frame is self-describing: the caller
//!   reads the whole file into one buffer, validates it with
//!   [`Decoder::open`], and decodes sequences into pre-sized `Vec`s
//!   (lengths are bounds-checked against the remaining payload before any
//!   allocation, so a corrupt length cannot balloon memory).
//! * **Corruption is an error value, never a panic.** Truncated files,
//!   flipped bits, stale versions, and mismatched kinds all surface as
//!   [`CodecError`]; the cache layer treats every variant as a miss and
//!   recomputes.
//!
//! The checksum is [`FxHasher`] over the header and payload. Fx is not
//! cryptographic — the cache directory is trusted local state, and the
//! checksum only needs to catch torn writes and bit rot, deterministically
//! across processes (which `DefaultHasher` would not guarantee).

use crate::fxhash::FxHasher;
use std::fmt;
use std::hash::Hasher;

/// Frame magic: `b"ASRC"` read as a little-endian u32.
pub const CODEC_MAGIC: u32 = u32::from_le_bytes(*b"ASRC");

/// Current frame format version. Bump whenever any artifact encoding
/// changes shape; old files then decode as [`CodecError::BadVersion`]
/// and fall back to recompute.
pub const CODEC_VERSION: u32 = 1;

/// Fixed frame header length (magic + version + kind + payload length).
pub const HEADER_LEN: usize = 18;

/// Trailing checksum length.
pub const TRAILER_LEN: usize = 8;

/// Why a frame failed to decode. Every variant is a recoverable cache
/// miss for the persistence layer — none of them abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The first four bytes are not the frame magic (not a cache file).
    BadMagic {
        /// The magic word actually read.
        got: u32,
    },
    /// The frame was written by a different codec version.
    BadVersion {
        /// The version word actually read.
        got: u32,
    },
    /// The frame holds a different artifact kind than the caller expects.
    BadKind {
        /// Kind tag the caller asked for.
        expected: u16,
        /// Kind tag stored in the frame.
        got: u16,
    },
    /// Header/payload bytes do not hash to the stored checksum.
    BadChecksum {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the frame.
        computed: u64,
    },
    /// The buffer ended before the field being read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A decoded value is structurally impossible (e.g. a sequence length
    /// larger than the remaining payload, or an out-of-range tag).
    BadValue {
        /// What was being read.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { got } => write!(f, "bad frame magic {got:#010x}"),
            CodecError::BadVersion { got } => {
                write!(f, "frame version {got} (expected {CODEC_VERSION})")
            }
            CodecError::BadKind { expected, got } => {
                write!(f, "frame holds artifact kind {got} (expected {expected})")
            }
            CodecError::BadChecksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::Truncated { context } => write!(f, "frame truncated reading {context}"),
            CodecError::BadValue { context, value } => {
                write!(f, "invalid value {value} reading {context}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FxHash of a byte slice — the frame checksum primitive. Public so
/// callers can key cache entries by content with the same function the
/// trailer uses.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Builds one frame. Write primitives in encode order, then call
/// [`Encoder::finish`] to patch the payload length and append the
/// checksum.
#[derive(Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Start a frame for the given artifact-kind tag.
    pub fn new(kind: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&CODEC_MAGIC.to_le_bytes());
        buf.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // payload_len, patched in finish()
        Encoder { buf }
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize as a little-endian u64 (usize is at most 64 bits on
    /// every supported target).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a u32 sequence: length prefix, then the elements.
    pub fn seq_u32(&mut self, vals: &[u32]) {
        self.usize(vals.len());
        self.buf.reserve(vals.len() * 4);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a u64 sequence: length prefix, then the elements.
    pub fn seq_u64(&mut self, vals: &[u64]) {
        self.usize(vals.len());
        self.buf.reserve(vals.len() * 8);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Patch the payload length, append the checksum, and return the
    /// finished frame bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let payload_len = (self.buf.len() - HEADER_LEN) as u64;
        self.buf[10..HEADER_LEN].copy_from_slice(&payload_len.to_le_bytes());
        let sum = checksum64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Reads one validated frame. [`Decoder::open`] checks magic, version,
/// kind, declared length, and checksum up front; the read methods then
/// walk the payload and can only fail on structural impossibilities.
#[derive(Debug)]
pub struct Decoder<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// The artifact-kind tag of a frame, validated only as far as the
    /// header (magic + version + length). Lets a generic cache layer
    /// dispatch on kind before full decode.
    pub fn peek_kind(bytes: &'a [u8]) -> Result<u16, CodecError> {
        Self::validate(bytes).map(|(kind, _)| kind)
    }

    /// Validate a whole frame and return a payload decoder, or the
    /// precise reason the frame is unusable.
    pub fn open(bytes: &'a [u8], expected_kind: u16) -> Result<Self, CodecError> {
        let (kind, payload) = Self::validate(bytes)?;
        if kind != expected_kind {
            return Err(CodecError::BadKind {
                expected: expected_kind,
                got: kind,
            });
        }
        Ok(Decoder { payload, pos: 0 })
    }

    /// Shared header + checksum validation.
    fn validate(bytes: &'a [u8]) -> Result<(u16, &'a [u8]), CodecError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(CodecError::Truncated {
                context: "frame header",
            });
        }
        let word =
            |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let magic = word(0);
        if magic != CODEC_MAGIC {
            return Err(CodecError::BadMagic { got: magic });
        }
        let version = word(4);
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { got: version });
        }
        let kind = u16::from_le_bytes([bytes[8], bytes[9]]);
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[10..HEADER_LEN]);
        let payload_len = u64::from_le_bytes(len8);
        // `HEADER_LEN + payload_len + TRAILER_LEN` must equal the buffer
        // exactly; checked arithmetic so a hostile length cannot wrap.
        let expected_total = usize::try_from(payload_len)
            .ok()
            .and_then(|n| n.checked_add(HEADER_LEN + TRAILER_LEN))
            .ok_or(CodecError::BadValue {
                context: "frame payload length",
                value: payload_len,
            })?;
        if bytes.len() != expected_total {
            return Err(CodecError::Truncated {
                context: "frame payload",
            });
        }
        let body_end = bytes.len() - TRAILER_LEN;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[body_end..]);
        let stored = u64::from_le_bytes(sum8);
        let computed = checksum64(&bytes[..body_end]);
        if stored != computed {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        Ok((kind, &bytes[HEADER_LEN..body_end]))
    }

    /// Bytes of payload not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        let s = self.take(2, context)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a u64 and narrow it to usize.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| CodecError::BadValue { context, value: v })
    }

    /// Read a sequence length and verify `len * elem_size` fits in the
    /// remaining payload — the guard that makes pre-sized allocation safe
    /// against corrupt lengths.
    pub fn seq_len(&mut self, elem_size: usize, context: &'static str) -> Result<usize, CodecError> {
        let len = self.usize(context)?;
        let need = len
            .checked_mul(elem_size)
            .ok_or(CodecError::BadValue {
                context,
                value: len as u64,
            })?;
        if need > self.remaining() {
            return Err(CodecError::BadValue {
                context,
                value: len as u64,
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed u32 sequence into a pre-sized Vec.
    pub fn seq_u32(&mut self, context: &'static str) -> Result<Vec<u32>, CodecError> {
        let len = self.seq_len(4, context)?;
        let raw = self.take(len * 4, context)?;
        let mut out = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(out)
    }

    /// Read a length-prefixed u64 sequence into a pre-sized Vec.
    pub fn seq_u64(&mut self, context: &'static str) -> Result<Vec<u64>, CodecError> {
        let len = self.seq_len(8, context)?;
        let raw = self.take(len * 8, context)?;
        let mut out = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(b));
        }
        Ok(out)
    }

    /// Assert the payload was consumed exactly — trailing garbage means
    /// the frame does not hold what the decoder thinks it holds.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::BadValue {
                context: "trailing payload bytes",
                value: self.remaining() as u64,
            });
        }
        Ok(())
    }

    /// Current read position within the payload. Together with
    /// [`HEADER_LEN`] this lets a caller record frame-relative offsets of
    /// the fields it walks past — the primitive the borrowed artifact
    /// views build their offset tables from.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read a length-prefixed u32 sequence as a borrowed [`U32View`] —
    /// the zero-copy twin of [`Decoder::seq_u32`]. The same length guard
    /// applies; no element is decoded or allocated.
    pub fn seq_u32_view(&mut self, context: &'static str) -> Result<U32View<'a>, CodecError> {
        let len = self.seq_len(4, context)?;
        let raw = self.take(len * 4, context)?;
        Ok(U32View { raw })
    }

    /// Read a length-prefixed u64 sequence as a borrowed [`U64View`] —
    /// the zero-copy twin of [`Decoder::seq_u64`].
    pub fn seq_u64_view(&mut self, context: &'static str) -> Result<U64View<'a>, CodecError> {
        let len = self.seq_len(8, context)?;
        let raw = self.take(len * 8, context)?;
        Ok(U64View { raw })
    }

    /// Skip `n` raw payload bytes (a section the caller indexes later via
    /// a recorded offset instead of decoding now).
    pub fn skip(&mut self, n: usize, context: &'static str) -> Result<(), CodecError> {
        self.take(n, context).map(|_| ())
    }

    /// Borrow `n` raw payload bytes and advance past them — how a view
    /// layer slices out a fixed-stride section (e.g. packed 9-byte
    /// relationship entries) without decoding it.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, context)
    }

    /// The unconsumed payload, without advancing. A view layer pairs this
    /// with [`Decoder::position`] to slice out a variable-stride section
    /// it validates by walking forward.
    pub fn tail(&self) -> &'a [u8] {
        &self.payload[self.pos..]
    }
}

/// Borrowed view over a packed little-endian `u32` sequence: reads
/// happen in place with explicit byte loads, so the underlying bytes
/// need no alignment and are never copied. This is the element type of
/// the zero-decode read path — a mapped cache frame is queried through
/// these views without materializing a single `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct U32View<'a> {
    raw: &'a [u8],
}

impl<'a> U32View<'a> {
    /// View over raw bytes holding packed LE u32s. Trailing bytes that
    /// do not fill a whole element are ignored.
    pub fn new(raw: &'a [u8]) -> Self {
        U32View {
            raw: &raw[..raw.len() - raw.len() % 4],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len() / 4
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Element `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u32> {
        let off = i.checked_mul(4)?;
        let s = self.raw.get(off..off + 4)?;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Iterate the elements in order, decoding each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Decode into an owned `Vec` (the escape hatch back to the owned
    /// world; the read path never calls this).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Binary search for `target`, assuming the elements are sorted
    /// ascending (the caller owns that invariant — interners and member
    /// arenas serialize sorted). Same contract as `slice::binary_search`.
    pub fn binary_search(&self, target: u32) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // In-bounds by the loop invariant; `None` cannot occur.
            match self.get(mid) {
                Some(v) if v < target => lo = mid + 1,
                Some(v) if v > target => hi = mid,
                Some(_) => return Ok(mid),
                None => return Err(lo),
            }
        }
        Err(lo)
    }

    /// Subrange `[start, end)` of elements as a new view, or `None` when
    /// out of range.
    pub fn slice(&self, start: usize, end: usize) -> Option<U32View<'a>> {
        if start > end || end > self.len() {
            return None;
        }
        Some(U32View {
            raw: &self.raw[start * 4..end * 4],
        })
    }
}

/// Borrowed view over a packed little-endian `u64` sequence — the u64
/// twin of [`U32View`].
#[derive(Debug, Clone, Copy)]
pub struct U64View<'a> {
    raw: &'a [u8],
}

impl<'a> U64View<'a> {
    /// View over raw bytes holding packed LE u64s. Trailing bytes that
    /// do not fill a whole element are ignored.
    pub fn new(raw: &'a [u8]) -> Self {
        U64View {
            raw: &raw[..raw.len() - raw.len() % 8],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len() / 8
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Element `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<u64> {
        let off = i.checked_mul(8)?;
        let s = self.raw.get(off..off + 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    /// Iterate the elements in order, decoding each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.raw.chunks_exact(8).map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_le_bytes(b)
        })
    }

    /// Decode into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut e = Encoder::new(7);
        e.u8(3);
        e.u32(0xdead_beef);
        e.u64(42);
        e.seq_u32(&[1, 2, 3]);
        e.seq_u64(&[9, 10]);
        e.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample_frame();
        assert_eq!(Decoder::peek_kind(&bytes), Ok(7));
        let mut d = Decoder::open(&bytes, 7).unwrap();
        assert_eq!(d.u8("a").unwrap(), 3);
        assert_eq!(d.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(d.u64("c").unwrap(), 42);
        assert_eq!(d.seq_u32("d").unwrap(), vec![1, 2, 3]);
        assert_eq!(d.seq_u64("e").unwrap(), vec![9, 10]);
        d.finish().unwrap();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = sample_frame();
        assert_eq!(
            Decoder::open(&bytes, 8).map(|_| ()).unwrap_err(),
            CodecError::BadKind {
                expected: 8,
                got: 7
            }
        );
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // Any single-bit corruption must surface as *some* CodecError —
        // checksum, magic, version, length, or kind — never a panic or a
        // silent wrong decode.
        let good = sample_frame();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Decoder::open(&bad, 7).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_caught() {
        let good = sample_frame();
        for cut in 0..good.len() {
            assert!(
                Decoder::open(&good[..cut], 7).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = sample_frame();
        bytes[4..8].copy_from_slice(&(CODEC_VERSION + 1).to_le_bytes());
        // Re-seal so only the version differs.
        let body_end = bytes.len() - TRAILER_LEN;
        let sum = checksum64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Decoder::open(&bytes, 7).map(|_| ()).unwrap_err(),
            CodecError::BadVersion {
                got: CODEC_VERSION + 1
            }
        );
    }

    #[test]
    fn corrupt_sequence_length_cannot_force_huge_allocation() {
        let mut e = Encoder::new(1);
        e.seq_u32(&[1, 2, 3]);
        let mut bytes = e.finish();
        // Overwrite the sequence length with u64::MAX and re-seal.
        bytes[HEADER_LEN..HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = bytes.len() - TRAILER_LEN;
        let sum = checksum64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        let mut d = Decoder::open(&bytes, 1).unwrap();
        assert!(matches!(
            d.seq_u32("seq"),
            Err(CodecError::BadValue { .. })
        ));
    }

    #[test]
    fn empty_payload_frame_roundtrips() {
        let bytes = Encoder::new(0).finish();
        let d = Decoder::open(&bytes, 0).unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn seq_views_match_owned_decode() {
        let bytes = sample_frame();
        let mut owned = Decoder::open(&bytes, 7).unwrap();
        let mut viewed = Decoder::open(&bytes, 7).unwrap();
        owned.u8("a").unwrap();
        owned.u32("b").unwrap();
        owned.u64("c").unwrap();
        viewed.u8("a").unwrap();
        viewed.u32("b").unwrap();
        viewed.u64("c").unwrap();
        assert_eq!(owned.position(), viewed.position());
        let o32 = owned.seq_u32("d").unwrap();
        let v32 = viewed.seq_u32_view("d").unwrap();
        assert_eq!(v32.to_vec(), o32);
        assert_eq!(v32.len(), o32.len());
        for (i, &want) in o32.iter().enumerate() {
            assert_eq!(v32.get(i), Some(want));
        }
        assert_eq!(v32.get(o32.len()), None);
        let o64 = owned.seq_u64("e").unwrap();
        let v64 = viewed.seq_u64_view("e").unwrap();
        assert_eq!(v64.to_vec(), o64);
        for (i, &want) in o64.iter().enumerate() {
            assert_eq!(v64.get(i), Some(want));
        }
        assert_eq!(owned.position(), viewed.position());
        owned.finish().unwrap();
        viewed.finish().unwrap();
    }

    #[test]
    fn u32_view_binary_search_matches_slice() {
        let vals: Vec<u32> = vec![2, 5, 5, 9, 40, 41, 1000];
        let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let view = U32View::new(&raw);
        for probe in [0u32, 2, 3, 5, 9, 39, 40, 42, 1000, 1001] {
            match (view.binary_search(probe), vals.binary_search(&probe)) {
                (Ok(i), Ok(_)) => assert_eq!(vals[i], probe),
                (Err(a), Err(b)) => assert_eq!(a, b, "insert point for {probe}"),
                (a, b) => panic!("search {probe}: view {a:?} vs slice {b:?}"),
            }
        }
    }

    #[test]
    fn u32_view_slice_bounds() {
        let vals: Vec<u32> = (0..10).collect();
        let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let view = U32View::new(&raw);
        let mid = view.slice(3, 7).unwrap();
        assert_eq!(mid.to_vec(), vec![3, 4, 5, 6]);
        assert!(view.slice(7, 3).is_none());
        assert!(view.slice(0, 11).is_none());
        assert_eq!(view.slice(5, 5).unwrap().len(), 0);
    }

    #[test]
    fn skip_advances_past_raw_sections() {
        let bytes = sample_frame();
        let mut d = Decoder::open(&bytes, 7).unwrap();
        // a(1) + b(4) + c(8) = 13 bytes of scalars.
        d.skip(13, "scalars").unwrap();
        assert_eq!(d.position(), 13);
        assert_eq!(d.seq_u32("d").unwrap(), vec![1, 2, 3]);
        assert!(d.skip(usize::MAX, "overrun").is_err());
    }
}
