//! Fixed-universe bitsets for dense-id graph algorithms.
//!
//! The cone computations union tens of thousands of AS sets; a packed
//! `u64` bitset makes each union a word-parallel `|=` sweep (64 members
//! per instruction) instead of per-element hash inserts, and membership a
//! single shift-and-mask. The universe (number of dense ids) is fixed at
//! construction — exactly the shape produced by [`crate::AsnInterner`].

use std::fmt;

/// A set of dense ids in `0..universe`, packed 64 per word.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    universe: usize,
}

impl BitSet {
    /// An empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        BitSet {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
        }
    }

    /// Size of the universe (maximum id + 1), not the member count.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Add `id` to the set.
    ///
    /// # Panics
    /// Panics if `id >= universe`.
    pub fn insert(&mut self, id: u32) {
        assert!((id as usize) < self.universe, "id {id} out of universe");
        self.words[(id / 64) as usize] |= 1u64 << (id % 64);
    }

    /// True when `id` is in the set (ids outside the universe are not).
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get((id / 64) as usize)
            .is_some_and(|w| w >> (id % 64) & 1 == 1)
    }

    /// Word-parallel union: `self |= other`.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of members.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate members in increasing id order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            // Peel set bits low-to-high with trailing_zeros.
            std::iter::successors(
                if word == 0 { None } else { Some(word) },
                |&w| {
                    let next = w & (w - 1);
                    if next == 0 {
                        None
                    } else {
                        Some(next)
                    }
                },
            )
            .map(move |w| (wi * 64) as u32 + w.trailing_zeros())
        })
    }

    /// The raw packed words (low id = low bit of word 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

impl FromIterator<u32> for BitSet {
    /// Collect ids into a set sized to the largest id seen.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let ids: Vec<u32> = iter.into_iter().collect();
        let universe = ids.iter().max().map(|&m| m as usize + 1).unwrap_or(0);
        let mut s = BitSet::new(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        for id in [0u32, 63, 64, 127, 129] {
            s.insert(id);
        }
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(s.contains(127) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(!s.contains(1000), "out-of-universe ids are absent");
        assert_eq!(s.count_ones(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn union_is_word_parallel_or() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(2);
        b.insert(70);
        a.union_with(&b);
        let members: Vec<u32> = a.iter_ones().collect();
        assert_eq!(members, vec![1, 2, 70]);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let ids = [5u32, 0, 64, 63, 65, 199];
        let s: BitSet = ids.iter().copied().collect();
        let got: Vec<u32> = s.iter_ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
        assert_eq!(s.universe(), 200);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_universe_mismatch_panics() {
        BitSet::new(10).union_with(&BitSet::new(11));
    }
}
