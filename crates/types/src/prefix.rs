//! IPv4 prefixes.
//!
//! The paper's input is a set of RIB entries — (prefix, AS path) pairs seen
//! at each vantage point. Prefixes matter to the reproduction in three
//! places: the simulator originates them, the MRT codec serializes them in
//! NLRI encoding, and the cone analysis weighs ASes by the address space
//! their customer cone announces.

use crate::error::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix in CIDR notation (`a.b.c.d/len`).
///
/// The network address is stored in host byte order and is always masked to
/// its length, so two equal prefixes always compare equal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ipv4Prefix {
    network: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct a prefix, masking `addr` down to `len` bits.
    ///
    /// Returns an error for lengths above 32.
    pub fn new(addr: u32, len: u8) -> Result<Self, TypesError> {
        if len > 32 {
            return Err(TypesError::InvalidPrefixLength(len));
        }
        Ok(Self {
            network: addr & Self::mask(len),
            len,
        })
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const DEFAULT_ROUTE: Ipv4Prefix = Ipv4Prefix { network: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Masked network address, host byte order.
    pub fn network(&self) -> u32 {
        self.network
    }

    /// Prefix length in bits (not a container length; a /0 prefix is
    /// the default route, not "empty").
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered by this prefix.
    ///
    /// ```
    /// use asrank_types::Ipv4Prefix;
    /// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    /// assert_eq!(p.address_count(), 1 << 24);
    /// ```
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// True when `other` is fully contained within `self`
    /// (equal prefixes contain each other).
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.network & Self::mask(self.len)) == self.network
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.network
    }

    /// Split into the two child prefixes one bit longer, if any.
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let low = Ipv4Prefix {
            network: self.network,
            len,
        };
        let high = Ipv4Prefix {
            network: self.network | (1u32 << (32 - len as u32)),
            len,
        };
        Some((low, high))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.network;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            n >> 24,
            (n >> 16) & 0xff,
            (n >> 8) & 0xff,
            n & 0xff,
            self.len
        )
    }
}

impl FromStr for Ipv4Prefix {
    type Err = TypesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || TypesError::InvalidPrefix(s.to_string());
        let (addr_s, len_s) = s.split_once('/').ok_or_else(bad)?;
        let len: u8 = len_s.parse().map_err(|_| bad())?;
        let mut octets = addr_s.split('.');
        let mut addr: u32 = 0;
        for _ in 0..4 {
            let o: u8 = octets.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            addr = (addr << 8) | o as u32;
        }
        if octets.next().is_some() {
            return Err(bad());
        }
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.128.0/17", "1.2.3.4/32"] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn network_is_masked_on_construction() {
        let p = Ipv4Prefix::new(0x0a01_02ff, 24).unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
        let q: Ipv4Prefix = "10.1.2.255/24".parse().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.1/8".parse::<Ipv4Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!(Ipv4Prefix::new(0, 40).is_err());
    }

    #[test]
    fn containment() {
        let p8: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Ipv4Prefix = "10.5.0.0/16".parse().unwrap();
        let other: Ipv4Prefix = "11.0.0.0/16".parse().unwrap();
        assert!(p8.contains(&p16));
        assert!(!p16.contains(&p8));
        assert!(p8.contains(&p8));
        assert!(!p8.contains(&other));
        assert!(p8.contains_addr(0x0aff_ffff));
        assert!(!p8.contains_addr(0x0b00_0000));
        assert!(Ipv4Prefix::DEFAULT_ROUTE.contains(&p8));
    }

    #[test]
    fn children_split_cleanly() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.children().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(p.contains(&lo) && p.contains(&hi));
        let host: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(host.children().is_none());
    }

    #[test]
    fn address_count() {
        let p: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
        assert_eq!(p.address_count(), 1u64 << 32);
        let q: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(q.address_count(), 1);
    }
}
