//! Ground-truth AS-level topologies.
//!
//! The original study validated against partial external corpora because no
//! ground truth exists for the real Internet. The reproduction inverts
//! this: the `as-topology-gen` substrate *generates* an annotated topology
//! ([`GroundTruth`]), the simulator derives BGP paths from it, and the
//! validation framework measures the inference algorithms against it —
//! both directly and through emulated noisy corpora that mimic the paper's
//! three validation sources.

use crate::asn::Asn;
use crate::prefix::Ipv4Prefix;
use crate::relationship::{Orientation, RelationshipMap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structural role of an AS in the generated topology.
///
/// Mirrors the strata the paper's Internet exhibits: a Tier-1 clique at the
/// top, transit hierarchies below, and an overwhelmingly large edge of
/// stubs, content networks, and enterprises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsClass {
    /// Member of the top clique (Tier-1): no providers, peers with every
    /// other clique member.
    Tier1,
    /// Large national/international transit provider.
    LargeTransit,
    /// Regional mid-tier transit provider.
    MidTransit,
    /// Small local transit provider (has at least one customer AS).
    SmallTransit,
    /// Stub access/enterprise network with no customers.
    Stub,
    /// Content/CDN network: stub-like transit profile but dense peering.
    Content,
    /// Internet exchange route server ASN (appears in paths as an artifact
    /// and must be stripped by sanitization).
    IxpRouteServer,
}

impl AsClass {
    /// True for classes that provide transit to at least one customer.
    pub fn is_transit(self) -> bool {
        matches!(
            self,
            AsClass::Tier1 | AsClass::LargeTransit | AsClass::MidTransit | AsClass::SmallTransit
        )
    }
}

/// A complete annotated AS-level topology with known relationships —
/// the substrate every experiment is built on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The true business relationship of every link.
    pub relationships: RelationshipMap,
    /// Structural class of every AS.
    pub classes: HashMap<Asn, AsClass>,
    /// Prefixes originated by each AS.
    pub prefixes: HashMap<Asn, Vec<Ipv4Prefix>>,
}

impl GroundTruth {
    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.relationships.len()
    }

    /// ASNs of the planted Tier-1 clique, sorted.
    pub fn clique(&self) -> Vec<Asn> {
        let mut c: Vec<Asn> = self
            .classes
            .iter()
            .filter(|(_, &cl)| cl == AsClass::Tier1)
            .map(|(&a, _)| a)
            .collect();
        c.sort();
        c
    }

    /// ASes of a given class, sorted.
    pub fn ases_of_class(&self, class: AsClass) -> Vec<Asn> {
        let mut v: Vec<Asn> = self
            .classes
            .iter()
            .filter(|(_, &cl)| cl == class)
            .map(|(&a, _)| a)
            .collect();
        v.sort();
        v
    }

    /// Total number of prefixes originated.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.values().map(Vec::len).sum()
    }

    /// The *true* customer cone of `asn`: the set of ASes reachable by
    /// repeatedly following provider→customer links, including `asn`
    /// itself. This is the paper's "recursive customer cone" computed on
    /// ground truth rather than on inferred relationships.
    pub fn true_customer_cone(&self, asn: Asn) -> std::collections::HashSet<Asn> {
        let adj = self.relationships.adjacency();
        let mut cone = std::collections::HashSet::new();
        let mut stack = vec![asn];
        while let Some(x) = stack.pop() {
            if !cone.insert(x) {
                continue;
            }
            if let Some(neigh) = adj.get(&x) {
                for &(n, o) in neigh {
                    if o == Orientation::Customer {
                        stack.push(n);
                    }
                }
            }
        }
        cone
    }

    /// Sanity-check structural invariants of a generated topology; returns
    /// a list of human-readable violations (empty = consistent).
    ///
    /// Checked invariants:
    /// 1. clique members have no providers;
    /// 2. every clique pair is connected by a p2p link;
    /// 3. no AS is its own provider transitively (the c2p graph is acyclic);
    /// 4. every non-clique, non-IXP AS has at least one provider
    ///    (the topology is fully connected through transit).
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let adj = self.relationships.adjacency();
        let clique = self.clique();

        for &t1 in &clique {
            let providers = adj
                .get(&t1)
                .map(|n| {
                    n.iter()
                        .filter(|&&(_, o)| o == Orientation::Provider)
                        .count()
                })
                .unwrap_or(0);
            if providers > 0 {
                problems.push(format!("clique member {t1} has {providers} provider(s)"));
            }
        }
        for (i, &x) in clique.iter().enumerate() {
            for &y in &clique[i + 1..] {
                if !self.relationships.is_p2p(x, y) {
                    problems.push(format!("clique pair {x},{y} not connected by p2p"));
                }
            }
        }

        // Cycle check over the customer->provider digraph via iterative DFS
        // coloring (0 unvisited / 1 on-stack / 2 done).
        let mut color: HashMap<Asn, u8> = HashMap::new();
        for &start in self.classes.keys() {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // stack of (node, next-neighbor-index)
            let mut stack: Vec<(Asn, usize)> = vec![(start, 0)];
            color.insert(start, 1);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let providers: Vec<Asn> = adj
                    .get(&node)
                    .map(|n| {
                        n.iter()
                            .filter(|&&(_, o)| o == Orientation::Provider)
                            .map(|&(a, _)| a)
                            .collect()
                    })
                    .unwrap_or_default();
                if *idx < providers.len() {
                    let next = providers[*idx];
                    *idx += 1;
                    match color.get(&next).copied().unwrap_or(0) {
                        0 => {
                            color.insert(next, 1);
                            stack.push((next, 0));
                        }
                        1 => problems.push(format!("c2p cycle through {next}")),
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                }
            }
        }

        for (&asn, &class) in &self.classes {
            if class == AsClass::Tier1 || class == AsClass::IxpRouteServer {
                continue;
            }
            let has_provider = adj
                .get(&asn)
                .map(|n| n.iter().any(|&(_, o)| o == Orientation::Provider))
                .unwrap_or(false);
            if !has_provider {
                problems.push(format!("{asn} ({class:?}) has no provider"));
            }
        }

        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// tiny hand-built topology:
    ///
    /// ```text
    ///   1 ===p2p=== 2        (clique)
    ///   |           |
    ///  10          20        (transit, customers of 1 / 2)
    ///   |           |
    /// 100         200        (stubs)
    /// ```
    fn tiny() -> GroundTruth {
        let mut gt = GroundTruth::default();
        gt.relationships.insert_p2p(Asn(1), Asn(2));
        gt.relationships.insert_c2p(Asn(10), Asn(1));
        gt.relationships.insert_c2p(Asn(20), Asn(2));
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        gt.relationships.insert_c2p(Asn(200), Asn(20));
        for (asn, class) in [
            (1, AsClass::Tier1),
            (2, AsClass::Tier1),
            (10, AsClass::SmallTransit),
            (20, AsClass::SmallTransit),
            (100, AsClass::Stub),
            (200, AsClass::Stub),
        ] {
            gt.classes.insert(Asn(asn), class);
        }
        gt.prefixes
            .insert(Asn(100), vec!["100.0.0.0/16".parse().unwrap()]);
        gt
    }

    #[test]
    fn clique_listing() {
        assert_eq!(tiny().clique(), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn true_cone() {
        let gt = tiny();
        let cone1 = gt.true_customer_cone(Asn(1));
        assert_eq!(cone1, [Asn(1), Asn(10), Asn(100)].into_iter().collect());
        let cone100 = gt.true_customer_cone(Asn(100));
        assert_eq!(cone100, [Asn(100)].into_iter().collect());
    }

    #[test]
    fn invariants_hold_on_tiny() {
        assert!(tiny().check_invariants().is_empty());
    }

    #[test]
    fn invariant_catches_clique_with_provider() {
        let mut gt = tiny();
        gt.relationships.insert_c2p(Asn(1), Asn(99));
        gt.classes.insert(Asn(99), AsClass::LargeTransit);
        let problems = gt.check_invariants();
        assert!(problems.iter().any(|p| p.contains("provider")));
    }

    #[test]
    fn invariant_catches_c2p_cycle() {
        let mut gt = tiny();
        // 10 -> 1 already exists; add 1 -> 100 -> 10 making a cycle
        // 10 -> 1 -> 100 -> 10 in the customer->provider digraph.
        gt.relationships.insert_c2p(Asn(1), Asn(100));
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        let problems = gt.check_invariants();
        assert!(problems.iter().any(|p| p.contains("cycle")), "{problems:?}");
    }

    #[test]
    fn invariant_catches_orphan() {
        let mut gt = tiny();
        gt.classes.insert(Asn(999), AsClass::Stub);
        let problems = gt.check_invariants();
        assert!(problems.iter().any(|p| p.contains("no provider")));
    }

    #[test]
    fn counters() {
        let gt = tiny();
        assert_eq!(gt.as_count(), 6);
        assert_eq!(gt.link_count(), 5);
        assert_eq!(gt.prefix_count(), 1);
        assert_eq!(gt.ases_of_class(AsClass::Stub), vec![Asn(100), Asn(200)]);
    }
}
