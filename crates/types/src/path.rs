//! BGP AS paths and collections of observed paths.
//!
//! The ASRank algorithm consumes nothing but AS paths observed at vantage
//! points (VPs). [`AsPath`] models one path (VP-side first, origin last),
//! with the operations the sanitization step needs: prepending compression,
//! loop detection, and reserved-ASN screening. [`PathSet`] is the dataset
//! the pipeline ingests: a deduplicated bag of [`PathSample`]s tagged with
//! the VP and prefix they were observed for.

use crate::asn::Asn;
use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A BGP AS path, ordered from the vantage point (index 0) toward the
/// origin AS (last index), the same orientation as the wire format.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct AsPath(pub Vec<Asn>);

impl AsPath {
    /// Build a path from raw ASN values; first element is the VP side.
    pub fn from_u32s<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        AsPath(iter.into_iter().map(Asn).collect())
    }

    /// Number of hops (ASes) in the path, including any prepending.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the (never legal on the wire, but defensively handled)
    /// empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The AS that originated the route (last hop), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The AS nearest the vantage point (first hop), if any.
    pub fn head(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Iterate over hops from VP to origin.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.0.iter().copied()
    }

    /// Return a copy with consecutive duplicate ASNs collapsed.
    ///
    /// BGP speakers prepend their own ASN to lengthen paths for traffic
    /// engineering; prepending carries no relationship information, so the
    /// sanitizer collapses it first (paper §3, step 1).
    ///
    /// ```
    /// use asrank_types::AsPath;
    /// let p = AsPath::from_u32s([7018, 3356, 3356, 3356, 9]);
    /// assert_eq!(p.compress_prepending(), AsPath::from_u32s([7018, 3356, 9]));
    /// ```
    pub fn compress_prepending(&self) -> AsPath {
        let mut out: Vec<Asn> = Vec::with_capacity(self.0.len());
        for &asn in &self.0 {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
        AsPath(out)
    }

    /// True when the same ASN appears at two non-adjacent positions.
    ///
    /// A loop means the path is an artifact (or poisoned) and must be
    /// discarded: BGP's loop prevention makes genuine loops impossible.
    /// Prepending (adjacent repeats) is *not* a loop.
    pub fn has_loop(&self) -> bool {
        let compressed = self.compress_prepending();
        let mut seen = HashSet::with_capacity(compressed.0.len());
        compressed.0.iter().any(|asn| !seen.insert(*asn))
    }

    /// True when every hop is a globally-routable public ASN.
    pub fn all_routable(&self) -> bool {
        self.0.iter().all(|a| a.is_routable())
    }

    /// Iterate over adjacent pairs `(near, far)` from the VP outward.
    pub fn links(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    /// Iterate over consecutive triplets `(a, b, c)` from the VP outward.
    ///
    /// Triplets are the unit of evidence in the top-down inference step:
    /// knowing the `a–b` relationship constrains the `b–c` relationship in
    /// a valley-free path.
    pub fn triplets(&self) -> impl Iterator<Item = (Asn, Asn, Asn)> + '_ {
        self.0.windows(3).map(|w| (w[0], w[1], w[2]))
    }

    /// Position of `asn` in the path, if present.
    pub fn position(&self, asn: Asn) -> Option<usize> {
        self.0.iter().position(|&a| a == asn)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for asn in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", asn.0)?;
            first = false;
        }
        Ok(())
    }
}

impl From<Vec<Asn>> for AsPath {
    fn from(v: Vec<Asn>) -> Self {
        AsPath(v)
    }
}

/// One observed RIB entry: an AS path for `prefix` seen at vantage point
/// `vp` (which is also the first hop of `path`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSample {
    /// The AS hosting the vantage point that observed this path.
    pub vp: Asn,
    /// The prefix the path was selected for.
    pub prefix: Ipv4Prefix,
    /// The AS path, VP first, origin last.
    pub path: AsPath,
}

/// A dataset of observed AS paths — the complete input of the inference
/// pipeline, equivalent to the union of all RouteViews/RIS RIB dumps for
/// one snapshot in the paper.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathSet {
    samples: Vec<PathSample>,
}

impl PathSet {
    /// Create an empty path set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, sample: PathSample) {
        self.samples.push(sample);
    }

    /// Number of observations (RIB entries), counting duplicates.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no path has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterate over all samples.
    pub fn iter(&self) -> impl Iterator<Item = &PathSample> {
        self.samples.iter()
    }

    /// Iterate over the AS paths only.
    pub fn paths(&self) -> impl Iterator<Item = &AsPath> {
        self.samples.iter().map(|s| &s.path)
    }

    /// Distinct AS paths (the unit the paper reports in its data table).
    pub fn distinct_paths(&self) -> HashSet<&AsPath> {
        self.samples.iter().map(|s| &s.path).collect()
    }

    /// Distinct vantage points contributing at least one path.
    pub fn vantage_points(&self) -> HashSet<Asn> {
        self.samples.iter().map(|s| s.vp).collect()
    }

    /// Distinct prefixes observed.
    pub fn prefixes(&self) -> HashSet<Ipv4Prefix> {
        self.samples.iter().map(|s| s.prefix).collect()
    }

    /// Distinct ASNs appearing anywhere in any path.
    pub fn ases(&self) -> HashSet<Asn> {
        let mut out = HashSet::new();
        for s in &self.samples {
            out.extend(s.path.iter());
        }
        out
    }

    /// Number of distinct prefixes each VP observed, keyed by VP.
    ///
    /// The paper distinguishes *full-feed* VPs (those seeing nearly the
    /// whole routed table) from partial feeds; this map is the raw material
    /// for that classification.
    pub fn prefixes_per_vp(&self) -> HashMap<Asn, usize> {
        let mut per_vp: HashMap<Asn, HashSet<Ipv4Prefix>> = HashMap::new();
        for s in &self.samples {
            per_vp.entry(s.vp).or_default().insert(s.prefix);
        }
        per_vp
            .into_iter()
            .map(|(vp, set)| (vp, set.len()))
            .collect()
    }

    /// VPs that observed at least `threshold` fraction of all prefixes.
    pub fn full_feed_vps(&self, threshold: f64) -> HashSet<Asn> {
        let total = self.prefixes().len();
        if total == 0 {
            return HashSet::new();
        }
        self.prefixes_per_vp()
            .into_iter()
            .filter(|&(_, n)| n as f64 >= threshold * total as f64)
            .map(|(vp, _)| vp)
            .collect()
    }

    /// Merge another path set into this one.
    pub fn extend(&mut self, other: PathSet) {
        self.samples.extend(other.samples);
    }

    /// Consume the set and return the raw samples.
    pub fn into_samples(self) -> Vec<PathSample> {
        self.samples
    }

    /// Mutable access to the samples in place — incremental consumers
    /// (delta sessions) patch replaced paths at their positions instead
    /// of rebuilding the vec per update batch.
    pub fn samples_mut(&mut self) -> &mut [PathSample] {
        &mut self.samples
    }

    /// Rebuild a set from raw samples (inverse of [`Self::into_samples`]).
    pub fn from_samples(samples: Vec<PathSample>) -> Self {
        PathSet { samples }
    }

    /// Remove the samples at `positions` (sorted ascending, deduplicated)
    /// in place, preserving the order of the survivors. One compaction
    /// pass, no reallocation — the incremental consumers fold a whole
    /// batch of withdrawals with a single call instead of rebuilding the
    /// vec.
    pub fn remove_sorted_positions(&mut self, positions: &[u32]) {
        if positions.is_empty() {
            return;
        }
        let mut next = 0usize;
        let mut out = 0usize;
        for pos in 0..self.samples.len() {
            if next < positions.len() && positions[next] as usize == pos {
                next += 1;
                continue;
            }
            if out != pos {
                self.samples.swap(out, pos);
            }
            out += 1;
        }
        self.samples.truncate(out);
    }
}

impl FromIterator<PathSample> for PathSet {
    fn from_iter<T: IntoIterator<Item = PathSample>>(iter: T) -> Self {
        PathSet {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(vp: u32, pfx: &str, path: &[u32]) -> PathSample {
        PathSample {
            vp: Asn(vp),
            prefix: pfx.parse().unwrap(),
            path: AsPath::from_u32s(path.iter().copied()),
        }
    }

    #[test]
    fn compress_prepending_idempotent() {
        let p = AsPath::from_u32s([1, 1, 2, 3, 3, 3, 4]);
        let c = p.compress_prepending();
        assert_eq!(c, AsPath::from_u32s([1, 2, 3, 4]));
        assert_eq!(c.compress_prepending(), c);
    }

    #[test]
    fn loop_detection_ignores_prepending() {
        assert!(!AsPath::from_u32s([1, 2, 2, 3]).has_loop());
        assert!(AsPath::from_u32s([1, 2, 3, 2]).has_loop());
        assert!(AsPath::from_u32s([1, 2, 1]).has_loop());
        assert!(!AsPath::from_u32s([]).has_loop());
    }

    #[test]
    fn links_and_triplets() {
        let p = AsPath::from_u32s([1, 2, 3, 4]);
        let links: Vec<_> = p.links().collect();
        assert_eq!(
            links,
            vec![(Asn(1), Asn(2)), (Asn(2), Asn(3)), (Asn(3), Asn(4))]
        );
        let trips: Vec<_> = p.triplets().collect();
        assert_eq!(
            trips,
            vec![(Asn(1), Asn(2), Asn(3)), (Asn(2), Asn(3), Asn(4))]
        );
    }

    #[test]
    fn origin_head_display() {
        let p = AsPath::from_u32s([7018, 3356, 9]);
        assert_eq!(p.origin(), Some(Asn(9)));
        assert_eq!(p.head(), Some(Asn(7018)));
        assert_eq!(p.to_string(), "7018 3356 9");
        assert_eq!(AsPath::default().origin(), None);
    }

    #[test]
    fn routable_screening() {
        assert!(AsPath::from_u32s([1, 2, 3]).all_routable());
        assert!(!AsPath::from_u32s([1, 64512, 3]).all_routable());
        assert!(!AsPath::from_u32s([1, 0, 3]).all_routable());
    }

    #[test]
    fn pathset_statistics() {
        let mut ps = PathSet::new();
        ps.push(sample(10, "10.0.0.0/8", &[10, 2, 3]));
        ps.push(sample(10, "11.0.0.0/8", &[10, 2, 4]));
        ps.push(sample(20, "10.0.0.0/8", &[20, 2, 3]));
        ps.push(sample(20, "10.0.0.0/8", &[20, 2, 3])); // duplicate

        assert_eq!(ps.len(), 4);
        assert_eq!(ps.distinct_paths().len(), 3);
        assert_eq!(ps.vantage_points().len(), 2);
        assert_eq!(ps.prefixes().len(), 2);
        assert_eq!(ps.ases().len(), 5);
        let per_vp = ps.prefixes_per_vp();
        assert_eq!(per_vp[&Asn(10)], 2);
        assert_eq!(per_vp[&Asn(20)], 1);
        // VP 10 saw 2/2 prefixes: full feed. VP 20 saw 1/2: partial.
        let full = ps.full_feed_vps(0.8);
        assert!(full.contains(&Asn(10)));
        assert!(!full.contains(&Asn(20)));
    }

    #[test]
    fn empty_pathset_full_feed_is_empty() {
        assert!(PathSet::new().full_feed_vps(0.5).is_empty());
    }

    #[test]
    fn extend_and_into_samples() {
        let mut a = PathSet::new();
        a.push(sample(1, "10.0.0.0/8", &[1, 2]));
        let mut b = PathSet::new();
        b.push(sample(3, "11.0.0.0/8", &[3, 4]));
        a.extend(b);
        assert_eq!(a.len(), 2);
        let samples = a.into_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].vp, Asn(1));
    }

    #[test]
    fn position_finds_hops() {
        let p = AsPath::from_u32s([5, 6, 7]);
        assert_eq!(p.position(Asn(6)), Some(1));
        assert_eq!(p.position(Asn(9)), None);
    }

    #[test]
    fn remove_sorted_positions_compacts_in_place() {
        let mut set: PathSet = (0..10u32)
            .map(|i| sample(i, "10.0.0.0/8", &[i, i + 1]))
            .collect();
        // Removals at the front, middle, adjacent pair, and last slot.
        set.remove_sorted_positions(&[0, 3, 4, 9]);
        let vps: Vec<u32> = set.iter().map(|s| s.vp.0).collect();
        assert_eq!(vps, vec![1, 2, 5, 6, 7, 8]);
        // Empty removal set is a no-op.
        set.remove_sorted_positions(&[]);
        assert_eq!(set.len(), 6);
        // Removing every survivor empties the set.
        set.remove_sorted_positions(&[0, 1, 2, 3, 4, 5]);
        assert!(set.is_empty());
    }
}
