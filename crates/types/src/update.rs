//! BGP update messages at the AS-path abstraction level.
//!
//! Collectors record two artifact kinds: RIB snapshots ([`crate::PathSet`])
//! and *update streams* — the announcements and withdrawals a vantage
//! point emits as routing reacts to events (link failures, depeerings,
//! new prefixes). [`UpdateMessage`] is the shared vocabulary between the
//! simulator (which produces updates by diffing snapshots around an
//! event) and the MRT codec (which serializes them as `BGP4MP`).

use crate::asn::Asn;
use crate::path::{AsPath, PathSample, PathSet};
use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One logical BGP update from a vantage point: some prefixes withdrawn,
/// some announced with a (shared or per-prefix) path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct UpdateMessage {
    /// The vantage point emitting the update.
    pub vp: Asn,
    /// Prefixes no longer reachable.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Newly announced or re-announced prefixes with their AS paths
    /// (VP first, origin last).
    pub announced: Vec<(Ipv4Prefix, AsPath)>,
}

impl UpdateMessage {
    /// True when the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.announced.is_empty()
    }

    /// Total prefixes touched.
    pub fn churn(&self) -> usize {
        self.withdrawn.len() + self.announced.len()
    }
}

/// The net effect of an update stream on one routing-table entry.
///
/// A RIB holds at most one best route per `(vantage point, prefix)`
/// pair, so however many announcements and withdrawals a stream carries
/// for that pair, only the last one matters. Folding a stream therefore
/// yields one `PathDelta` per touched entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathDelta {
    /// The entry's best route is now this path (insert or replace).
    Announce(AsPath),
    /// The entry is gone from the table.
    Withdraw,
}

/// A batch of folded routing-table deltas, keyed by `(vp, prefix)` and
/// held in ascending key order so identical update streams always fold
/// to byte-identical batches.
///
/// [`UpdateBatch::apply`] defines the batch's meaning on a [`PathSet`]
/// and doubles as the from-scratch oracle the incremental engine is
/// property-tested against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct UpdateBatch {
    deltas: Vec<(Asn, Ipv4Prefix, PathDelta)>,
}

impl UpdateBatch {
    /// Fold a sequence of update messages, in arrival order, into one
    /// delta per touched `(vp, prefix)` entry. Within a message the
    /// withdrawals apply before the announcements (so an update that
    /// both withdraws and re-announces a prefix nets to the announce);
    /// across messages the later message wins.
    pub fn from_messages<'a, I>(messages: I) -> Self
    where
        I: IntoIterator<Item = &'a UpdateMessage>,
    {
        let mut folded: BTreeMap<(Asn, Ipv4Prefix), PathDelta> = BTreeMap::new();
        for msg in messages {
            for prefix in &msg.withdrawn {
                folded.insert((msg.vp, *prefix), PathDelta::Withdraw);
            }
            for (prefix, path) in &msg.announced {
                folded.insert((msg.vp, *prefix), PathDelta::Announce(path.clone()));
            }
        }
        UpdateBatch {
            deltas: folded
                .into_iter()
                .map(|((vp, prefix), delta)| (vp, prefix, delta))
                .collect(),
        }
    }

    /// Build directly from per-entry deltas (later entries win on key
    /// collisions, matching [`Self::from_messages`]).
    pub fn from_deltas<I>(deltas: I) -> Self
    where
        I: IntoIterator<Item = (Asn, Ipv4Prefix, PathDelta)>,
    {
        let folded: BTreeMap<(Asn, Ipv4Prefix), PathDelta> = deltas
            .into_iter()
            .map(|(vp, prefix, delta)| ((vp, prefix), delta))
            .collect();
        UpdateBatch {
            deltas: folded
                .into_iter()
                .map(|((vp, prefix), delta)| (vp, prefix, delta))
                .collect(),
        }
    }

    /// True when the batch carries no deltas.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of `(vp, prefix)` entries touched.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Iterate the deltas in ascending `(vp, prefix)` order.
    pub fn iter(&self) -> impl Iterator<Item = &(Asn, Ipv4Prefix, PathDelta)> {
        self.deltas.iter()
    }

    /// Merge another batch on top of this one (`other` wins collisions).
    pub fn merge(&mut self, other: &UpdateBatch) {
        let mut folded: BTreeMap<(Asn, Ipv4Prefix), PathDelta> = self
            .deltas
            .drain(..)
            .map(|(vp, prefix, delta)| ((vp, prefix), delta))
            .collect();
        for (vp, prefix, delta) in &other.deltas {
            folded.insert((*vp, *prefix), delta.clone());
        }
        self.deltas = folded
            .into_iter()
            .map(|((vp, prefix), delta)| (vp, prefix, delta))
            .collect();
    }

    /// Apply the batch to a path set: existing `(vp, prefix)` samples
    /// are replaced in place (announce) or removed (withdraw), keeping
    /// the surviving samples' relative order; announcements for entries
    /// the set never held are appended in ascending `(vp, prefix)`
    /// order. This pure rebuild-from-scratch semantics is the oracle
    /// the incremental engine must match byte for byte.
    pub fn apply(&self, paths: PathSet) -> PathSet {
        let mut by_key: BTreeMap<(Asn, Ipv4Prefix), (&PathDelta, bool)> = self
            .deltas
            .iter()
            .map(|(vp, prefix, delta)| ((*vp, *prefix), (delta, false)))
            .collect();
        let mut samples = paths.into_samples();
        samples.retain_mut(|sample| {
            match by_key.get_mut(&(sample.vp, sample.prefix)) {
                None => true,
                Some((PathDelta::Withdraw, _)) => false,
                Some((PathDelta::Announce(path), matched)) => {
                    *matched = true;
                    if sample.path != *path {
                        sample.path = path.clone();
                    }
                    true
                }
            }
        });
        for ((vp, prefix), (delta, matched)) in by_key {
            if let (PathDelta::Announce(path), false) = (delta, matched) {
                samples.push(PathSample {
                    vp,
                    prefix,
                    path: path.clone(),
                });
            }
        }
        PathSet::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_counts_both_directions() {
        let m = UpdateMessage {
            vp: Asn(1),
            withdrawn: vec!["10.0.0.0/8".parse().unwrap()],
            announced: vec![("11.0.0.0/8".parse().unwrap(), AsPath::from_u32s([1, 2, 3]))],
        };
        assert_eq!(m.churn(), 2);
        assert!(!m.is_empty());
        assert!(UpdateMessage::default().is_empty());
    }

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn sample(vp: u32, prefix: &str, path: &[u32]) -> PathSample {
        PathSample {
            vp: Asn(vp),
            prefix: pfx(prefix),
            path: AsPath::from_u32s(path.iter().copied()),
        }
    }

    #[test]
    fn fold_is_last_wins_per_entry() {
        let messages = vec![
            UpdateMessage {
                vp: Asn(1),
                withdrawn: vec![pfx("10.0.0.0/8")],
                announced: vec![(pfx("11.0.0.0/8"), AsPath::from_u32s([1, 2, 3]))],
            },
            UpdateMessage {
                vp: Asn(1),
                withdrawn: vec![pfx("11.0.0.0/8")],
                announced: vec![(pfx("10.0.0.0/8"), AsPath::from_u32s([1, 9]))],
            },
        ];
        let batch = UpdateBatch::from_messages(&messages);
        assert_eq!(batch.len(), 2);
        let deltas: Vec<_> = batch.iter().cloned().collect();
        assert_eq!(
            deltas[0],
            (
                Asn(1),
                pfx("10.0.0.0/8"),
                PathDelta::Announce(AsPath::from_u32s([1, 9]))
            )
        );
        assert_eq!(deltas[1], (Asn(1), pfx("11.0.0.0/8"), PathDelta::Withdraw));
    }

    #[test]
    fn within_message_announce_beats_withdraw() {
        let msg = UpdateMessage {
            vp: Asn(1),
            withdrawn: vec![pfx("10.0.0.0/8")],
            announced: vec![(pfx("10.0.0.0/8"), AsPath::from_u32s([1, 2]))],
        };
        let batch = UpdateBatch::from_messages(std::iter::once(&msg));
        assert_eq!(
            batch.iter().next().unwrap().2,
            PathDelta::Announce(AsPath::from_u32s([1, 2]))
        );
    }

    #[test]
    fn apply_replaces_removes_and_appends() {
        let base: PathSet = vec![
            sample(1, "10.0.0.0/8", &[1, 2, 3]),
            sample(1, "11.0.0.0/8", &[1, 2, 4]),
            sample(2, "10.0.0.0/8", &[2, 3]),
        ]
        .into_iter()
        .collect();
        let batch = UpdateBatch::from_deltas(vec![
            (
                Asn(1),
                pfx("10.0.0.0/8"),
                PathDelta::Announce(AsPath::from_u32s([1, 5, 3])),
            ),
            (Asn(1), pfx("11.0.0.0/8"), PathDelta::Withdraw),
            (Asn(2), pfx("12.0.0.0/8"), PathDelta::Withdraw),
            (
                Asn(3),
                pfx("13.0.0.0/8"),
                PathDelta::Announce(AsPath::from_u32s([3, 4])),
            ),
        ]);
        let next = batch.apply(base);
        let got: Vec<_> = next.iter().cloned().collect();
        assert_eq!(
            got,
            vec![
                sample(1, "10.0.0.0/8", &[1, 5, 3]),
                sample(2, "10.0.0.0/8", &[2, 3]),
                sample(3, "13.0.0.0/8", &[3, 4]),
            ]
        );
    }

    #[test]
    fn empty_batch_apply_is_identity() {
        let base: PathSet = vec![sample(1, "10.0.0.0/8", &[1, 2])].into_iter().collect();
        let before: Vec<_> = base.iter().cloned().collect();
        let after = UpdateBatch::default().apply(base);
        assert_eq!(after.iter().cloned().collect::<Vec<_>>(), before);
    }

    #[test]
    fn merge_later_batch_wins() {
        let mut a = UpdateBatch::from_deltas(vec![(
            Asn(1),
            pfx("10.0.0.0/8"),
            PathDelta::Announce(AsPath::from_u32s([1, 2])),
        )]);
        let b = UpdateBatch::from_deltas(vec![(Asn(1), pfx("10.0.0.0/8"), PathDelta::Withdraw)]);
        a.merge(&b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.iter().next().unwrap().2, PathDelta::Withdraw);
    }
}
