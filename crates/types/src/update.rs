//! BGP update messages at the AS-path abstraction level.
//!
//! Collectors record two artifact kinds: RIB snapshots ([`crate::PathSet`])
//! and *update streams* — the announcements and withdrawals a vantage
//! point emits as routing reacts to events (link failures, depeerings,
//! new prefixes). [`UpdateMessage`] is the shared vocabulary between the
//! simulator (which produces updates by diffing snapshots around an
//! event) and the MRT codec (which serializes them as `BGP4MP`).

use crate::asn::Asn;
use crate::path::AsPath;
use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};

/// One logical BGP update from a vantage point: some prefixes withdrawn,
/// some announced with a (shared or per-prefix) path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct UpdateMessage {
    /// The vantage point emitting the update.
    pub vp: Asn,
    /// Prefixes no longer reachable.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Newly announced or re-announced prefixes with their AS paths
    /// (VP first, origin last).
    pub announced: Vec<(Ipv4Prefix, AsPath)>,
}

impl UpdateMessage {
    /// True when the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.announced.is_empty()
    }

    /// Total prefixes touched.
    pub fn churn(&self) -> usize {
        self.withdrawn.len() + self.announced.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_counts_both_directions() {
        let m = UpdateMessage {
            vp: Asn(1),
            withdrawn: vec!["10.0.0.0/8".parse().unwrap()],
            announced: vec![("11.0.0.0/8".parse().unwrap(), AsPath::from_u32s([1, 2, 3]))],
        };
        assert_eq!(m.churn(), 2);
        assert!(!m.is_empty());
        assert!(UpdateMessage::default().is_empty());
    }
}
