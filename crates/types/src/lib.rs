//! # asrank-types
//!
//! Shared vocabulary for the `asrank` workspace — the Rust reproduction of
//! *"AS Relationships, Customer Cones, and Validation"* (Luckie, Huffaker,
//! Dhamdhere, Giotsas, claffy — ACM IMC 2013).
//!
//! This crate defines the domain model every other crate speaks:
//!
//! * [`Asn`] — an autonomous system number with the IANA special-range
//!   classification the paper's sanitization step depends on;
//! * [`Ipv4Prefix`] — the routed prefixes that BGP paths are observed for;
//! * [`AsPath`] / [`PathSample`] / [`PathSet`] — observed BGP AS paths, the
//!   sole input of the inference algorithm;
//! * [`AsLink`] / [`LinkRel`] / [`RelationshipMap`] — inferred (or
//!   ground-truth) business relationships between ASes;
//! * [`GroundTruth`] — a complete annotated AS-level topology, produced by
//!   the `as-topology-gen` substrate and used by the validation framework.
//!
//! Everything is plain data: `serde`-serializable, hash-friendly, and free
//! of interior mutability, so datasets can be snapshotted to disk and
//! experiment artifacts reproduced bit-for-bit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod asn;
pub mod bitset;
pub mod codec;
pub mod error;
pub mod fxhash;
pub mod graph;
pub mod parallel;
pub mod path;
pub mod prefix;
pub mod prefix6;
pub mod relationship;
pub mod trie;
pub mod update;

pub use asn::{dense_id, Asn, AsnClass, AsnInterner};
pub use bitset::BitSet;
pub use codec::{
    checksum64, CodecError, Decoder, Encoder, U32View, U64View, CODEC_MAGIC, CODEC_VERSION,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use parallel::Parallelism;
pub use error::{EngineError, TypesError};
pub use graph::{AsClass, GroundTruth};
pub use path::{AsPath, PathSample, PathSet};
pub use prefix::Ipv4Prefix;
pub use prefix6::Ipv6Prefix;
pub use relationship::{AsLink, LinkRel, Orientation, RelationshipKind, RelationshipMap};
pub use trie::PrefixTrie;
pub use update::{PathDelta, UpdateBatch, UpdateMessage};

/// Convenience prelude re-exporting the types used by virtually every
/// downstream module.
pub mod prelude {
    pub use crate::asn::{dense_id, Asn, AsnClass, AsnInterner};
    pub use crate::bitset::BitSet;
    pub use crate::graph::{AsClass, GroundTruth};
    pub use crate::parallel::Parallelism;
    pub use crate::path::{AsPath, PathSample, PathSet};
    pub use crate::prefix::Ipv4Prefix;
    pub use crate::relationship::{
        AsLink, LinkRel, Orientation, RelationshipKind, RelationshipMap,
    };
}
