//! Thread-count configuration shared by every parallel stage.
//!
//! All fan-out stages in the workspace (sanitization, VP inference, cone
//! materialization, route propagation) are written so their output is
//! **identical for every thread count**: work is chunked, each chunk's
//! result is deterministic, and results are reassembled in chunk order
//! (or merged with an order-independent operation such as bitset union
//! or counter addition). [`Parallelism`] only chooses how wide to fan
//! out — `sequential()` additionally pins the exact single-threaded
//! execution order, which is useful when bisecting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How many worker threads a parallel stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Parallelism(
    // 0 = all available cores; otherwise the exact count.
    usize,
);

impl Parallelism {
    /// Use every available core (the default).
    pub const fn auto() -> Self {
        Parallelism(0)
    }

    /// Single-threaded: reproduces the exact sequential execution order.
    pub const fn sequential() -> Self {
        Parallelism(1)
    }

    /// Exactly `n` threads (`0` means auto).
    pub const fn threads(n: usize) -> Self {
        Parallelism(n)
    }

    /// The concrete thread count to use (≥ 1).
    pub fn effective(self) -> usize {
        if self.0 > 0 {
            self.0
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// True when this configuration cannot spawn workers.
    pub fn is_sequential(self) -> bool {
        self.effective() == 1
    }

    /// Chunk size that spreads `items` evenly over the effective threads,
    /// but never below `min` (tiny chunks cost more to dispatch than to
    /// process).
    pub fn chunk_size(self, items: usize, min: usize) -> usize {
        items.div_ceil(self.effective()).max(min).max(1)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            f.write_str("auto")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    /// Parse `"auto"`, `"0"` (auto), or a positive thread count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Parallelism::auto());
        }
        s.parse::<usize>()
            .map(Parallelism)
            .map_err(|_| format!("invalid thread count {s:?} (want a number or \"auto\")"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_is_at_least_one() {
        assert!(Parallelism::auto().effective() >= 1);
        assert_eq!(Parallelism::sequential().effective(), 1);
        assert_eq!(Parallelism::threads(3).effective(), 3);
        assert!(Parallelism::threads(0).effective() >= 1, "0 means auto");
    }

    #[test]
    fn chunk_size_respects_minimum() {
        let p = Parallelism::threads(4);
        assert_eq!(p.chunk_size(100, 1), 25);
        assert_eq!(p.chunk_size(100, 64), 64);
        assert_eq!(p.chunk_size(0, 1), 1, "never zero");
    }

    #[test]
    fn parses_auto_and_counts() {
        assert_eq!("auto".parse::<Parallelism>(), Ok(Parallelism::auto()));
        assert_eq!("AUTO".parse::<Parallelism>(), Ok(Parallelism::auto()));
        assert_eq!("2".parse::<Parallelism>(), Ok(Parallelism::threads(2)));
        assert_eq!("0".parse::<Parallelism>(), Ok(Parallelism::auto()));
        assert!("two".parse::<Parallelism>().is_err());
    }

    #[test]
    fn displays_round_trip() {
        assert_eq!(Parallelism::auto().to_string(), "auto");
        assert_eq!(Parallelism::threads(8).to_string(), "8");
    }
}
