//! AS business relationships.
//!
//! The paper infers, for every AS link observed in BGP paths, one of:
//!
//! * **c2p** — customer-to-provider: the customer pays the provider for
//!   transit to the whole Internet;
//! * **p2p** — settlement-free peering: the two ASes exchange traffic for
//!   their respective customer cones only;
//! * **s2s** — siblings: two ASes under common ownership that may exchange
//!   anything (present in validation data, rare in inference output).
//!
//! [`RelationshipMap`] is the central artifact: both the generator's ground
//! truth and every inference algorithm's output are `RelationshipMap`s, so
//! the validation framework compares like with like.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The three relationship kinds of the Gao-Rexford model, unoriented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationshipKind {
    /// Customer-to-provider (transit).
    C2p,
    /// Settlement-free peer-to-peer.
    P2p,
    /// Sibling (common ownership).
    S2s,
}

impl fmt::Display for RelationshipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelationshipKind::C2p => "c2p",
            RelationshipKind::P2p => "p2p",
            RelationshipKind::S2s => "s2s",
        })
    }
}

/// An unordered AS adjacency, stored canonically with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsLink {
    /// Lower-numbered endpoint.
    pub a: Asn,
    /// Higher-numbered endpoint.
    pub b: Asn,
}

impl AsLink {
    /// Canonicalize an adjacency between two distinct ASes.
    ///
    /// # Panics
    /// Panics if `x == y`; a self-link can never be a business relationship
    /// and indicates a bug upstream (sanitization removes prepending).
    pub fn new(x: Asn, y: Asn) -> Self {
        assert!(x != y, "self-link {x} is not a valid adjacency");
        if x < y {
            AsLink { a: x, b: y }
        } else {
            AsLink { a: y, b: x }
        }
    }

    /// True when `asn` is one of the endpoints.
    pub fn involves(&self, asn: Asn) -> bool {
        self.a == asn || self.b == asn
    }

    /// Given one endpoint, return the other.
    ///
    /// # Panics
    /// Panics when `asn` is not an endpoint of this link.
    pub fn other(&self, asn: Asn) -> Asn {
        if asn == self.a {
            self.b
        } else if asn == self.b {
            self.a
        } else {
            panic!("{asn} is not an endpoint of {self}")
        }
    }
}

impl fmt::Display for AsLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

/// The relationship on a canonical [`AsLink`], oriented relative to the
/// canonical (a, b) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkRel {
    /// `a` is a customer of `b`.
    AC2pB,
    /// `a` is a provider of `b` (i.e. `b` is the customer).
    AP2cB,
    /// Settlement-free peering.
    P2p,
    /// Siblings.
    S2s,
}

impl LinkRel {
    /// The unoriented kind of this relationship.
    pub fn kind(&self) -> RelationshipKind {
        match self {
            LinkRel::AC2pB | LinkRel::AP2cB => RelationshipKind::C2p,
            LinkRel::P2p => RelationshipKind::P2p,
            LinkRel::S2s => RelationshipKind::S2s,
        }
    }
}

/// The relationship as seen from one endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// The neighbor is my provider (I am its customer).
    Provider,
    /// The neighbor is my customer (I am its provider).
    Customer,
    /// The neighbor is my settlement-free peer.
    Peer,
    /// The neighbor is my sibling.
    Sibling,
}

impl Orientation {
    /// The opposite point of view (my provider sees me as a customer).
    pub fn flipped(self) -> Orientation {
        match self {
            Orientation::Provider => Orientation::Customer,
            Orientation::Customer => Orientation::Provider,
            Orientation::Peer => Orientation::Peer,
            Orientation::Sibling => Orientation::Sibling,
        }
    }

    /// The unoriented kind.
    pub fn kind(self) -> RelationshipKind {
        match self {
            Orientation::Provider | Orientation::Customer => RelationshipKind::C2p,
            Orientation::Peer => RelationshipKind::P2p,
            Orientation::Sibling => RelationshipKind::S2s,
        }
    }
}

/// A complete relationship assignment over a set of AS links, with a
/// per-AS adjacency index for fast neighbor queries.
///
/// Both ground truth and inference output use this type. Inserting a link
/// twice replaces the previous classification (last writer wins), which is
/// exactly the semantics of the multi-step pipeline, where later steps may
/// refine earlier provisional inferences.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationshipMap {
    links: HashMap<AsLink, LinkRel>,
}

impl RelationshipMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `customer` → `provider` transit.
    pub fn insert_c2p(&mut self, customer: Asn, provider: Asn) {
        let link = AsLink::new(customer, provider);
        let rel = if link.a == customer {
            LinkRel::AC2pB
        } else {
            LinkRel::AP2cB
        };
        self.links.insert(link, rel);
    }

    /// Record settlement-free peering between `x` and `y`.
    pub fn insert_p2p(&mut self, x: Asn, y: Asn) {
        self.links.insert(AsLink::new(x, y), LinkRel::P2p);
    }

    /// Record a sibling relationship between `x` and `y`.
    pub fn insert_s2s(&mut self, x: Asn, y: Asn) {
        self.links.insert(AsLink::new(x, y), LinkRel::S2s);
    }

    /// Remove a link entirely, returning its previous classification.
    pub fn remove(&mut self, x: Asn, y: Asn) -> Option<LinkRel> {
        self.links.remove(&AsLink::new(x, y))
    }

    /// The classification of the `x`–`y` link, if present.
    pub fn get(&self, x: Asn, y: Asn) -> Option<LinkRel> {
        if x == y {
            return None;
        }
        self.links.get(&AsLink::new(x, y)).copied()
    }

    /// The relationship between `x` and `y` from `x`'s point of view.
    pub fn orientation(&self, x: Asn, y: Asn) -> Option<Orientation> {
        let rel = self.get(x, y)?;
        let link = AsLink::new(x, y);
        Some(match (rel, link.a == x) {
            (LinkRel::AC2pB, true) | (LinkRel::AP2cB, false) => Orientation::Provider,
            (LinkRel::AC2pB, false) | (LinkRel::AP2cB, true) => Orientation::Customer,
            (LinkRel::P2p, _) => Orientation::Peer,
            (LinkRel::S2s, _) => Orientation::Sibling,
        })
    }

    /// True when `x` buys transit from `y`.
    pub fn is_c2p(&self, x: Asn, y: Asn) -> bool {
        self.orientation(x, y) == Some(Orientation::Provider)
    }

    /// True when `x` and `y` peer.
    pub fn is_p2p(&self, x: Asn, y: Asn) -> bool {
        self.orientation(x, y) == Some(Orientation::Peer)
    }

    /// Number of classified links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no link is classified.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterate over `(link, rel)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (AsLink, LinkRel)> + '_ {
        self.links.iter().map(|(&l, &r)| (l, r))
    }

    /// Iterate over `(customer, provider)` pairs of all c2p links.
    pub fn c2p_pairs(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.links.iter().filter_map(|(&l, &r)| match r {
            LinkRel::AC2pB => Some((l.a, l.b)),
            LinkRel::AP2cB => Some((l.b, l.a)),
            _ => None,
        })
    }

    /// Iterate over the endpoints of all p2p links.
    pub fn p2p_pairs(&self) -> impl Iterator<Item = (Asn, Asn)> + '_ {
        self.links.iter().filter_map(|(&l, &r)| match r {
            LinkRel::P2p => Some((l.a, l.b)),
            _ => None,
        })
    }

    /// Count links by kind: `(c2p, p2p, s2s)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for rel in self.links.values() {
            match rel.kind() {
                RelationshipKind::C2p => c.0 += 1,
                RelationshipKind::P2p => c.1 += 1,
                RelationshipKind::S2s => c.2 += 1,
            }
        }
        c
    }

    /// Build a per-AS adjacency index: for every AS, its neighbors with the
    /// relationship seen from that AS.
    ///
    /// The index is a snapshot; it does not track later mutations.
    pub fn adjacency(&self) -> HashMap<Asn, Vec<(Asn, Orientation)>> {
        let mut adj: HashMap<Asn, Vec<(Asn, Orientation)>> = HashMap::new();
        for (&link, &rel) in &self.links {
            let a_view = match rel {
                LinkRel::AC2pB => Orientation::Provider,
                LinkRel::AP2cB => Orientation::Customer,
                LinkRel::P2p => Orientation::Peer,
                LinkRel::S2s => Orientation::Sibling,
            };
            adj.entry(link.a).or_default().push((link.b, a_view));
            adj.entry(link.b)
                .or_default()
                .push((link.a, a_view.flipped()));
        }
        adj
    }

    /// All ASes appearing as an endpoint of at least one link, in
    /// ascending ASN order (sort + dedup beats a hashed seen-set here,
    /// and the canonical order hides the link map's iteration order).
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        let mut endpoints: Vec<Asn> = self.link_endpoints().collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        endpoints.into_iter()
    }

    /// Raw link endpoints, with repeats, in link-map iteration order.
    /// Feed this to deduplicating consumers (`AsnInterner::from_ases`
    /// sorts and dedups anyway) to skip [`Self::ases`]'s extra sort.
    pub fn link_endpoints(&self) -> impl Iterator<Item = Asn> + '_ {
        self.links.keys().flat_map(|l| [l.a, l.b])
    }

    /// Direct providers of `asn` (linear scan; use [`Self::adjacency`] in
    /// hot loops).
    pub fn providers_of(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_with(asn, Orientation::Provider)
    }

    /// Direct customers of `asn` (linear scan).
    pub fn customers_of(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_with(asn, Orientation::Customer)
    }

    /// Peers of `asn` (linear scan).
    pub fn peers_of(&self, asn: Asn) -> Vec<Asn> {
        self.neighbors_with(asn, Orientation::Peer)
    }

    fn neighbors_with(&self, asn: Asn, wanted: Orientation) -> Vec<Asn> {
        self.links
            .keys()
            .filter(|l| l.involves(asn))
            .filter_map(|l| {
                let other = l.other(asn);
                (self.orientation(asn, other) == Some(wanted)).then_some(other)
            })
            .collect()
    }
}

impl FromIterator<(AsLink, LinkRel)> for RelationshipMap {
    fn from_iter<T: IntoIterator<Item = (AsLink, LinkRel)>>(iter: T) -> Self {
        RelationshipMap {
            links: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_canonicalization() {
        let l = AsLink::new(Asn(9), Asn(3));
        assert_eq!(l.a, Asn(3));
        assert_eq!(l.b, Asn(9));
        assert_eq!(l, AsLink::new(Asn(3), Asn(9)));
        assert!(l.involves(Asn(9)));
        assert_eq!(l.other(Asn(3)), Asn(9));
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_panics() {
        let _ = AsLink::new(Asn(5), Asn(5));
    }

    #[test]
    fn c2p_orientation_is_symmetric_in_storage() {
        let mut m = RelationshipMap::new();
        // customer has the *higher* ASN here, exercising AP2cB storage.
        m.insert_c2p(Asn(100), Asn(2));
        assert!(m.is_c2p(Asn(100), Asn(2)));
        assert!(!m.is_c2p(Asn(2), Asn(100)));
        assert_eq!(m.orientation(Asn(2), Asn(100)), Some(Orientation::Customer));
        assert_eq!(m.orientation(Asn(100), Asn(2)), Some(Orientation::Provider));

        // and the lower-ASN-customer case.
        m.insert_c2p(Asn(1), Asn(50));
        assert!(m.is_c2p(Asn(1), Asn(50)));
        assert_eq!(m.orientation(Asn(50), Asn(1)), Some(Orientation::Customer));
    }

    #[test]
    fn insert_overwrites() {
        let mut m = RelationshipMap::new();
        m.insert_c2p(Asn(1), Asn(2));
        m.insert_p2p(Asn(2), Asn(1));
        assert!(m.is_p2p(Asn(1), Asn(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn counts_and_pair_iters() {
        let mut m = RelationshipMap::new();
        m.insert_c2p(Asn(10), Asn(1));
        m.insert_c2p(Asn(11), Asn(1));
        m.insert_p2p(Asn(1), Asn(2));
        m.insert_s2s(Asn(5), Asn(6));
        assert_eq!(m.counts(), (2, 1, 1));

        let mut c2p: Vec<_> = m.c2p_pairs().collect();
        c2p.sort();
        assert_eq!(c2p, vec![(Asn(10), Asn(1)), (Asn(11), Asn(1))]);
        assert_eq!(m.p2p_pairs().count(), 1);
    }

    #[test]
    fn neighbor_queries() {
        let mut m = RelationshipMap::new();
        m.insert_c2p(Asn(10), Asn(1));
        m.insert_c2p(Asn(1), Asn(99));
        m.insert_p2p(Asn(1), Asn(2));
        let mut customers = m.customers_of(Asn(1));
        customers.sort();
        assert_eq!(customers, vec![Asn(10)]);
        assert_eq!(m.providers_of(Asn(1)), vec![Asn(99)]);
        assert_eq!(m.peers_of(Asn(1)), vec![Asn(2)]);

        let adj = m.adjacency();
        assert_eq!(adj[&Asn(1)].len(), 3);
        assert_eq!(adj[&Asn(10)], vec![(Asn(1), Orientation::Provider)]);
    }

    #[test]
    fn orientation_flip_round_trips() {
        for o in [
            Orientation::Provider,
            Orientation::Customer,
            Orientation::Peer,
            Orientation::Sibling,
        ] {
            assert_eq!(o.flipped().flipped(), o);
            assert_eq!(o.kind(), o.flipped().kind());
        }
    }

    #[test]
    fn get_self_is_none() {
        let mut m = RelationshipMap::new();
        m.insert_p2p(Asn(1), Asn(2));
        assert_eq!(m.get(Asn(1), Asn(1)), None);
    }
}
