//! IPv6 prefixes.
//!
//! The reproduction's simulator and pipeline are IPv4-scoped (as the
//! paper's headline analysis was), but real collector dumps interleave
//! `RIB_IPV6_UNICAST` records; the codec decodes them fully so a reader
//! can account for (rather than silently skip) the v6 table.

use crate::error::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv6 prefix in CIDR notation.
///
/// Stored masked, like [`crate::Ipv4Prefix`], so equal prefixes compare
/// equal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ipv6Prefix {
    network: u128,
    len: u8,
}

impl Ipv6Prefix {
    /// Construct a prefix, masking `addr` down to `len` bits (≤ 128).
    pub fn new(addr: u128, len: u8) -> Result<Self, TypesError> {
        if len > 128 {
            return Err(TypesError::InvalidPrefixLength(len));
        }
        Ok(Self {
            network: addr & Self::mask(len),
            len,
        })
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }

    /// Masked network address.
    pub fn network(&self) -> u128 {
        self.network
    }

    /// Prefix length in bits (not a container length; a /0 prefix is
    /// the default route, not "empty").
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for `::/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// True when `other` is fully contained within `self`.
    pub fn contains(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && (other.network & Self::mask(self.len)) == self.network
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Leverage std's canonical IPv6 text form (:: compression).
        let addr = std::net::Ipv6Addr::from(self.network);
        write!(f, "{}/{}", addr, self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = TypesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || TypesError::InvalidPrefix(s.to_string());
        let (addr_s, len_s) = s.split_once('/').ok_or_else(bad)?;
        let len: u8 = len_s.parse().map_err(|_| bad())?;
        let addr: std::net::Ipv6Addr = addr_s.parse().map_err(|_| bad())?;
        Ipv6Prefix::new(u128::from(addr), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["::/0", "2001:db8::/32", "2620:0:2d0::/48", "::1/128"] {
            let p: Ipv6Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn masked_on_construction() {
        let p: Ipv6Prefix = "2001:db8::ffff/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
    }

    #[test]
    fn rejects_bad_input() {
        assert!("2001:db8::/129".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::".parse::<Ipv6Prefix>().is_err());
        assert!("nonsense/32".parse::<Ipv6Prefix>().is_err());
        assert!(Ipv6Prefix::new(0, 200).is_err());
    }

    #[test]
    fn containment() {
        let p32: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let p48: Ipv6Prefix = "2001:db8:1::/48".parse().unwrap();
        let other: Ipv6Prefix = "2001:db9::/32".parse().unwrap();
        assert!(p32.contains(&p48));
        assert!(!p48.contains(&p32));
        assert!(!p32.contains(&other));
        let dflt: Ipv6Prefix = "::/0".parse().unwrap();
        assert!(dflt.is_default());
        assert!(dflt.contains(&p32));
    }
}
