//! Autonomous system numbers and their IANA classification.
//!
//! The sanitization step of the ASRank pipeline (paper §3, step 1) discards
//! paths containing ASNs that cannot correspond to a routable network:
//! reserved, private-use, documentation, and the `AS_TRANS` placeholder.
//! [`AsnClass`] encodes that taxonomy; [`Asn::class`] performs the lookup.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number (4-byte, RFC 6793).
///
/// `Asn` is a transparent newtype over `u32` ordered numerically. Display
/// uses the canonical `ASxxxx` notation ("asplain", RFC 5396).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// IANA-derived classification of an ASN, used by path sanitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsnClass {
    /// Ordinary globally-assignable ASN.
    Public,
    /// ASN 0 — may never appear in an AS path (RFC 7607).
    Zero,
    /// `AS_TRANS` (23456), the 2-byte placeholder for 4-byte ASNs (RFC 6793).
    AsTrans,
    /// Private-use ranges 64512–65534 and 4200000000–4294967294 (RFC 6996).
    Private,
    /// Documentation ranges 64496–64511 and 65536–65551 (RFC 5398).
    Documentation,
    /// 65535 and 4294967295, reserved "last ASN" values (RFC 7300).
    LastReserved,
}

/// Checked narrowing of a `usize` count/offset into the dense-id domain
/// (`u32`).
///
/// Dense AS ids, CSR offsets, and cone bounds all live in `u32`; lengths
/// and cursor positions live in `usize`. A raw `as u32` at the boundary
/// would wrap silently past 2^32 — far beyond any real AS topology, but
/// "impossible" sizes are exactly what audits exist to catch. This is the
/// one sanctioned conversion (lint rule L005 flags raw casts everywhere
/// outside this module).
///
/// # Panics
///
/// Panics if `n` exceeds `u32::MAX`, which would mean the id space
/// itself is corrupt.
#[inline]
pub fn dense_id(n: usize) -> u32 {
    u32::try_from(n).expect("dense-id domain overflow: count exceeds u32::MAX")
}

impl Asn {
    /// Classify this ASN against the IANA special-purpose registry.
    ///
    /// ```
    /// use asrank_types::{Asn, AsnClass};
    /// assert_eq!(Asn(3356).class(), AsnClass::Public);
    /// assert_eq!(Asn(0).class(), AsnClass::Zero);
    /// assert_eq!(Asn(23456).class(), AsnClass::AsTrans);
    /// assert_eq!(Asn(64512).class(), AsnClass::Private);
    /// assert_eq!(Asn(64500).class(), AsnClass::Documentation);
    /// assert_eq!(Asn(u32::MAX).class(), AsnClass::LastReserved);
    /// ```
    pub fn class(self) -> AsnClass {
        match self.0 {
            0 => AsnClass::Zero,
            23456 => AsnClass::AsTrans,
            64496..=64511 | 65536..=65551 => AsnClass::Documentation,
            64512..=65534 | 4200000000..=4294967294 => AsnClass::Private,
            65535 | 4294967295 => AsnClass::LastReserved,
            _ => AsnClass::Public,
        }
    }

    /// True when this ASN may legitimately appear in a public AS path.
    ///
    /// The ASRank sanitizer drops any path containing a non-routable ASN,
    /// treating it as a measurement artifact or deliberate poisoning.
    pub fn is_routable(self) -> bool {
        self.class() == AsnClass::Public
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(v: Asn) -> Self {
        v.0
    }
}

/// A dense interner mapping sparse [`Asn`] values to contiguous `usize`
/// indices.
///
/// The inference pipeline and the routing simulator both run graph
/// algorithms over tens of thousands of ASes; indexing flat vectors by a
/// dense id is considerably faster (and smaller) than hashing raw ASNs at
/// every step. The interner is append-only: indices are stable for the
/// lifetime of the interner.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsnInterner {
    // Fx-hashed: ASN keys are trusted in-tree data, and the SipHash
    // default is the dominant cost of bulk interning (see fxhash docs).
    forward: crate::fxhash::FxHashMap<Asn, u32>,
    reverse: Vec<Asn>,
}

impl AsnInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an interner over `ases` in one pass: the input is sorted and
    /// deduplicated, so dense ids are assigned in ascending ASN order
    /// regardless of input order. This is the bulk constructor every
    /// graph algorithm should use — it reserves both tables up front and
    /// produces a canonical (input-order-independent) id assignment.
    pub fn from_ases<I: IntoIterator<Item = Asn>>(ases: I) -> Self {
        let mut sorted: Vec<Asn> = ases.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        let forward = sorted
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        AsnInterner {
            forward,
            reverse: sorted,
        }
    }

    /// Intern `asn`, returning its dense index (allocating one if new).
    pub fn intern(&mut self, asn: Asn) -> u32 {
        if let Some(&idx) = self.forward.get(&asn) {
            return idx;
        }
        let idx = self.reverse.len() as u32;
        self.forward.insert(asn, idx);
        self.reverse.push(asn);
        idx
    }

    /// Look up the dense index of `asn` without allocating.
    pub fn get(&self, asn: Asn) -> Option<u32> {
        self.forward.get(&asn).copied()
    }

    /// Recover the ASN behind dense index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was never returned by [`AsnInterner::intern`].
    pub fn resolve(&self, idx: u32) -> Asn {
        self.reverse[idx as usize]
    }

    /// Number of distinct ASNs interned so far.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True when no ASN has been interned.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Iterate over `(dense index, asn)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Asn)> + '_ {
        self.reverse.iter().enumerate().map(|(i, &a)| (i as u32, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(Asn(1).class(), AsnClass::Public);
        assert_eq!(Asn(64495).class(), AsnClass::Public);
        assert_eq!(Asn(64496).class(), AsnClass::Documentation);
        assert_eq!(Asn(64511).class(), AsnClass::Documentation);
        assert_eq!(Asn(64512).class(), AsnClass::Private);
        assert_eq!(Asn(65534).class(), AsnClass::Private);
        assert_eq!(Asn(65535).class(), AsnClass::LastReserved);
        assert_eq!(Asn(65536).class(), AsnClass::Documentation);
        assert_eq!(Asn(65551).class(), AsnClass::Documentation);
        assert_eq!(Asn(65552).class(), AsnClass::Public);
        assert_eq!(Asn(4199999999).class(), AsnClass::Public);
        assert_eq!(Asn(4200000000).class(), AsnClass::Private);
        assert_eq!(Asn(4294967294).class(), AsnClass::Private);
        assert_eq!(Asn(4294967295).class(), AsnClass::LastReserved);
    }

    #[test]
    fn routability_follows_class() {
        assert!(Asn(15169).is_routable());
        assert!(!Asn(0).is_routable());
        assert!(!Asn(23456).is_routable());
        assert!(!Asn(64512).is_routable());
    }

    #[test]
    fn display_uses_asplain() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
    }

    #[test]
    fn interner_round_trips() {
        let mut i = AsnInterner::new();
        let a = i.intern(Asn(100));
        let b = i.intern(Asn(7));
        assert_eq!(i.intern(Asn(100)), a);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), Asn(100));
        assert_eq!(i.resolve(b), Asn(7));
        assert_eq!(i.get(Asn(7)), Some(b));
        assert_eq!(i.get(Asn(8)), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn bulk_constructor_sorts_and_dedups() {
        let i = AsnInterner::from_ases([Asn(9), Asn(3), Asn(9), Asn(5)]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(0), Asn(3));
        assert_eq!(i.resolve(1), Asn(5));
        assert_eq!(i.resolve(2), Asn(9));
        assert_eq!(i.get(Asn(5)), Some(1));
        assert_eq!(i.get(Asn(4)), None);
        // Same set, different input order → identical assignment.
        let j = AsnInterner::from_ases([Asn(5), Asn(9), Asn(3)]);
        assert_eq!(
            i.iter().collect::<Vec<_>>(),
            j.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn interner_iter_preserves_order() {
        let mut i = AsnInterner::new();
        for v in [5u32, 3, 9] {
            i.intern(Asn(v));
        }
        let collected: Vec<_> = i.iter().map(|(_, a)| a.0).collect();
        assert_eq!(collected, vec![5, 3, 9]);
    }
}
