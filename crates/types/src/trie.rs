//! Binary radix trie over IPv4 prefixes with longest-prefix match.
//!
//! Real MRT data arrives as (prefix, path) pairs without origin labels;
//! mapping addresses and covered prefixes back to origin ASes — the
//! "IP-to-AS" step every topology study performs — needs longest-prefix
//! match over hundreds of thousands of entries. The trie is a classic
//! uncompressed binary trie: one bit per level, at most 32 levels, so
//! lookups are bounded and allocation-light.

use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};

/// A binary trie mapping IPv4 prefixes to values of type `T`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie {
            nodes: vec![Node::default()],
            len: 0,
        }
    }
}

impl<T> PrefixTrie<T> {
    /// Create an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth as u32)) & 1) as usize
    }

    /// Insert (or replace) the value for `prefix`. Returns the previous
    /// value when replacing.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            let next = match self.nodes[node].children[b] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[node].children[b] = Some(n as u32);
                    n
                }
            };
            node = next;
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            node = self.nodes[node].children[b]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix match for a single address: the value of the most
    /// specific stored prefix containing `addr`, with its length.
    pub fn lookup_addr(&self, addr: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let b = Self::bit(addr, depth);
            match self.nodes[node].children[b] {
                Some(n) => {
                    node = n as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Ipv4Prefix::new(addr, len).expect("len <= 32"), v))
    }

    /// Longest-prefix match for a whole prefix: the most specific stored
    /// prefix that *contains* `prefix`.
    pub fn lookup_prefix(&self, prefix: &Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            match self.nodes[node].children[b] {
                Some(n) => {
                    node = n as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            (
                Ipv4Prefix::new(prefix.network(), len).expect("len <= 32"),
                v,
            )
        })
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn exact_and_lpm() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), Asn(1));
        t.insert(p("10.1.0.0/16"), Asn(2));
        t.insert(p("10.1.2.0/24"), Asn(3));

        assert_eq!(t.get(&p("10.1.0.0/16")), Some(&Asn(2)));
        assert_eq!(t.get(&p("10.2.0.0/16")), None);

        // Most specific wins.
        let (m, v) = t.lookup_addr(0x0a01_0203).unwrap(); // 10.1.2.3
        assert_eq!((m, *v), (p("10.1.2.0/24"), Asn(3)));
        let (m, v) = t.lookup_addr(0x0a01_0503).unwrap(); // 10.1.5.3
        assert_eq!((m, *v), (p("10.1.0.0/16"), Asn(2)));
        let (m, v) = t.lookup_addr(0x0aff_0000).unwrap(); // 10.255.0.0
        assert_eq!((m, *v), (p("10.0.0.0/8"), Asn(1)));
        assert!(t.lookup_addr(0x0b00_0000).is_none()); // 11.0.0.0
    }

    #[test]
    fn prefix_lookup_finds_covering_entry() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "big");
        t.insert(p("10.64.0.0/10"), "mid");
        let (m, v) = t.lookup_prefix(&p("10.64.12.0/24")).unwrap();
        assert_eq!((m, *v), (p("10.64.0.0/10"), "mid"));
        let (m, v) = t.lookup_prefix(&p("10.128.0.0/9")).unwrap();
        assert_eq!((m, *v), (p("10.0.0.0/8"), "big"));
        // An exact match is also a containing match.
        let (m, _) = t.lookup_prefix(&p("10.64.0.0/10")).unwrap();
        assert_eq!(m, p("10.64.0.0/10"));
        assert!(t.lookup_prefix(&p("12.0.0.0/8")).is_none());
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("1.0.0.0/8"), 7), None);
        assert_eq!(t.insert(p("1.0.0.0/8"), 9), Some(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT_ROUTE, 0u8);
        let (m, v) = t.lookup_addr(0xdead_beef).unwrap();
        assert_eq!(m.len(), 0);
        assert_eq!(*v, 0);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), 1u8);
        assert!(t.lookup_addr(0x0102_0304).is_some());
        assert!(t.lookup_addr(0x0102_0305).is_none());
    }

    #[test]
    fn from_iter_builds() {
        let t: PrefixTrie<u32> = [(p("10.0.0.0/8"), 1u32), (p("11.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
