//! A fast, deterministic hasher for small fixed-width keys.
//!
//! The dense-id machinery ([`crate::AsnInterner`], hot pipeline maps)
//! hashes millions of 4-byte ASNs; `std`'s default SipHash is
//! DoS-resistant but pays ~10× the cost of a multiplicative mix for such
//! keys. This is the Firefox/rustc "Fx" scheme: rotate, xor, multiply by
//! a constant with good bit dispersion. It is *not* collision-resistant
//! against adversarial input — use it only for internal maps keyed by
//! trusted data (ASNs, dense ids), never for attacker-controlled keys.
//!
//! Unlike `RandomState`, the hash is identical across processes, which
//! also makes iteration-order-sensitive bugs reproducible.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx scheme (a truncation of π's
/// hex expansion with good avalanche behavior under `wrapping_mul`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply hasher; see module docs for the trust model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `std::collections::HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `std::collections::HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u32| {
            let mut h = FxHasher::default();
            h.write_u32(v);
            h.finish()
        };
        assert_eq!(hash(65000), hash(65000));
        assert_ne!(hash(65000), hash(65001));
    }

    #[test]
    fn nearby_keys_disperse() {
        // Dense ASNs are the common key distribution; consecutive values
        // must not collide in the low bits the table actually uses.
        let mut low_bits: Vec<u64> = (0u32..64)
            .map(|v| {
                let mut h = FxHasher::default();
                h.write_u32(v);
                h.finish() & 0x3f
            })
            .collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 32, "low bits collapse: {}", low_bits.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<crate::Asn, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(crate::Asn(i * 7), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&crate::Asn(21)), Some(&3));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        let hash = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash(b"abcdefghij"), hash(b"abcdefghij"));
        assert_ne!(hash(b"abcdefghij"), hash(b"abcdefghik"));
    }
}
