//! Parallel MRT ingest: one header scan over the length-prefixed record
//! framing, then record bodies decoded on a deterministic thread fan-out.
//!
//! The streaming [`crate::reader::MrtReader`] is inherently serial: each
//! record's position depends on the previous record's declared length.
//! But that dependency is *only* the 12-byte header chain — record
//! bodies are independent. So the parallel path splits the work:
//!
//! 1. [`scan_record_frames`] walks the headers once (cheap: 12 bytes per
//!    record, no body decode) and emits the byte range of every record;
//! 2. [`decode_frames`] fans the ranges out over `std::thread::scope`
//!    workers in contiguous chunks and reassembles results **in chunk
//!    order**, so the record sequence — and therefore every downstream
//!    fold — is identical to the sequential reader's;
//! 3. [`read_rib_dump_parallel`] / [`read_update_stream_parallel`] apply
//!    the exact same per-record fold the sequential readers use (shared
//!    functions, not copies), which is what makes the output byte-
//!    identical by construction.
//!
//! All offset arithmetic in the scanner is checked: a hostile declared
//! length can neither overflow the record extent nor run past the end of
//! the buffer (see the fuzz-style tests below and in
//! `tests/parallel_ingest.rs`).

use crate::error::MrtError;
use crate::reader::DEFAULT_MAX_RECORD_LEN;
use crate::record::MrtRecord;
use crate::wire::Cursor;
use asrank_types::update::UpdateMessage;
use asrank_types::{Parallelism, PathSet};
use std::ops::Range;

/// Walk the record framing of a complete in-memory dump and return the
/// byte range of every record (header + body).
///
/// Rejects, without panicking:
/// * truncation mid-header or mid-body;
/// * declared body lengths above `max_record_len`;
/// * declared lengths whose record extent would overflow `usize`.
pub fn scan_record_frames(
    data: &[u8],
    max_record_len: u32,
) -> Result<Vec<Range<usize>>, MrtError> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        if data.len() - pos < 12 {
            return Err(MrtError::Truncated {
                context: "mrt header (eof mid-record)",
            });
        }
        let len = u32::from_be_bytes([
            data[pos + 8],
            data[pos + 9],
            data[pos + 10],
            data[pos + 11],
        ]);
        if len > max_record_len {
            return Err(MrtError::BadLength {
                context: "mrt record length",
                value: len as usize,
            });
        }
        let end = usize::try_from(len)
            .ok()
            .and_then(|n| n.checked_add(12))
            .and_then(|total| pos.checked_add(total))
            .ok_or(MrtError::BadLength {
                context: "mrt record length (overflows record extent)",
                value: len as usize,
            })?;
        if end > data.len() {
            return Err(MrtError::Truncated {
                context: "mrt body (eof mid-record)",
            });
        }
        frames.push(pos..end);
        pos = end;
    }
    Ok(frames)
}

fn decode_one(frame: &[u8]) -> Result<(u32, MrtRecord), MrtError> {
    let mut c = Cursor::new(frame);
    MrtRecord::decode(&mut c)
}

/// Decode scanned frames on a capped worker fan-out and feed each record
/// to `sink` **in stream order** — the chunk-order merge that makes the
/// parallel readers byte-identical to their sequential counterparts.
///
/// Chunks are folded the moment they arrive (buffering only the
/// out-of-order ones), so decoded records are consumed and freed while
/// later chunks are still decoding — the whole dump is never resident in
/// decoded form. Workers are capped at the cores actually available:
/// oversubscribing a CPU-bound decode only adds scheduling overhead, and
/// the ordered merge means the output cannot differ. On error, the
/// earliest failure in stream order wins, matching the sequential
/// reader.
pub(crate) fn for_each_decoded<F>(
    data: &[u8],
    frames: &[Range<usize>],
    par: Parallelism,
    mut sink: F,
) -> Result<(), MrtError>
where
    F: FnMut((u32, MrtRecord)) -> Result<(), MrtError>,
{
    let workers = par.effective().min(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let chunk = frames.len().div_ceil(workers.max(1)).max(8);
    if workers <= 1 || chunk >= frames.len() {
        for r in frames {
            sink(decode_one(&data[r.clone()])?)?;
        }
        return Ok(());
    }
    let n_chunks = frames.len().div_ceil(chunk);
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        for (i, ranges) in frames.chunks(chunk).enumerate() {
            let tx = tx.clone();
            s.spawn(move || {
                let decoded: Vec<Result<(u32, MrtRecord), MrtError>> =
                    ranges.iter().map(|r| decode_one(&data[r.clone()])).collect();
                // A send only fails when the fold already bailed on an
                // earlier chunk's error and dropped the receiver.
                let _ = tx.send((i, decoded));
            });
        }
        drop(tx);
        let mut pending = std::collections::BTreeMap::new();
        for next in 0..n_chunks {
            let decoded = loop {
                if let Some(d) = pending.remove(&next) {
                    break d;
                }
                // lint: allow(panics, every worker sends exactly once and panics are impossible: the decoder is total over untrusted bytes)
                let (i, d) = rx.recv().expect("mrt decode worker disconnected");
                pending.insert(i, d);
            };
            for result in decoded {
                sink(result?)?;
            }
        }
        Ok(())
    })
}

/// Decode scanned record frames, fanning bodies out over the
/// [`Parallelism`] budget with an order-preserving merge. The returned
/// record sequence is identical to sequential decode for every thread
/// count; on error, the error of the *earliest* undecodable record in
/// stream order is reported, again matching the sequential reader.
///
/// This materializes every record at once; the bulk readers
/// ([`read_rib_dump_parallel`], [`read_update_stream_parallel`]) instead
/// fold records as chunks complete, which keeps peak memory at one chunk
/// of decoded records.
pub fn decode_frames(
    data: &[u8],
    frames: &[Range<usize>],
    par: Parallelism,
) -> Result<Vec<(u32, MrtRecord)>, MrtError> {
    let mut out = Vec::with_capacity(frames.len());
    for_each_decoded(data, frames, par, |rec| {
        out.push(rec);
        Ok(())
    })?;
    Ok(out)
}

/// [`crate::table::read_rib_dump`] over an in-memory dump with parallel
/// record decode. Output is byte-identical to the sequential reader —
/// same samples, same order, same errors — because the per-record fold
/// is the same function; only body decode is fanned out.
pub fn read_rib_dump_parallel(data: &[u8], par: Parallelism) -> Result<PathSet, MrtError> {
    let frames = scan_record_frames(data, DEFAULT_MAX_RECORD_LEN)?;
    let mut peers = Vec::new();
    let mut paths = PathSet::new();
    for_each_decoded(data, &frames, par, |(_ts, record)| {
        crate::table::ingest_rib_record(record, &mut peers, &mut paths)
    })?;
    Ok(paths)
}

/// [`crate::stream::read_update_stream`] over an in-memory capture with
/// parallel record decode; same order-preserving guarantees as
/// [`read_rib_dump_parallel`].
pub fn read_update_stream_parallel(
    data: &[u8],
    par: Parallelism,
) -> Result<Vec<UpdateMessage>, MrtError> {
    let frames = scan_record_frames(data, DEFAULT_MAX_RECORD_LEN)?;
    let mut per_vp = std::collections::BTreeMap::new();
    for_each_decoded(data, &frames, par, |(_ts, record)| {
        crate::stream::ingest_update_record(record, &mut per_vp);
        Ok(())
    })?;
    Ok(crate::stream::finish_update_fold(per_vp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PeerEntry, PeerIndexTable};
    use asrank_types::Asn;

    fn sample_record(ts: u32) -> Vec<u8> {
        MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 5,
            view_name: "x".into(),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: 2,
                ipv6: false,
                asn: Asn(3),
            }],
        })
        .encode(ts)
    }

    #[test]
    fn scanner_frames_every_record() {
        let mut bytes = Vec::new();
        let mut expected = Vec::new();
        for ts in [1u32, 2, 3, 4] {
            let rec = sample_record(ts);
            expected.push(bytes.len()..bytes.len() + rec.len());
            bytes.extend_from_slice(&rec);
        }
        assert_eq!(
            scan_record_frames(&bytes, DEFAULT_MAX_RECORD_LEN).unwrap(),
            expected
        );
        assert!(scan_record_frames(&[], DEFAULT_MAX_RECORD_LEN)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scanner_rejects_truncation_mid_header_and_mid_body() {
        let bytes = sample_record(1);
        for cut in 1..bytes.len() {
            assert!(
                matches!(
                    scan_record_frames(&bytes[..cut], DEFAULT_MAX_RECORD_LEN),
                    Err(MrtError::Truncated { .. })
                ),
                "cut at {cut} not rejected"
            );
        }
    }

    #[test]
    fn scanner_rejects_oversized_declared_length() {
        let mut header = Vec::new();
        crate::wire::put_u32(&mut header, 0);
        crate::wire::put_u16(&mut header, 13);
        crate::wire::put_u16(&mut header, 1);
        crate::wire::put_u32(&mut header, u32::MAX);
        assert!(matches!(
            scan_record_frames(&header, DEFAULT_MAX_RECORD_LEN),
            Err(MrtError::BadLength { .. })
        ));
        // Even with the cap raised to the format maximum, the checked
        // extent arithmetic must hold (this is the 32-bit overflow
        // guard; on 64-bit it degrades to a Truncated error).
        assert!(scan_record_frames(&header, u32::MAX).is_err());
    }

    #[test]
    fn parallel_decode_preserves_record_order() {
        let mut bytes = Vec::new();
        for ts in 0..100u32 {
            bytes.extend_from_slice(&sample_record(ts));
        }
        let frames = scan_record_frames(&bytes, DEFAULT_MAX_RECORD_LEN).unwrap();
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let records = decode_frames(&bytes, &frames, par).unwrap();
            let stamps: Vec<u32> = records.iter().map(|&(ts, _)| ts).collect();
            assert_eq!(stamps, (0..100).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn parallel_decode_reports_earliest_bad_record() {
        let mut bytes = Vec::new();
        for ts in 0..20u32 {
            bytes.extend_from_slice(&sample_record(ts));
        }
        // Corrupt record 3's body (inside the declared length, so the
        // scanner accepts the framing and decode must catch it): inflate
        // the peer count so body decode overruns the frame. Layout:
        // 12-byte header, u32 collector, u16 name len, "x", u16 count.
        let frames = scan_record_frames(&bytes, DEFAULT_MAX_RECORD_LEN).unwrap();
        let mut corrupt = bytes.clone();
        corrupt[frames[3].start + 19] = 0xff;
        corrupt[frames[3].start + 20] = 0xff;
        let seq = decode_frames(&corrupt, &frames, Parallelism::sequential()).unwrap_err();
        let par = decode_frames(&corrupt, &frames, Parallelism::threads(4)).unwrap_err();
        assert_eq!(format!("{seq}"), format!("{par}"));
    }
}
