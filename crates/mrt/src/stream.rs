//! Update-stream serialization: [`UpdateMessage`] ⇄ `BGP4MP` records.
//!
//! Collectors interleave RIB snapshots with update captures; this module
//! writes the simulator's derived update stream in the same `BGP4MP /
//! BGP4MP_MESSAGE_AS4` framing RouteViews uses, respecting the 4096-byte
//! BGP message bound by chunking NLRI blocks.

use crate::attrs::PathAttribute;
use crate::error::MrtError;
use crate::reader::MrtReader;
use crate::record::{Bgp4mpMessageAs4, BgpUpdate, MrtRecord};
use crate::writer::MrtWriter;
use asrank_types::update::UpdateMessage;
use asrank_types::{AsPath, Ipv4Prefix};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Conservative cap on prefixes per UPDATE so the message stays well
/// under the 4096-byte BGP bound (5 bytes of NLRI each + attributes).
const MAX_NLRI_PER_MESSAGE: usize = 600;

/// Serialize update messages as a BGP4MP stream. Announcements with the
/// same AS path share UPDATE messages (as real speakers do); withdrawals
/// ride their own messages. Returns records written.
pub fn write_update_stream<W: Write>(
    updates: &[UpdateMessage],
    out: W,
    timestamp: u32,
) -> Result<u64, MrtError> {
    let mut writer = MrtWriter::new(out);
    for (i, update) in updates.iter().enumerate() {
        let local_ip = 0x0a00_0000 + i as u32 + 1;
        let base = Bgp4mpMessageAs4 {
            peer_asn: update.vp,
            local_asn: asrank_types::Asn(65_000),
            if_index: 0,
            peer_ip: local_ip + 0x0100_0000,
            local_ip,
            update: BgpUpdate::default(),
        };

        // Withdrawals, chunked.
        for chunk in update.withdrawn.chunks(MAX_NLRI_PER_MESSAGE) {
            let mut msg = base.clone();
            msg.update.withdrawn = chunk.to_vec();
            writer.write_record(timestamp, &MrtRecord::Bgp4mpMessageAs4(msg))?;
        }

        // Announcements grouped by path, chunked.
        let mut by_path: BTreeMap<Vec<u32>, Vec<Ipv4Prefix>> = BTreeMap::new();
        for (prefix, path) in &update.announced {
            by_path
                .entry(path.iter().map(|a| a.0).collect())
                .or_default()
                .push(*prefix);
        }
        for (path_u32, mut prefixes) in by_path {
            prefixes.sort();
            let path = AsPath::from_u32s(path_u32);
            for chunk in prefixes.chunks(MAX_NLRI_PER_MESSAGE) {
                let mut msg = base.clone();
                msg.update.attributes = vec![
                    PathAttribute::Origin(0),
                    PathAttribute::as_path_sequence(&path),
                    PathAttribute::NextHop(local_ip + 0x0100_0000),
                ];
                msg.update.announced = chunk.to_vec();
                writer.write_record(timestamp, &MrtRecord::Bgp4mpMessageAs4(msg))?;
            }
        }
    }
    Ok(writer.records_written())
}

/// Read a BGP4MP stream back into per-VP update messages (merged per
/// peer ASN, in ascending-VP order). Non-update records are skipped.
pub fn read_update_stream<R: Read>(input: R) -> Result<Vec<UpdateMessage>, MrtError> {
    let mut reader = MrtReader::new(input);
    let mut per_vp: BTreeMap<asrank_types::Asn, UpdateMessage> = BTreeMap::new();
    while let Some((_ts, record)) = reader.next_record()? {
        ingest_update_record(record, &mut per_vp);
    }
    Ok(finish_update_fold(per_vp))
}

/// Fold one decoded record into the per-VP accumulator — shared verbatim
/// by the sequential reader above and the parallel byte-range reader
/// ([`crate::scan::read_update_stream_parallel`]), so both produce
/// identical output. Non-update records are skipped.
pub(crate) fn ingest_update_record(
    record: MrtRecord,
    per_vp: &mut BTreeMap<asrank_types::Asn, UpdateMessage>,
) {
    let MrtRecord::Bgp4mpMessageAs4(msg) = record else {
        return;
    };
    let entry = per_vp.entry(msg.peer_asn).or_insert_with(|| UpdateMessage {
        vp: msg.peer_asn,
        ..Default::default()
    });
    entry.withdrawn.extend(msg.update.withdrawn.iter().copied());
    if let Some(path) = msg
        .update
        .attributes
        .iter()
        .find_map(PathAttribute::flatten_as_path)
    {
        for prefix in &msg.update.announced {
            entry.announced.push((*prefix, path.clone()));
        }
    }
}

/// Final sort pass of the update fold (ascending-VP order via the
/// `BTreeMap`, prefixes sorted within each message).
pub(crate) fn finish_update_fold(
    per_vp: BTreeMap<asrank_types::Asn, UpdateMessage>,
) -> Vec<UpdateMessage> {
    let mut out: Vec<UpdateMessage> = per_vp.into_values().collect();
    for m in &mut out {
        m.withdrawn.sort();
        m.announced.sort_by_key(|(p, _)| *p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::Asn;

    fn sample() -> Vec<UpdateMessage> {
        vec![
            UpdateMessage {
                vp: Asn(100),
                withdrawn: vec!["10.0.0.0/8".parse().unwrap()],
                announced: vec![
                    (
                        "11.0.0.0/8".parse().unwrap(),
                        AsPath::from_u32s([100, 2, 3]),
                    ),
                    (
                        "12.0.0.0/8".parse().unwrap(),
                        AsPath::from_u32s([100, 2, 3]),
                    ),
                    (
                        "13.0.0.0/8".parse().unwrap(),
                        AsPath::from_u32s([100, 5, 6]),
                    ),
                ],
            },
            UpdateMessage {
                vp: Asn(200),
                withdrawn: vec![],
                announced: vec![(
                    "14.0.0.0/8".parse().unwrap(),
                    AsPath::from_u32s([200, 9, 3]),
                )],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let updates = sample();
        let mut buf = Vec::new();
        let records = write_update_stream(&updates, &mut buf, 77).unwrap();
        // VP 100: 1 withdrawal message + 2 path groups; VP 200: 1.
        assert_eq!(records, 4);
        let back = read_update_stream(&buf[..]).unwrap();
        assert_eq!(back, updates);
    }

    #[test]
    fn shared_paths_share_messages() {
        let updates = sample();
        let mut buf = Vec::new();
        write_update_stream(&updates, &mut buf, 0).unwrap();
        let mut reader = MrtReader::new(&buf[..]);
        let mut multi_nlri = 0;
        while let Some((_, rec)) = reader.next_record().unwrap() {
            if let MrtRecord::Bgp4mpMessageAs4(m) = rec {
                if m.update.announced.len() > 1 {
                    multi_nlri += 1;
                }
            }
        }
        assert_eq!(multi_nlri, 1, "the two same-path prefixes share one UPDATE");
    }

    #[test]
    fn chunking_respects_cap() {
        let many: Vec<(Ipv4Prefix, AsPath)> = (0..1500u32)
            .map(|i| {
                (
                    Ipv4Prefix::new(i << 12, 20).unwrap(),
                    AsPath::from_u32s([1, 2, 3]),
                )
            })
            .collect();
        let updates = vec![UpdateMessage {
            vp: Asn(1),
            withdrawn: vec![],
            announced: many,
        }];
        let mut buf = Vec::new();
        let records = write_update_stream(&updates, &mut buf, 0).unwrap();
        assert_eq!(records, 3, "1500 prefixes at 600/message = 3 messages");
        // And every message fits in the BGP bound.
        let mut reader = MrtReader::new(&buf[..]);
        while let Some((_, rec)) = reader.next_record().unwrap() {
            let encoded = rec.encode(0);
            assert!(encoded.len() < 4096 + 12 + 20, "message too large");
        }
        let back = read_update_stream(&buf[..]).unwrap();
        assert_eq!(back[0].announced.len(), 1500);
    }

    #[test]
    fn empty_stream() {
        let mut buf = Vec::new();
        assert_eq!(write_update_stream(&[], &mut buf, 0).unwrap(), 0);
        assert!(read_update_stream(&buf[..]).unwrap().is_empty());
    }
}
