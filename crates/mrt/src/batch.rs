//! Folding `BGP4MP` update captures into routing-table delta batches.
//!
//! The incremental inference path does not care about individual UPDATE
//! messages — it cares about the *net* effect of a capture window on the
//! routing table: which `(vp, prefix)` entries gained a path, lost one,
//! or moved to a different one. This module folds a capture into that
//! form ([`asrank_types::UpdateBatch`]), preserving record order so the
//! usual BGP last-wins semantics hold: a withdraw followed by a
//! re-announce nets to the announce, and vice versa.
//!
//! Two entry points share one per-record fold:
//!
//! * [`read_update_batch`] — whole capture → one batch, with record
//!   bodies decoded on the [`Parallelism`] fan-out of
//!   [`crate::scan`] (the fold itself stays in stream order, so the
//!   result is byte-identical at every thread count);
//! * [`UpdateBatchIter`] — streaming, bounded-memory iteration over a
//!   capture in windows of `records_per_batch` records, for replaying a
//!   long capture as a sequence of delta runs.

use crate::attrs::PathAttribute;
use crate::error::MrtError;
use crate::reader::DEFAULT_MAX_RECORD_LEN;
use crate::record::MrtRecord;
use crate::scan::{for_each_decoded, scan_record_frames};
use crate::wire::Cursor;
use asrank_types::update::{PathDelta, UpdateBatch};
use asrank_types::{Asn, Ipv4Prefix, Parallelism};
use std::collections::BTreeMap;
use std::ops::Range;

/// Fold one decoded record into the delta accumulator. Non-update
/// records are skipped; within a message withdrawals apply before
/// announcements; later records win `(vp, prefix)` collisions — the
/// same last-wins fold as [`UpdateBatch::from_messages`].
fn fold_update_record(record: MrtRecord, folded: &mut BTreeMap<(Asn, Ipv4Prefix), PathDelta>) {
    let MrtRecord::Bgp4mpMessageAs4(msg) = record else {
        return;
    };
    for prefix in &msg.update.withdrawn {
        folded.insert((msg.peer_asn, *prefix), PathDelta::Withdraw);
    }
    if let Some(path) = msg
        .update
        .attributes
        .iter()
        .find_map(PathAttribute::flatten_as_path)
    {
        for prefix in &msg.update.announced {
            folded.insert((msg.peer_asn, *prefix), PathDelta::Announce(path.clone()));
        }
    }
}

fn finish_fold(folded: BTreeMap<(Asn, Ipv4Prefix), PathDelta>) -> UpdateBatch {
    UpdateBatch::from_deltas(
        folded
            .into_iter()
            .map(|((vp, prefix), delta)| (vp, prefix, delta)),
    )
}

/// Fold an entire in-memory `BGP4MP` capture into one delta batch.
///
/// Record bodies decode on the `par` fan-out; the fold consumes them in
/// stream order, so output is identical for every thread count and the
/// earliest undecodable record's typed error is reported, matching the
/// sequential reader.
pub fn read_update_batch(data: &[u8], par: Parallelism) -> Result<UpdateBatch, MrtError> {
    let frames = scan_record_frames(data, DEFAULT_MAX_RECORD_LEN)?;
    let mut folded = BTreeMap::new();
    for_each_decoded(data, &frames, par, |(_ts, record)| {
        fold_update_record(record, &mut folded);
        Ok(())
    })?;
    Ok(finish_fold(folded))
}

/// Streaming fold of a `BGP4MP` capture into delta batches of at most
/// `records_per_batch` records each.
///
/// The record framing is scanned (and validated) up front, so hostile
/// lengths surface as typed errors at construction; body decode happens
/// lazily per window. Windows whose records carry no update content
/// (e.g. interleaved RIB records) are skipped rather than yielded empty,
/// so every yielded batch is non-empty.
pub struct UpdateBatchIter<'a> {
    data: &'a [u8],
    frames: Vec<Range<usize>>,
    next_frame: usize,
    records_per_batch: usize,
}

impl<'a> UpdateBatchIter<'a> {
    /// Scan the capture's record framing and set up a windowed fold.
    /// `records_per_batch` is clamped to at least 1.
    pub fn new(data: &'a [u8], records_per_batch: usize) -> Result<Self, MrtError> {
        Ok(UpdateBatchIter {
            data,
            frames: scan_record_frames(data, DEFAULT_MAX_RECORD_LEN)?,
            next_frame: 0,
            records_per_batch: records_per_batch.max(1),
        })
    }

    /// Records not yet consumed.
    pub fn remaining_records(&self) -> usize {
        self.frames.len() - self.next_frame
    }
}

impl Iterator for UpdateBatchIter<'_> {
    type Item = Result<UpdateBatch, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next_frame < self.frames.len() {
            let window_end = (self.next_frame + self.records_per_batch).min(self.frames.len());
            let mut folded = BTreeMap::new();
            for frame in &self.frames[self.next_frame..window_end] {
                let mut c = Cursor::new(&self.data[frame.clone()]);
                match MrtRecord::decode(&mut c) {
                    Ok((_ts, record)) => fold_update_record(record, &mut folded),
                    Err(e) => {
                        // Poison the iterator: the stream position after a
                        // bad body is untrustworthy.
                        self.next_frame = self.frames.len();
                        return Some(Err(e));
                    }
                }
            }
            self.next_frame = window_end;
            if !folded.is_empty() {
                return Some(Ok(finish_fold(folded)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::write_update_stream;
    use asrank_types::update::UpdateMessage;
    use asrank_types::AsPath;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn capture(updates: &[UpdateMessage]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_update_stream(updates, &mut buf, 7).unwrap();
        buf
    }

    #[test]
    fn whole_capture_folds_last_wins() {
        let bytes = capture(&[
            UpdateMessage {
                vp: Asn(100),
                withdrawn: vec![pfx("10.0.0.0/8")],
                announced: vec![(pfx("11.0.0.0/8"), AsPath::from_u32s([100, 2, 3]))],
            },
            UpdateMessage {
                vp: Asn(100),
                withdrawn: vec![pfx("11.0.0.0/8")],
                announced: vec![],
            },
        ]);
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let batch = read_update_batch(&bytes, par).unwrap();
            let deltas: Vec<_> = batch.iter().cloned().collect();
            assert_eq!(
                deltas,
                vec![
                    (Asn(100), pfx("10.0.0.0/8"), PathDelta::Withdraw),
                    (Asn(100), pfx("11.0.0.0/8"), PathDelta::Withdraw),
                ]
            );
        }
    }

    #[test]
    fn windowed_iter_preserves_order_and_merges_to_whole(){
        let updates: Vec<UpdateMessage> = (0..20u32)
            .map(|i| UpdateMessage {
                vp: Asn(100 + (i % 3)),
                withdrawn: if i % 4 == 0 {
                    vec![Ipv4Prefix::new((i % 5) << 24, 8).unwrap()]
                } else {
                    vec![]
                },
                announced: vec![(
                    Ipv4Prefix::new((i % 7) << 24, 8).unwrap(),
                    AsPath::from_u32s([100 + (i % 3), 50 + i]),
                )],
            })
            .collect();
        let bytes = capture(&updates);
        let whole = read_update_batch(&bytes, Parallelism::sequential()).unwrap();
        for window in [1usize, 3, 1000] {
            let mut merged = UpdateBatch::default();
            for batch in UpdateBatchIter::new(&bytes, window).unwrap() {
                let batch = batch.unwrap();
                assert!(!batch.is_empty());
                merged.merge(&batch);
            }
            assert_eq!(merged, whole, "window={window}");
        }
    }

    #[test]
    fn non_update_records_are_skipped() {
        // A RIB dump contains no BGP4MP records: the fold is empty and
        // the iterator yields nothing rather than empty batches.
        let paths: asrank_types::PathSet = vec![asrank_types::PathSample {
            vp: Asn(1),
            prefix: pfx("10.0.0.0/8"),
            path: AsPath::from_u32s([1, 2]),
        }]
        .into_iter()
        .collect();
        let mut rib = Vec::new();
        crate::table::write_rib_dump(&paths, &mut rib, 0).unwrap();
        assert!(read_update_batch(&rib, Parallelism::sequential())
            .unwrap()
            .is_empty());
        assert_eq!(UpdateBatchIter::new(&rib, 4).unwrap().count(), 0);
    }

    #[test]
    fn truncated_capture_is_a_typed_error() {
        let bytes = capture(&[UpdateMessage {
            vp: Asn(1),
            withdrawn: vec![],
            announced: vec![(pfx("10.0.0.0/8"), AsPath::from_u32s([1, 2]))],
        }]);
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            read_update_batch(cut, Parallelism::sequential()),
            Err(MrtError::Truncated { .. })
        ));
        assert!(matches!(
            UpdateBatchIter::new(cut, 4),
            Err(MrtError::Truncated { .. })
        ));
    }
}
