//! # mrt-codec
//!
//! A from-scratch encoder/decoder for the MRT export format (RFC 6396)
//! as used by RouteViews and RIPE RIS — the file format the ASRank paper
//! ingested. Implemented subset:
//!
//! * `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` — the collector's peer table;
//! * `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST` — per-prefix RIB snapshots;
//! * `BGP4MP` / `BGP4MP_MESSAGE_AS4` — full BGP UPDATE messages with
//!   4-byte ASNs (RFC 6793);
//! * BGP path attributes: `ORIGIN`, `AS_PATH` (sequences and sets),
//!   `NEXT_HOP`, `MULTI_EXIT_DISC`; unknown attributes are preserved
//!   byte-for-byte.
//!
//! Design follows the smoltcp school of wire-format handling: decoding is
//! a total function over untrusted bytes — every overrun, bad length, or
//! malformed field returns [`MrtError`], never a panic (enforced by
//! property tests that mutate valid records). Encoding round-trips
//! losslessly.
//!
//! The high-level [`table`] module bridges the codec to the rest of the
//! workspace: it serializes a simulated [`asrank_types::PathSet`] into a
//! standards-shaped RIB dump and reads it back, so the inference pipeline
//! can be fed from `.mrt` files exactly as the original system was.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attrs;
pub mod batch;
pub mod error;
pub mod reader;
pub mod record;
pub mod scan;
pub mod stream;
pub mod table;
pub mod wire;
pub mod writer;

pub use attrs::{AsPathSegment, PathAttribute};
pub use error::MrtError;
pub use reader::{MrtReader, DEFAULT_MAX_RECORD_LEN};
pub use scan::{
    decode_frames, read_rib_dump_parallel, read_update_stream_parallel, scan_record_frames,
};
pub use record::{
    Bgp4mpMessageAs4, BgpUpdate, MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast,
    RibIpv6Unicast, TableDumpV1,
};
pub use batch::{read_update_batch, UpdateBatchIter};
pub use stream::{read_update_stream, write_update_stream};
pub use table::{read_rib_dump, write_rib_dump, write_rib_dump_v1};
pub use writer::MrtWriter;
