//! High-level bridge: [`PathSet`] ⇄ `TABLE_DUMP_V2` RIB dumps.
//!
//! [`write_rib_dump`] lays a simulated path set out exactly as a
//! RouteViews collector would: one `PEER_INDEX_TABLE` followed by one
//! `RIB_IPV4_UNICAST` record per prefix, each carrying one entry per
//! contributing vantage point. [`read_rib_dump`] inverts it, so the
//! inference pipeline can be driven from `.mrt` files.

use crate::attrs::PathAttribute;
use crate::error::MrtError;
use crate::reader::MrtReader;
use crate::record::{MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast};
use crate::writer::MrtWriter;
use asrank_types::{Asn, Ipv4Prefix, PathSample, PathSet};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Serialize a path set as a TABLE_DUMP_V2 RIB dump.
///
/// Records are emitted deterministically: peers sorted by ASN, prefixes in
/// ascending order, entries in peer-table order.
pub fn write_rib_dump<W: Write>(paths: &PathSet, out: W, timestamp: u32) -> Result<u64, MrtError> {
    let mut writer = MrtWriter::new(out);

    // Peer table: one entry per VP, sorted by ASN for determinism.
    let mut vps: Vec<Asn> = paths.vantage_points().into_iter().collect();
    vps.sort();
    let index_of: BTreeMap<Asn, u16> = vps
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u16))
        .collect();
    let table = PeerIndexTable {
        collector_id: 0xc011_u32,
        view_name: "asrank-sim".into(),
        peers: vps
            .iter()
            .enumerate()
            .map(|(i, &asn)| PeerEntry {
                bgp_id: i as u32 + 1,
                addr: 0x0a00_0000 + i as u32 + 1,
                ipv6: false,
                asn,
            })
            .collect(),
    };
    writer.write_record(timestamp, &MrtRecord::PeerIndexTable(table))?;

    // Group samples by prefix.
    let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<&PathSample>> = BTreeMap::new();
    for s in paths.iter() {
        by_prefix.entry(s.prefix).or_default().push(s);
    }

    for (seq, (prefix, mut samples)) in by_prefix.into_iter().enumerate() {
        samples.sort_by_key(|s| index_of[&s.vp]);
        let entries: Vec<RibEntry> = samples
            .iter()
            .map(|s| RibEntry {
                peer_index: index_of[&s.vp],
                originated_time: timestamp,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::as_path_sequence(&s.path),
                    PathAttribute::NextHop(0x0a00_0000 + index_of[&s.vp] as u32 + 1),
                ],
            })
            .collect();
        writer.write_record(
            timestamp,
            &MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                sequence: seq as u32,
                prefix,
                entries,
            }),
        )?;
    }
    Ok(writer.records_written())
}

/// Serialize a path set as a *legacy* TABLE_DUMP (v1) dump: one record
/// per (VP, prefix) route, 2-byte ASNs on the wire (4-byte ASNs become
/// `AS_TRANS`, as RFC 6793 prescribes). Useful for exercising consumers
/// of pre-2008 RouteViews archives. Returns records written.
pub fn write_rib_dump_v1<W: Write>(
    paths: &PathSet,
    out: W,
    timestamp: u32,
) -> Result<u64, MrtError> {
    use crate::record::TableDumpV1;
    let mut writer = MrtWriter::new(out);
    let mut samples: Vec<&PathSample> = paths.iter().collect();
    samples.sort_by_key(|s| (s.prefix, s.vp));
    let mut vps: Vec<Asn> = paths.vantage_points().into_iter().collect();
    vps.sort();
    let index_of: BTreeMap<Asn, u32> = vps
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i as u32))
        .collect();
    for (seq, s) in samples.iter().enumerate() {
        writer.write_record(
            timestamp,
            &MrtRecord::TableDumpV1(TableDumpV1 {
                view: 0,
                sequence: (seq % u16::MAX as usize) as u16,
                prefix: s.prefix,
                status: 1,
                originated_time: timestamp,
                peer_ip: 0x0a00_0000 + index_of[&s.vp] + 1,
                peer_asn: s.vp,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::as_path_sequence(&s.path),
                ],
            }),
        )?;
    }
    Ok(writer.records_written())
}

/// Read a TABLE_DUMP_V2 RIB dump back into a path set.
///
/// Tolerates interleaved unknown records (skipped) and uses the most
/// recent `PEER_INDEX_TABLE` for index resolution, as collectors do when
/// concatenating dumps.
pub fn read_rib_dump<R: Read>(input: R) -> Result<PathSet, MrtError> {
    let mut reader = MrtReader::new(input);
    let mut peers: Vec<Asn> = Vec::new();
    let mut paths = PathSet::new();

    while let Some((_ts, record)) = reader.next_record()? {
        ingest_rib_record(record, &mut peers, &mut paths)?;
    }
    Ok(paths)
}

/// Fold one decoded record into the accumulating path set — the single
/// semantic definition of RIB ingest, shared verbatim by the sequential
/// stream reader above and the parallel byte-range reader
/// ([`crate::scan::read_rib_dump_parallel`]), which is what guarantees
/// the two produce identical output.
pub(crate) fn ingest_rib_record(
    record: MrtRecord,
    peers: &mut Vec<Asn>,
    paths: &mut PathSet,
) -> Result<(), MrtError> {
    match record {
        MrtRecord::PeerIndexTable(t) => {
            *peers = t.peers.iter().map(|p| p.asn).collect();
        }
        MrtRecord::RibIpv4Unicast(rib) => {
            for entry in &rib.entries {
                let Some(&vp) = peers.get(entry.peer_index as usize) else {
                    return Err(MrtError::BadValue {
                        context: "rib peer index (no matching peer table entry)",
                        value: entry.peer_index as u64,
                    });
                };
                let Some(path) = entry
                    .attributes
                    .iter()
                    .find_map(PathAttribute::flatten_as_path)
                else {
                    continue; // entry without AS_PATH carries no evidence
                };
                paths.push(PathSample {
                    vp,
                    prefix: rib.prefix,
                    path,
                });
            }
        }
        // Legacy v1 records carry the peer ASN inline — no peer
        // table needed.
        MrtRecord::TableDumpV1(td) => {
            if let Some(path) = td
                .attributes
                .iter()
                .find_map(PathAttribute::flatten_as_path)
            {
                paths.push(PathSample {
                    vp: td.peer_asn,
                    prefix: td.prefix,
                    path,
                });
            }
        }
        // v6 RIBs, updates, and unknown records are legal in mixed
        // dumps but do not contribute to the IPv4 path set.
        MrtRecord::RibIpv6Unicast(_)
        | MrtRecord::Bgp4mpMessageAs4(_)
        | MrtRecord::Unknown { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::AsPath;

    fn sample_set() -> PathSet {
        let mut ps = PathSet::new();
        for (vp, pfx, path) in [
            (100u32, "10.0.0.0/8", vec![100u32, 2, 3]),
            (100, "11.0.0.0/8", vec![100, 2, 4]),
            (200, "10.0.0.0/8", vec![200, 5, 3]),
        ] {
            ps.push(PathSample {
                vp: Asn(vp),
                prefix: pfx.parse().unwrap(),
                path: AsPath::from_u32s(path),
            });
        }
        ps
    }

    #[test]
    fn dump_roundtrip_preserves_samples() {
        let ps = sample_set();
        let mut buf = Vec::new();
        let n = write_rib_dump(&ps, &mut buf, 1_600_000_000).unwrap();
        assert_eq!(n, 3); // peer table + 2 prefixes
        let back = read_rib_dump(&buf[..]).unwrap();
        let orig: std::collections::HashSet<_> = ps.iter().cloned().collect();
        let got: std::collections::HashSet<_> = back.iter().cloned().collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn missing_peer_table_is_error() {
        let ps = sample_set();
        let mut buf = Vec::new();
        write_rib_dump(&ps, &mut buf, 0).unwrap();
        // Strip the first record (the peer table).
        let first_len = {
            let len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
            12 + len
        };
        let res = read_rib_dump(&buf[first_len..]);
        assert!(matches!(res, Err(MrtError::BadValue { .. })));
    }

    #[test]
    fn unknown_records_are_skipped() {
        let ps = sample_set();
        let mut buf = Vec::new();
        write_rib_dump(&ps, &mut buf, 0).unwrap();
        buf.extend_from_slice(
            &MrtRecord::Unknown {
                mrt_type: 99,
                subtype: 1,
                body: vec![1, 2, 3],
            }
            .encode(5),
        );
        let back = read_rib_dump(&buf[..]).unwrap();
        assert_eq!(back.len(), ps.len());
    }

    #[test]
    fn v1_dump_roundtrip_for_16bit_asns() {
        // All sample ASNs fit in 16 bits, so the legacy format is
        // lossless here.
        let ps = sample_set();
        let mut buf = Vec::new();
        let n = write_rib_dump_v1(&ps, &mut buf, 900_000_000).unwrap();
        assert_eq!(n as usize, ps.len());
        let back = read_rib_dump(&buf[..]).unwrap();
        let a: std::collections::HashSet<_> = ps.iter().cloned().collect();
        let b: std::collections::HashSet<_> = back.iter().cloned().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn legacy_table_dump_v1_records_are_ingested() {
        use crate::record::TableDumpV1;
        let mut buf = Vec::new();
        write_rib_dump(&sample_set(), &mut buf, 0).unwrap();
        // Append a legacy record as a pre-2008 archive would contain.
        buf.extend_from_slice(
            &MrtRecord::TableDumpV1(TableDumpV1 {
                view: 0,
                sequence: 1,
                prefix: "198.51.100.0/24".parse().unwrap(),
                status: 1,
                originated_time: 0,
                peer_ip: 1,
                peer_asn: Asn(65001),
                attributes: vec![PathAttribute::as_path_sequence(&AsPath::from_u32s([
                    65001, 3356, 15169,
                ]))],
            })
            .encode(7),
        );
        let back = read_rib_dump(&buf[..]).unwrap();
        assert_eq!(back.len(), sample_set().len() + 1);
        assert!(back.vantage_points().contains(&Asn(65001)));
    }

    #[test]
    fn empty_pathset_writes_only_peer_table() {
        let ps = PathSet::new();
        let mut buf = Vec::new();
        let n = write_rib_dump(&ps, &mut buf, 0).unwrap();
        assert_eq!(n, 1);
        let back = read_rib_dump(&buf[..]).unwrap();
        assert!(back.is_empty());
    }
}
