//! Streaming MRT reader over any `io::Read`.

use crate::error::MrtError;
use crate::record::MrtRecord;
use crate::wire::Cursor;
use std::io::Read;

/// Default cap on a record's declared body length (64 MiB). Shared by the
/// streaming reader and the parallel frame scanner
/// ([`crate::scan::scan_record_frames`]): a declared length above this is
/// rejected as malformed rather than trusted to size a buffer — the
/// guard against both unbounded allocation and offset-arithmetic
/// overflow in the chunk scanner.
pub const DEFAULT_MAX_RECORD_LEN: u32 = 64 << 20;

/// Reads MRT records one at a time from an underlying stream.
///
/// The reader buffers exactly one record at a time (header first, then the
/// declared body length), so arbitrarily large dumps stream in constant
/// memory. Iterate with [`MrtReader::next_record`] or through the
/// [`Iterator`] impl.
#[derive(Debug)]
pub struct MrtReader<R> {
    inner: R,
    /// Maximum accepted record body length; longer records are rejected as
    /// malformed rather than buffering unbounded memory (default 64 MiB).
    pub max_record_len: u32,
}

impl<R: Read> MrtReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> Self {
        MrtReader {
            inner,
            max_record_len: DEFAULT_MAX_RECORD_LEN,
        }
    }

    /// Read the next record, or `Ok(None)` at clean end-of-stream.
    pub fn next_record(&mut self) -> Result<Option<(u32, MrtRecord)>, MrtError> {
        let mut header = [0u8; 12];
        // Distinguish clean EOF (zero bytes) from mid-header truncation.
        let mut got = 0usize;
        while got < header.len() {
            let n = self.inner.read(&mut header[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(MrtError::Truncated {
                    context: "mrt header (eof mid-record)",
                });
            }
            got += n;
        }
        let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
        if len > self.max_record_len {
            return Err(MrtError::BadLength {
                context: "mrt record length",
                value: len as usize,
            });
        }
        // Checked header+body total: on 32-bit targets a length close to
        // u32::MAX would wrap `12 + len` even below a (misconfigured)
        // max_record_len.
        let total = usize::try_from(len)
            .ok()
            .and_then(|n| n.checked_add(12))
            .ok_or(MrtError::BadLength {
                context: "mrt record length (overflows record extent)",
                value: len as usize,
            })?;
        let mut buf = vec![0u8; total];
        buf[..12].copy_from_slice(&header);
        self.inner.read_exact(&mut buf[12..]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                MrtError::Truncated {
                    context: "mrt body (eof mid-record)",
                }
            } else {
                MrtError::Io(e)
            }
        })?;
        let mut c = Cursor::new(&buf);
        MrtRecord::decode(&mut c).map(Some)
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<(u32, MrtRecord), MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PeerEntry, PeerIndexTable};
    use asrank_types::Asn;

    fn sample() -> MrtRecord {
        MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 5,
            view_name: "x".into(),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: 2,
                ipv6: false,
                asn: Asn(3),
            }],
        })
    }

    #[test]
    fn reads_multiple_records() {
        let mut bytes = Vec::new();
        for ts in [10u32, 20, 30] {
            bytes.extend_from_slice(&sample().encode(ts));
        }
        let reader = MrtReader::new(&bytes[..]);
        let recs: Vec<_> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].0, 20);
        assert_eq!(recs[2].1, sample());
    }

    #[test]
    fn clean_eof_returns_none() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn eof_mid_header_is_truncated_error() {
        let bytes = sample().encode(1);
        let mut r = MrtReader::new(&bytes[..5]);
        assert!(matches!(r.next_record(), Err(MrtError::Truncated { .. })));
    }

    #[test]
    fn eof_mid_body_is_truncated_error() {
        let bytes = sample().encode(1);
        let mut r = MrtReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(r.next_record(), Err(MrtError::Truncated { .. })));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut header = Vec::new();
        crate::wire::put_u32(&mut header, 0);
        crate::wire::put_u16(&mut header, 13);
        crate::wire::put_u16(&mut header, 1);
        crate::wire::put_u32(&mut header, u32::MAX);
        let mut r = MrtReader::new(&header[..]);
        assert!(matches!(r.next_record(), Err(MrtError::BadLength { .. })));
    }
}
