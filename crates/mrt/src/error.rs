//! Codec error type.

use std::fmt;

/// Errors produced while encoding or decoding MRT data.
///
/// Decoding malformed input must *never* panic; every failure mode maps to
/// a variant here.
#[derive(Debug)]
pub enum MrtError {
    /// Input ended before a complete field could be read.
    Truncated {
        /// What was being parsed when the input ran out.
        context: &'static str,
    },
    /// A length field is inconsistent with the surrounding structure.
    BadLength {
        /// What was being parsed.
        context: &'static str,
        /// The offending length value.
        value: usize,
    },
    /// A field holds a value the codec cannot interpret.
    BadValue {
        /// What was being parsed.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The BGP message marker was not all-ones.
    BadMarker,
    /// Underlying I/O failure (streaming reader/writer).
    Io(std::io::Error),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated { context } => write!(f, "truncated input while parsing {context}"),
            MrtError::BadLength { context, value } => {
                write!(f, "inconsistent length {value} while parsing {context}")
            }
            MrtError::BadValue { context, value } => {
                write!(f, "invalid value {value} while parsing {context}")
            }
            MrtError::BadMarker => write!(f, "BGP message marker is not all-ones"),
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MrtError {
    fn from(e: std::io::Error) -> Self {
        MrtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MrtError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
        let e = MrtError::BadLength {
            context: "rib entry",
            value: 9,
        };
        assert!(e.to_string().contains('9'));
        let e = MrtError::BadValue {
            context: "afi",
            value: 3,
        };
        assert!(e.to_string().contains("afi"));
        assert!(MrtError::BadMarker.to_string().contains("marker"));
    }

    #[test]
    fn io_error_wraps_with_source() {
        use std::error::Error;
        let e: MrtError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
