//! MRT record structures and their wire encoding (RFC 6396).

use crate::attrs::PathAttribute;
use crate::error::MrtError;
use crate::wire::{put_u16, put_u32, Cursor};
use asrank_types::{Asn, Ipv4Prefix, Ipv6Prefix};

/// MRT type: TABLE_DUMP (legacy v1).
pub const MRT_TABLE_DUMP: u16 = 12;
/// MRT type: TABLE_DUMP_V2.
pub const MRT_TABLE_DUMP_V2: u16 = 13;
/// TABLE_DUMP (v1) subtype: AFI_IPv4.
pub const SUBTYPE_TABLE_DUMP_AFI_IPV4: u16 = 1;
/// MRT type: BGP4MP.
pub const MRT_BGP4MP: u16 = 16;
/// TABLE_DUMP_V2 subtype: PEER_INDEX_TABLE.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// TABLE_DUMP_V2 subtype: RIB_IPV4_UNICAST.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// TABLE_DUMP_V2 subtype: RIB_IPV6_UNICAST.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;
/// BGP4MP subtype: BGP4MP_MESSAGE_AS4.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;

/// One peer in a [`PeerIndexTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer's BGP identifier.
    pub bgp_id: u32,
    /// Peer's IPv4 address (0 for IPv6 peers, see `ipv6`).
    pub addr: u32,
    /// True when the peer address on the wire was IPv6 (address bytes are
    /// not retained; the reproduction is IPv4-only).
    pub ipv6: bool,
    /// Peer ASN.
    pub asn: Asn,
}

/// `TABLE_DUMP_V2 / PEER_INDEX_TABLE`: the collector's peer directory,
/// referenced by index from every RIB record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerIndexTable {
    /// Collector's BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Peer directory.
    pub peers: Vec<PeerEntry>,
}

/// One route in a [`RibIpv4Unicast`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Index into the peer table.
    pub peer_index: u16,
    /// Unix time the route was originated/learned.
    pub originated_time: u32,
    /// BGP path attributes.
    pub attributes: Vec<PathAttribute>,
}

/// `TABLE_DUMP_V2 / RIB_IPV4_UNICAST`: all collected routes for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv4Unicast {
    /// Monotone sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// One entry per peer that contributed a route.
    pub entries: Vec<RibEntry>,
}

/// Legacy `TABLE_DUMP / AFI_IPv4` (RFC 6396 §4.2): one route per record,
/// 2-byte peer ASN and 2-byte `AS_PATH` encoding — the format of
/// RouteViews archives before 2008. Decoded so historical files are
/// first-class inputs; ASNs above 65535 appear as `AS_TRANS` when
/// re-encoded into this format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDumpV1 {
    /// View number (usually 0).
    pub view: u16,
    /// Sequence number.
    pub sequence: u16,
    /// The prefix (always fully 4-byte encoded in v1).
    pub prefix: Ipv4Prefix,
    /// Status octet (unused, normally 1).
    pub status: u8,
    /// Unix time the route was originated/learned.
    pub originated_time: u32,
    /// Peer IPv4 address.
    pub peer_ip: u32,
    /// Peer ASN (2-byte on the wire).
    pub peer_asn: Asn,
    /// BGP path attributes (AS_PATH carries 2-byte ASNs on the wire).
    pub attributes: Vec<PathAttribute>,
}

/// `TABLE_DUMP_V2 / RIB_IPV6_UNICAST`: all collected routes for one IPv6
/// prefix. The reproduction's analysis is IPv4-scoped, but real collector
/// dumps interleave these records; decoding them (rather than skipping
/// opaque bytes) lets readers account for the v6 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibIpv6Unicast {
    /// Monotone sequence number within the dump.
    pub sequence: u32,
    /// The IPv6 prefix.
    pub prefix: Ipv6Prefix,
    /// One entry per peer that contributed a route.
    pub entries: Vec<RibEntry>,
}

/// A BGP UPDATE message body (RFC 4271 §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgpUpdate {
    /// Withdrawn prefixes.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Path attributes applying to all announced prefixes.
    pub attributes: Vec<PathAttribute>,
    /// Announced prefixes (NLRI).
    pub announced: Vec<Ipv4Prefix>,
}

/// `BGP4MP / BGP4MP_MESSAGE_AS4`: one captured BGP UPDATE with 4-byte
/// ASN header fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessageAs4 {
    /// ASN of the peer that sent the message.
    pub peer_asn: Asn,
    /// ASN of the collector side.
    pub local_asn: Asn,
    /// Interface index (usually 0 in collector dumps).
    pub if_index: u16,
    /// Peer IPv4 address.
    pub peer_ip: u32,
    /// Local IPv4 address.
    pub local_ip: u32,
    /// The UPDATE message.
    pub update: BgpUpdate,
}

/// Any MRT record the codec understands, plus a lossless fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecord {
    /// TABLE_DUMP_V2 peer index table.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 IPv4 unicast RIB record.
    RibIpv4Unicast(RibIpv4Unicast),
    /// TABLE_DUMP_V2 IPv6 unicast RIB record.
    RibIpv6Unicast(RibIpv6Unicast),
    /// Legacy TABLE_DUMP (v1) IPv4 record.
    TableDumpV1(TableDumpV1),
    /// BGP4MP AS4 UPDATE message.
    Bgp4mpMessageAs4(Bgp4mpMessageAs4),
    /// Anything else, preserved verbatim.
    Unknown {
        /// MRT type field.
        mrt_type: u16,
        /// MRT subtype field.
        subtype: u16,
        /// Raw record body.
        body: Vec<u8>,
    },
}

// --- NLRI helpers -----------------------------------------------------

/// Encode one prefix in NLRI form: length byte + minimal prefix bytes.
pub(crate) fn encode_nlri(out: &mut Vec<u8>, p: &Ipv4Prefix) {
    out.push(p.len());
    let bytes = p.network().to_be_bytes();
    out.extend_from_slice(&bytes[..(p.len() as usize).div_ceil(8)]);
}

/// Decode one NLRI prefix.
pub(crate) fn decode_nlri(c: &mut Cursor<'_>) -> Result<Ipv4Prefix, MrtError> {
    let len = c.u8("nlri length")?;
    if len > 32 {
        return Err(MrtError::BadLength {
            context: "nlri length",
            value: len as usize,
        });
    }
    let nbytes = (len as usize).div_ceil(8);
    let raw = c.take(nbytes, "nlri prefix")?;
    let mut b = [0u8; 4];
    b[..nbytes].copy_from_slice(raw);
    Ipv4Prefix::new(u32::from_be_bytes(b), len).map_err(|_| MrtError::BadLength {
        context: "nlri prefix",
        value: len as usize,
    })
}

/// Encode one IPv6 prefix in NLRI form.
pub(crate) fn encode_nlri6(out: &mut Vec<u8>, p: &Ipv6Prefix) {
    out.push(p.len());
    let bytes = p.network().to_be_bytes();
    out.extend_from_slice(&bytes[..(p.len() as usize).div_ceil(8)]);
}

/// Decode one IPv6 NLRI prefix.
pub(crate) fn decode_nlri6(c: &mut Cursor<'_>) -> Result<Ipv6Prefix, MrtError> {
    let len = c.u8("nlri6 length")?;
    if len > 128 {
        return Err(MrtError::BadLength {
            context: "nlri6 length",
            value: len as usize,
        });
    }
    let nbytes = (len as usize).div_ceil(8);
    let raw = c.take(nbytes, "nlri6 prefix")?;
    let mut b = [0u8; 16];
    b[..nbytes].copy_from_slice(raw);
    Ipv6Prefix::new(u128::from_be_bytes(b), len).map_err(|_| MrtError::BadLength {
        context: "nlri6 prefix",
        value: len as usize,
    })
}

/// Decode a block of consecutive NLRI prefixes of exactly `len` bytes.
fn decode_nlri_block(c: &mut Cursor<'_>, len: usize) -> Result<Vec<Ipv4Prefix>, MrtError> {
    let mut sub = c.sub(len, "nlri block")?;
    let mut out = Vec::new();
    while !sub.is_empty() {
        out.push(decode_nlri(&mut sub)?);
    }
    Ok(out)
}

// --- Record bodies ----------------------------------------------------

impl PeerIndexTable {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_u32(out, self.collector_id);
        let name = self.view_name.as_bytes();
        put_u16(out, name.len().min(u16::MAX as usize) as u16);
        out.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
        put_u16(out, self.peers.len().min(u16::MAX as usize) as u16);
        for p in self.peers.iter().take(u16::MAX as usize) {
            // Peer type: bit 0 = IPv6 address, bit 1 = 4-byte ASN.
            // The encoder always uses 4-byte ASNs and IPv4 addresses.
            out.push(0x02);
            put_u32(out, p.bgp_id);
            put_u32(out, p.addr);
            put_u32(out, p.asn.0);
        }
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let collector_id = c.u32("collector id")?;
        let name_len = c.u16("view name length")? as usize;
        let name = c.take(name_len, "view name")?;
        let view_name = String::from_utf8_lossy(name).into_owned();
        let count = c.u16("peer count")? as usize;
        let mut peers = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let ptype = c.u8("peer type")?;
            let bgp_id = c.u32("peer bgp id")?;
            let ipv6 = ptype & 0x01 != 0;
            let addr = if ipv6 {
                c.take(16, "peer ipv6 addr")?;
                0
            } else {
                c.u32("peer ipv4 addr")?
            };
            let asn = if ptype & 0x02 != 0 {
                Asn(c.u32("peer as4")?)
            } else {
                Asn(c.u16("peer as2")? as u32)
            };
            peers.push(PeerEntry {
                bgp_id,
                addr,
                ipv6,
                asn,
            });
        }
        Ok(PeerIndexTable {
            collector_id,
            view_name,
            peers,
        })
    }
}

impl RibIpv4Unicast {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_u32(out, self.sequence);
        encode_nlri(out, &self.prefix);
        put_u16(out, self.entries.len().min(u16::MAX as usize) as u16);
        for e in self.entries.iter().take(u16::MAX as usize) {
            put_u16(out, e.peer_index);
            put_u32(out, e.originated_time);
            let attrs = PathAttribute::encode_block(&e.attributes);
            put_u16(out, attrs.len().min(u16::MAX as usize) as u16);
            out.extend_from_slice(&attrs);
        }
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let sequence = c.u32("rib sequence")?;
        let prefix = decode_nlri(c)?;
        let count = c.u16("rib entry count")? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let peer_index = c.u16("rib peer index")?;
            let originated_time = c.u32("rib originated time")?;
            let attr_len = c.u16("rib attr length")? as usize;
            let attributes = PathAttribute::decode_block(c, attr_len)?;
            entries.push(RibEntry {
                peer_index,
                originated_time,
                attributes,
            });
        }
        Ok(RibIpv4Unicast {
            sequence,
            prefix,
            entries,
        })
    }
}

impl RibIpv6Unicast {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_u32(out, self.sequence);
        encode_nlri6(out, &self.prefix);
        put_u16(out, self.entries.len().min(u16::MAX as usize) as u16);
        for e in self.entries.iter().take(u16::MAX as usize) {
            put_u16(out, e.peer_index);
            put_u32(out, e.originated_time);
            let attrs = PathAttribute::encode_block(&e.attributes);
            put_u16(out, attrs.len().min(u16::MAX as usize) as u16);
            out.extend_from_slice(&attrs);
        }
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let sequence = c.u32("rib6 sequence")?;
        let prefix = decode_nlri6(c)?;
        let count = c.u16("rib6 entry count")? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let peer_index = c.u16("rib6 peer index")?;
            let originated_time = c.u32("rib6 originated time")?;
            let attr_len = c.u16("rib6 attr length")? as usize;
            let attributes = PathAttribute::decode_block(c, attr_len)?;
            entries.push(RibEntry {
                peer_index,
                originated_time,
                attributes,
            });
        }
        Ok(RibIpv6Unicast {
            sequence,
            prefix,
            entries,
        })
    }
}

impl TableDumpV1 {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_u16(out, self.view);
        put_u16(out, self.sequence);
        // v1 always writes the full 4-byte prefix plus a length octet.
        put_u32(out, self.prefix.network());
        out.push(self.prefix.len());
        out.push(self.status);
        put_u32(out, self.originated_time);
        put_u32(out, self.peer_ip);
        let short = if self.peer_asn.0 > u16::MAX as u32 {
            23456
        } else {
            self.peer_asn.0 as u16
        };
        put_u16(out, short);
        let mut attrs = Vec::new();
        for a in &self.attributes {
            a.encode_sized(&mut attrs, false);
        }
        put_u16(out, attrs.len().min(u16::MAX as usize) as u16);
        out.extend_from_slice(&attrs);
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let view = c.u16("td1 view")?;
        let sequence = c.u16("td1 sequence")?;
        let addr = c.u32("td1 prefix")?;
        let len = c.u8("td1 prefix length")?;
        let prefix = Ipv4Prefix::new(addr, len).map_err(|_| MrtError::BadLength {
            context: "td1 prefix length",
            value: len as usize,
        })?;
        let status = c.u8("td1 status")?;
        let originated_time = c.u32("td1 originated")?;
        let peer_ip = c.u32("td1 peer ip")?;
        let peer_asn = Asn(c.u16("td1 peer asn")? as u32);
        let attr_len = c.u16("td1 attr length")? as usize;
        let attributes = PathAttribute::decode_block_sized(c, attr_len, false)?;
        Ok(TableDumpV1 {
            view,
            sequence,
            prefix,
            status,
            originated_time,
            peer_ip,
            peer_asn,
            attributes,
        })
    }
}

impl BgpUpdate {
    /// Encode the UPDATE as a full BGP message (marker + header + body).
    fn encode_message(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0xff; 16]);
        let len_pos = out.len();
        put_u16(out, 0); // patched below
        out.push(2); // message type: UPDATE

        let mut withdrawn = Vec::new();
        for p in &self.withdrawn {
            encode_nlri(&mut withdrawn, p);
        }
        put_u16(out, withdrawn.len() as u16);
        out.extend_from_slice(&withdrawn);

        let attrs = PathAttribute::encode_block(&self.attributes);
        put_u16(out, attrs.len() as u16);
        out.extend_from_slice(&attrs);

        for p in &self.announced {
            encode_nlri(out, p);
        }

        let total = (out.len() - start) as u16;
        out[len_pos..len_pos + 2].copy_from_slice(&total.to_be_bytes());
    }

    /// Decode a full BGP message, expecting an UPDATE.
    fn decode_message(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let marker = c.take(16, "bgp marker")?;
        if marker != [0xff; 16] {
            return Err(MrtError::BadMarker);
        }
        let total = c.u16("bgp message length")? as usize;
        if total < 19 {
            return Err(MrtError::BadLength {
                context: "bgp message length",
                value: total,
            });
        }
        let msg_type = c.u8("bgp message type")?;
        if msg_type != 2 {
            return Err(MrtError::BadValue {
                context: "bgp message type (only UPDATE supported)",
                value: msg_type as u64,
            });
        }
        let mut body = c.sub(total - 19, "bgp update body")?;
        let wlen = body.u16("withdrawn length")? as usize;
        let withdrawn = decode_nlri_block(&mut body, wlen)?;
        let alen = body.u16("attributes length")? as usize;
        let attributes = PathAttribute::decode_block(&mut body, alen)?;
        let rest = body.remaining();
        let announced = decode_nlri_block(&mut body, rest)?;
        Ok(BgpUpdate {
            withdrawn,
            attributes,
            announced,
        })
    }
}

impl Bgp4mpMessageAs4 {
    fn encode_body(&self, out: &mut Vec<u8>) {
        put_u32(out, self.peer_asn.0);
        put_u32(out, self.local_asn.0);
        put_u16(out, self.if_index);
        put_u16(out, 1); // AFI: IPv4
        put_u32(out, self.peer_ip);
        put_u32(out, self.local_ip);
        self.update.encode_message(out);
    }

    fn decode_body(c: &mut Cursor<'_>) -> Result<Self, MrtError> {
        let peer_asn = Asn(c.u32("bgp4mp peer asn")?);
        let local_asn = Asn(c.u32("bgp4mp local asn")?);
        let if_index = c.u16("bgp4mp ifindex")?;
        let afi = c.u16("bgp4mp afi")?;
        if afi != 1 {
            return Err(MrtError::BadValue {
                context: "bgp4mp afi (only IPv4 supported)",
                value: afi as u64,
            });
        }
        let peer_ip = c.u32("bgp4mp peer ip")?;
        let local_ip = c.u32("bgp4mp local ip")?;
        let update = BgpUpdate::decode_message(c)?;
        Ok(Bgp4mpMessageAs4 {
            peer_asn,
            local_asn,
            if_index,
            peer_ip,
            local_ip,
            update,
        })
    }
}

impl MrtRecord {
    /// MRT (type, subtype) pair for this record.
    pub fn type_pair(&self) -> (u16, u16) {
        match self {
            MrtRecord::PeerIndexTable(_) => (MRT_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE),
            MrtRecord::RibIpv4Unicast(_) => (MRT_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST),
            MrtRecord::RibIpv6Unicast(_) => (MRT_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST),
            MrtRecord::TableDumpV1(_) => (MRT_TABLE_DUMP, SUBTYPE_TABLE_DUMP_AFI_IPV4),
            MrtRecord::Bgp4mpMessageAs4(_) => (MRT_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4),
            MrtRecord::Unknown {
                mrt_type, subtype, ..
            } => (*mrt_type, *subtype),
        }
    }

    /// Encode the record with its MRT common header.
    pub fn encode(&self, timestamp: u32) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            MrtRecord::PeerIndexTable(t) => t.encode_body(&mut body),
            MrtRecord::RibIpv4Unicast(r) => r.encode_body(&mut body),
            MrtRecord::RibIpv6Unicast(r) => r.encode_body(&mut body),
            MrtRecord::TableDumpV1(r) => r.encode_body(&mut body),
            MrtRecord::Bgp4mpMessageAs4(m) => m.encode_body(&mut body),
            MrtRecord::Unknown { body: raw, .. } => body.extend_from_slice(raw),
        }
        let (t, s) = self.type_pair();
        let mut out = Vec::with_capacity(body.len() + 12);
        put_u32(&mut out, timestamp);
        put_u16(&mut out, t);
        put_u16(&mut out, s);
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decode one record (header + body) from the cursor, returning the
    /// record's timestamp alongside it.
    pub fn decode(c: &mut Cursor<'_>) -> Result<(u32, MrtRecord), MrtError> {
        let timestamp = c.u32("mrt timestamp")?;
        let mrt_type = c.u16("mrt type")?;
        let subtype = c.u16("mrt subtype")?;
        let len = c.u32("mrt length")? as usize;
        let mut body = c.sub(len, "mrt body")?;
        let record = match (mrt_type, subtype) {
            (MRT_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
                MrtRecord::PeerIndexTable(PeerIndexTable::decode_body(&mut body)?)
            }
            (MRT_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
                MrtRecord::RibIpv4Unicast(RibIpv4Unicast::decode_body(&mut body)?)
            }
            (MRT_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
                MrtRecord::RibIpv6Unicast(RibIpv6Unicast::decode_body(&mut body)?)
            }
            (MRT_TABLE_DUMP, SUBTYPE_TABLE_DUMP_AFI_IPV4) => {
                MrtRecord::TableDumpV1(TableDumpV1::decode_body(&mut body)?)
            }
            (MRT_BGP4MP, SUBTYPE_BGP4MP_MESSAGE_AS4) => {
                MrtRecord::Bgp4mpMessageAs4(Bgp4mpMessageAs4::decode_body(&mut body)?)
            }
            _ => MrtRecord::Unknown {
                mrt_type,
                subtype,
                body: body.take(body.remaining(), "unknown body")?.to_vec(),
            },
        };
        Ok((timestamp, record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::AsPath;

    fn rt(rec: MrtRecord) -> MrtRecord {
        let buf = rec.encode(1_700_000_000);
        let mut c = Cursor::new(&buf);
        let (ts, out) = MrtRecord::decode(&mut c).unwrap();
        assert_eq!(ts, 1_700_000_000);
        assert!(c.is_empty());
        out
    }

    fn sample_peer_table() -> PeerIndexTable {
        PeerIndexTable {
            collector_id: 0xc0a80001,
            view_name: "rv2".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    addr: 0x0a000001,
                    ipv6: false,
                    asn: Asn(7018),
                },
                PeerEntry {
                    bgp_id: 2,
                    addr: 0x0a000002,
                    ipv6: false,
                    asn: Asn(286_000_000),
                },
            ],
        }
    }

    #[test]
    fn peer_index_table_roundtrip() {
        let t = sample_peer_table();
        assert_eq!(
            rt(MrtRecord::PeerIndexTable(t.clone())),
            MrtRecord::PeerIndexTable(t)
        );
    }

    #[test]
    fn rib_roundtrip() {
        let rec = RibIpv4Unicast {
            sequence: 7,
            prefix: "10.20.0.0/14".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 1,
                originated_time: 12345,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::as_path_sequence(&AsPath::from_u32s([7018, 3356, 15169])),
                    PathAttribute::NextHop(0x0a000001),
                ],
            }],
        };
        assert_eq!(
            rt(MrtRecord::RibIpv4Unicast(rec.clone())),
            MrtRecord::RibIpv4Unicast(rec)
        );
    }

    #[test]
    fn bgp4mp_update_roundtrip() {
        let rec = Bgp4mpMessageAs4 {
            peer_asn: Asn(3356),
            local_asn: Asn(65001),
            if_index: 0,
            peer_ip: 0x01020304,
            local_ip: 0x05060708,
            update: BgpUpdate {
                withdrawn: vec!["192.0.2.0/24".parse().unwrap()],
                attributes: vec![
                    PathAttribute::Origin(2),
                    PathAttribute::as_path_sequence(&AsPath::from_u32s([3356, 1299])),
                ],
                announced: vec![
                    "10.0.0.0/8".parse().unwrap(),
                    "172.16.0.0/12".parse().unwrap(),
                ],
            },
        };
        assert_eq!(
            rt(MrtRecord::Bgp4mpMessageAs4(rec.clone())),
            MrtRecord::Bgp4mpMessageAs4(rec)
        );
    }

    #[test]
    fn unknown_record_roundtrip() {
        let rec = MrtRecord::Unknown {
            mrt_type: 48,
            subtype: 9,
            body: vec![1, 2, 3],
        };
        assert_eq!(rt(rec.clone()), rec);
    }

    #[test]
    fn nlri_zero_length_prefix() {
        let mut buf = Vec::new();
        encode_nlri(&mut buf, &Ipv4Prefix::DEFAULT_ROUTE);
        assert_eq!(buf, vec![0]);
        let p = decode_nlri(&mut Cursor::new(&buf)).unwrap();
        assert!(p.is_default());
    }

    #[test]
    fn nlri_rejects_overlong_prefix() {
        let buf = [33u8, 1, 2, 3, 4, 5];
        assert!(matches!(
            decode_nlri(&mut Cursor::new(&buf)),
            Err(MrtError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_marker_rejected() {
        let rec = Bgp4mpMessageAs4 {
            peer_asn: Asn(1),
            local_asn: Asn(2),
            if_index: 0,
            peer_ip: 0,
            local_ip: 0,
            update: BgpUpdate::default(),
        };
        let mut buf = MrtRecord::Bgp4mpMessageAs4(rec).encode(0);
        // Marker starts after the 12-byte MRT header + 20 bytes of BGP4MP
        // head (peer/local ASN, ifindex, AFI, peer/local IPv4).
        buf[12 + 20] = 0x00;
        assert!(matches!(
            MrtRecord::decode(&mut Cursor::new(&buf)),
            Err(MrtError::BadMarker)
        ));
    }

    #[test]
    fn truncated_header_is_error() {
        let buf = [0u8; 5];
        assert!(matches!(
            MrtRecord::decode(&mut Cursor::new(&buf)),
            Err(MrtError::Truncated { .. })
        ));
    }

    #[test]
    fn table_dump_v1_roundtrip() {
        let rec = TableDumpV1 {
            view: 0,
            sequence: 42,
            prefix: "192.0.2.0/24".parse().unwrap(),
            status: 1,
            originated_time: 1_100_000_000,
            peer_ip: 0x0a000001,
            peer_asn: Asn(7018),
            attributes: vec![
                PathAttribute::Origin(0),
                PathAttribute::as_path_sequence(&AsPath::from_u32s([7018, 701, 3356])),
            ],
        };
        assert_eq!(
            rt(MrtRecord::TableDumpV1(rec.clone())),
            MrtRecord::TableDumpV1(rec)
        );
    }

    #[test]
    fn rib_ipv6_roundtrip() {
        let rec = RibIpv6Unicast {
            sequence: 11,
            prefix: "2001:db8::/32".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 99,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::as_path_sequence(&AsPath::from_u32s([6939, 15169])),
                ],
            }],
        };
        assert_eq!(
            rt(MrtRecord::RibIpv6Unicast(rec.clone())),
            MrtRecord::RibIpv6Unicast(rec)
        );
    }

    #[test]
    fn nlri6_rejects_overlong() {
        let buf = [129u8, 1, 2];
        assert!(matches!(
            decode_nlri6(&mut Cursor::new(&buf)),
            Err(MrtError::BadLength { .. })
        ));
    }

    #[test]
    fn peer_table_with_as2_and_ipv6_decodes() {
        // Hand-build a body with one AS2/IPv4 peer and one AS4/IPv6 peer.
        let mut body = Vec::new();
        put_u32(&mut body, 9); // collector
        put_u16(&mut body, 0); // empty view name
        put_u16(&mut body, 2); // two peers
        body.push(0x00); // AS2 + IPv4
        put_u32(&mut body, 11); // bgp id
        put_u32(&mut body, 0x0a0a0a0a);
        put_u16(&mut body, 65000);
        body.push(0x03); // AS4 + IPv6
        put_u32(&mut body, 12);
        body.extend_from_slice(&[0u8; 16]);
        put_u32(&mut body, 400000);

        let mut rec = Vec::new();
        put_u32(&mut rec, 0);
        put_u16(&mut rec, MRT_TABLE_DUMP_V2);
        put_u16(&mut rec, SUBTYPE_PEER_INDEX_TABLE);
        put_u32(&mut rec, body.len() as u32);
        rec.extend_from_slice(&body);

        let (_, parsed) = MrtRecord::decode(&mut Cursor::new(&rec)).unwrap();
        match parsed {
            MrtRecord::PeerIndexTable(t) => {
                assert_eq!(t.peers[0].asn, Asn(65000));
                assert!(!t.peers[0].ipv6);
                assert_eq!(t.peers[1].asn, Asn(400000));
                assert!(t.peers[1].ipv6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
