//! BGP path attributes (RFC 4271 §4.3, RFC 6793).
//!
//! Only the attributes the reproduction needs are given typed forms;
//! everything else round-trips as [`PathAttribute::Unknown`] so no
//! information is lost when re-encoding a file.

use crate::error::MrtError;
use crate::wire::{put_u16, put_u32, Cursor};
use asrank_types::{AsPath, Asn};

/// Attribute flag bit: optional.
pub const FLAG_OPTIONAL: u8 = 0x80;
/// Attribute flag bit: transitive.
pub const FLAG_TRANSITIVE: u8 = 0x40;
/// Attribute flag bit: extended (2-byte) length.
pub const FLAG_EXTENDED: u8 = 0x10;

const TYPE_ORIGIN: u8 = 1;
const TYPE_AS_PATH: u8 = 2;
const TYPE_NEXT_HOP: u8 = 3;
const TYPE_MED: u8 = 4;

/// One segment of an `AS_PATH` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsPathSegment {
    /// Ordered sequence of ASNs (`AS_SEQUENCE`).
    Sequence(Vec<Asn>),
    /// Unordered set of ASNs (`AS_SET`, from aggregation).
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// The ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }
}

/// A decoded BGP path attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathAttribute {
    /// `ORIGIN` (type 1): 0 = IGP, 1 = EGP, 2 = INCOMPLETE.
    Origin(u8),
    /// `AS_PATH` (type 2) with 4-byte ASNs (RFC 6793 encoding, as used in
    /// TABLE_DUMP_V2 and BGP4MP_MESSAGE_AS4).
    AsPath(Vec<AsPathSegment>),
    /// `NEXT_HOP` (type 3): IPv4 address in host byte order.
    NextHop(u32),
    /// `MULTI_EXIT_DISC` (type 4).
    Med(u32),
    /// Any other attribute, preserved verbatim.
    Unknown {
        /// Original flag octet.
        flags: u8,
        /// Attribute type code.
        type_code: u8,
        /// Raw attribute value bytes.
        value: Vec<u8>,
    },
}

impl PathAttribute {
    /// Build the conventional `AS_PATH` attribute for a plain sequence.
    pub fn as_path_sequence(path: &AsPath) -> PathAttribute {
        PathAttribute::AsPath(vec![AsPathSegment::Sequence(path.0.clone())])
    }

    /// If this is an `AS_PATH`, flatten it to an [`AsPath`]
    /// (sets contribute their members in stored order, matching how AS
    /// topology studies treat aggregated segments).
    pub fn flatten_as_path(&self) -> Option<AsPath> {
        match self {
            PathAttribute::AsPath(segs) => {
                let mut v = Vec::new();
                for s in segs {
                    v.extend_from_slice(s.asns());
                }
                Some(AsPath(v))
            }
            _ => None,
        }
    }

    /// Encode this attribute, appending to `out` (4-byte ASNs).
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_sized(out, true)
    }

    /// Encode with explicit ASN width: `as4 = false` produces the legacy
    /// 2-byte `AS_PATH` encoding used by `TABLE_DUMP` (v1) records; ASNs
    /// above 65535 are replaced by `AS_TRANS` (23456), as RFC 6793
    /// speakers do.
    pub fn encode_sized(&self, out: &mut Vec<u8>, as4: bool) {
        let (flags, type_code, value): (u8, u8, Vec<u8>) = match self {
            PathAttribute::Origin(v) => (FLAG_TRANSITIVE, TYPE_ORIGIN, vec![*v]),
            PathAttribute::AsPath(segs) => {
                let mut v = Vec::new();
                for seg in segs {
                    let (code, asns) = match seg {
                        AsPathSegment::Set(a) => (1u8, a),
                        AsPathSegment::Sequence(a) => (2u8, a),
                    };
                    v.push(code);
                    v.push(asns.len().min(255) as u8);
                    for asn in asns.iter().take(255) {
                        if as4 {
                            put_u32(&mut v, asn.0);
                        } else {
                            let short = if asn.0 > u16::MAX as u32 {
                                23456 // AS_TRANS
                            } else {
                                asn.0 as u16
                            };
                            put_u16(&mut v, short);
                        }
                    }
                }
                (FLAG_TRANSITIVE, TYPE_AS_PATH, v)
            }
            PathAttribute::NextHop(ip) => {
                (FLAG_TRANSITIVE, TYPE_NEXT_HOP, ip.to_be_bytes().to_vec())
            }
            PathAttribute::Med(v) => (FLAG_OPTIONAL, TYPE_MED, v.to_be_bytes().to_vec()),
            PathAttribute::Unknown {
                flags,
                type_code,
                value,
            } => (*flags, *type_code, value.clone()),
        };
        let extended = value.len() > 255 || flags & FLAG_EXTENDED != 0;
        out.push(if extended {
            flags | FLAG_EXTENDED
        } else {
            flags & !FLAG_EXTENDED
        });
        out.push(type_code);
        if extended {
            put_u16(out, value.len() as u16);
        } else {
            out.push(value.len() as u8);
        }
        out.extend_from_slice(&value);
    }

    /// Decode one attribute from the cursor (4-byte ASNs).
    pub fn decode(c: &mut Cursor<'_>) -> Result<PathAttribute, MrtError> {
        Self::decode_sized(c, true)
    }

    /// Decode with explicit ASN width (see [`Self::encode_sized`]).
    pub fn decode_sized(c: &mut Cursor<'_>, as4: bool) -> Result<PathAttribute, MrtError> {
        let flags = c.u8("attr flags")?;
        let type_code = c.u8("attr type")?;
        let len = if flags & FLAG_EXTENDED != 0 {
            c.u16("attr ext length")? as usize
        } else {
            c.u8("attr length")? as usize
        };
        let mut body = c.sub(len, "attr value")?;
        match type_code {
            TYPE_ORIGIN => {
                let v = body.u8("origin value")?;
                if v > 2 {
                    return Err(MrtError::BadValue {
                        context: "origin value",
                        value: v as u64,
                    });
                }
                Ok(PathAttribute::Origin(v))
            }
            TYPE_AS_PATH => {
                let mut segs = Vec::new();
                while !body.is_empty() {
                    let seg_type = body.u8("as_path segment type")?;
                    let count = body.u8("as_path segment count")? as usize;
                    let mut asns = Vec::with_capacity(count);
                    for _ in 0..count {
                        let v = if as4 {
                            body.u32("as_path asn")?
                        } else {
                            body.u16("as_path asn16")? as u32
                        };
                        asns.push(Asn(v));
                    }
                    segs.push(match seg_type {
                        1 => AsPathSegment::Set(asns),
                        2 => AsPathSegment::Sequence(asns),
                        other => {
                            return Err(MrtError::BadValue {
                                context: "as_path segment type",
                                value: other as u64,
                            })
                        }
                    });
                }
                Ok(PathAttribute::AsPath(segs))
            }
            TYPE_NEXT_HOP => Ok(PathAttribute::NextHop(body.u32("next_hop")?)),
            TYPE_MED => Ok(PathAttribute::Med(body.u32("med")?)),
            _ => Ok(PathAttribute::Unknown {
                flags,
                type_code,
                value: body.take(body.remaining(), "unknown attr")?.to_vec(),
            }),
        }
    }

    /// Decode a whole attribute block of `len` bytes (4-byte ASNs).
    pub fn decode_block(c: &mut Cursor<'_>, len: usize) -> Result<Vec<PathAttribute>, MrtError> {
        Self::decode_block_sized(c, len, true)
    }

    /// Decode a whole attribute block with explicit ASN width.
    pub fn decode_block_sized(
        c: &mut Cursor<'_>,
        len: usize,
        as4: bool,
    ) -> Result<Vec<PathAttribute>, MrtError> {
        let mut block = c.sub(len, "attribute block")?;
        let mut attrs = Vec::new();
        while !block.is_empty() {
            attrs.push(PathAttribute::decode_sized(&mut block, as4)?);
        }
        Ok(attrs)
    }

    /// Encode a list of attributes, returning the block.
    pub fn encode_block(attrs: &[PathAttribute]) -> Vec<u8> {
        let mut out = Vec::new();
        for a in attrs {
            a.encode(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(attr: PathAttribute) -> PathAttribute {
        let mut buf = Vec::new();
        attr.encode(&mut buf);
        let mut c = Cursor::new(&buf);
        let out = PathAttribute::decode(&mut c).unwrap();
        assert!(c.is_empty(), "decode must consume the whole encoding");
        out
    }

    #[test]
    fn origin_roundtrip() {
        for v in 0..=2u8 {
            assert_eq!(
                roundtrip(PathAttribute::Origin(v)),
                PathAttribute::Origin(v)
            );
        }
    }

    #[test]
    fn origin_rejects_bad_value() {
        let mut buf = Vec::new();
        PathAttribute::Origin(0).encode(&mut buf);
        let n = buf.len();
        buf[n - 1] = 7; // corrupt the value
        assert!(matches!(
            PathAttribute::decode(&mut Cursor::new(&buf)),
            Err(MrtError::BadValue { .. })
        ));
    }

    #[test]
    fn as_path_roundtrip_with_set_and_sequence() {
        let attr = PathAttribute::AsPath(vec![
            AsPathSegment::Sequence(vec![Asn(7018), Asn(3356), Asn(65000)]),
            AsPathSegment::Set(vec![Asn(1), Asn(2)]),
        ]);
        assert_eq!(roundtrip(attr.clone()), attr);
    }

    #[test]
    fn flatten_merges_segments() {
        let attr = PathAttribute::AsPath(vec![
            AsPathSegment::Sequence(vec![Asn(10), Asn(20)]),
            AsPathSegment::Set(vec![Asn(30)]),
        ]);
        assert_eq!(
            attr.flatten_as_path().unwrap(),
            AsPath::from_u32s([10, 20, 30])
        );
        assert!(PathAttribute::Origin(0).flatten_as_path().is_none());
    }

    #[test]
    fn next_hop_and_med_roundtrip() {
        assert_eq!(
            roundtrip(PathAttribute::NextHop(0x0a000001)),
            PathAttribute::NextHop(0x0a000001)
        );
        assert_eq!(
            roundtrip(PathAttribute::Med(4096)),
            PathAttribute::Med(4096)
        );
    }

    #[test]
    fn unknown_attribute_preserved() {
        let attr = PathAttribute::Unknown {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code: 32, // LARGE_COMMUNITY
            value: vec![0xde, 0xad, 0xbe, 0xef],
        };
        assert_eq!(roundtrip(attr.clone()), attr);
    }

    #[test]
    fn extended_length_used_for_big_values() {
        let attr = PathAttribute::Unknown {
            flags: FLAG_OPTIONAL,
            type_code: 99,
            value: vec![0xab; 300],
        };
        let mut buf = Vec::new();
        attr.encode(&mut buf);
        assert!(buf[0] & FLAG_EXTENDED != 0);
        let decoded = PathAttribute::decode(&mut Cursor::new(&buf)).unwrap();
        match decoded {
            PathAttribute::Unknown { value, .. } => assert_eq!(value.len(), 300),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_as_path_is_error() {
        let attr = PathAttribute::as_path_sequence(&AsPath::from_u32s([1, 2, 3]));
        let mut buf = Vec::new();
        attr.encode(&mut buf);
        buf.truncate(buf.len() - 2);
        // The attribute's *declared* length now exceeds the buffer.
        assert!(PathAttribute::decode(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn as2_roundtrip_and_as_trans_substitution() {
        let attr = PathAttribute::AsPath(vec![AsPathSegment::Sequence(vec![
            Asn(7018),
            Asn(400_000), // needs AS_TRANS in 2-byte encoding
        ])]);
        let mut buf = Vec::new();
        attr.encode_sized(&mut buf, false);
        let got = PathAttribute::decode_sized(&mut Cursor::new(&buf), false).unwrap();
        assert_eq!(
            got.flatten_as_path().unwrap(),
            AsPath::from_u32s([7018, 23456])
        );
    }

    #[test]
    fn decode_block_parses_multiple() {
        let attrs = vec![
            PathAttribute::Origin(0),
            PathAttribute::as_path_sequence(&AsPath::from_u32s([9, 8])),
            PathAttribute::NextHop(1),
        ];
        let block = PathAttribute::encode_block(&attrs);
        let mut c = Cursor::new(&block);
        let parsed = PathAttribute::decode_block(&mut c, block.len()).unwrap();
        assert_eq!(parsed, attrs);
    }
}
