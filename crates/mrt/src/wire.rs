//! Bounds-checked byte cursor.
//!
//! `bytes::Buf` panics on overrun, which is unacceptable when parsing
//! untrusted files. [`Cursor`] wraps a byte slice with fallible reads
//! carrying a static context string, so every decode failure names the
//! field that was being parsed.

use crate::error::MrtError;

/// A fallible, bounds-checked reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all bytes are consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Take the next `n` bytes as a sub-slice.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], MrtError> {
        if self.remaining() < n {
            return Err(MrtError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Split off a child cursor over the next `n` bytes.
    pub fn sub(&mut self, n: usize, context: &'static str) -> Result<Cursor<'a>, MrtError> {
        Ok(Cursor::new(self.take(n, context)?))
    }

    /// Read a `u8`.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, MrtError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, MrtError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, MrtError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Append a big-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_advance() {
        let data = [1u8, 0, 2, 0, 0, 0, 3, 9];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u8("a").unwrap(), 1);
        assert_eq!(c.u16("b").unwrap(), 2);
        assert_eq!(c.u32("c").unwrap(), 3);
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.take(1, "d").unwrap(), &[9]);
        assert!(c.is_empty());
    }

    #[test]
    fn overrun_is_an_error_not_a_panic() {
        let mut c = Cursor::new(&[1u8]);
        assert!(matches!(
            c.u32("field"),
            Err(MrtError::Truncated { context: "field" })
        ));
        // The failed read must not consume anything.
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn sub_cursor_is_bounded() {
        let data = [1u8, 2, 3, 4];
        let mut c = Cursor::new(&data);
        let mut s = c.sub(2, "sub").unwrap();
        assert_eq!(s.u16("x").unwrap(), 0x0102);
        assert!(s.u8("y").is_err());
        assert_eq!(c.remaining(), 2);
    }

    #[test]
    fn put_helpers_are_big_endian() {
        let mut v = Vec::new();
        put_u16(&mut v, 0x0102);
        put_u32(&mut v, 0x03040506);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 6]);
    }
}
