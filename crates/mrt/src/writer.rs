//! Streaming MRT writer over any `io::Write`.

use crate::error::MrtError;
use crate::record::MrtRecord;
use std::io::Write;

/// Writes MRT records to an underlying stream.
#[derive(Debug)]
pub struct MrtWriter<W> {
    inner: W,
    records_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wrap a stream.
    pub fn new(inner: W) -> Self {
        MrtWriter {
            inner,
            records_written: 0,
        }
    }

    /// Write one record with the given timestamp.
    pub fn write_record(&mut self, timestamp: u32, record: &MrtRecord) -> Result<(), MrtError> {
        let bytes = record.encode(timestamp);
        self.inner.write_all(&bytes)?;
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flush and return the underlying stream.
    pub fn into_inner(mut self) -> Result<W, MrtError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::MrtReader;
    use crate::record::{PeerEntry, PeerIndexTable};
    use asrank_types::Asn;

    #[test]
    fn writer_reader_roundtrip() {
        let rec = MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 1,
            view_name: "view".into(),
            peers: vec![PeerEntry {
                bgp_id: 9,
                addr: 8,
                ipv6: false,
                asn: Asn(7),
            }],
        });
        let mut w = MrtWriter::new(Vec::new());
        w.write_record(42, &rec).unwrap();
        w.write_record(43, &rec).unwrap();
        assert_eq!(w.records_written(), 2);
        let bytes = w.into_inner().unwrap();

        let recs: Vec<_> = MrtReader::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(recs, vec![(42, rec.clone()), (43, rec)]);
    }
}
