//! The parallel byte-range reader must be indistinguishable from the
//! sequential streaming reader: same samples in the same order on valid
//! dumps, an error whenever the sequential reader errors on damaged ones.

use asrank_types::{Asn, AsPath, Parallelism, PathSample, PathSet};
use mrt_codec::{
    read_rib_dump, read_rib_dump_parallel, read_update_stream, read_update_stream_parallel,
    scan_record_frames, write_rib_dump, write_rib_dump_v1, write_update_stream, MrtRecord,
    DEFAULT_MAX_RECORD_LEN,
};
use proptest::prelude::*;

fn path_set(paths: Vec<Vec<u32>>) -> PathSet {
    let mut ps = PathSet::new();
    for (i, raw) in paths.into_iter().enumerate() {
        let vp = raw[0];
        ps.push(PathSample {
            vp: Asn(vp),
            prefix: asrank_types::Ipv4Prefix::new((i as u32) << 12, 20).unwrap(),
            path: AsPath::from_u32s(raw),
        });
    }
    ps
}

/// A mixed dump: v2 RIB records, appended legacy v1 records, and an
/// interleaved unknown record — everything the sequential reader accepts.
fn mixed_dump(paths: Vec<Vec<u32>>, v1_paths: Vec<Vec<u32>>) -> Vec<u8> {
    let mut buf = Vec::new();
    write_rib_dump(&path_set(paths), &mut buf, 1_600_000_000).unwrap();
    buf.extend_from_slice(
        &MrtRecord::Unknown {
            mrt_type: 99,
            subtype: 7,
            body: vec![0xde, 0xad],
        }
        .encode(3),
    );
    write_rib_dump_v1(&path_set(v1_paths), &mut buf, 900_000_000).unwrap();
    buf
}

fn samples(ps: PathSet) -> Vec<PathSample> {
    ps.into_samples()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid dumps: parallel output equals sequential output exactly —
    /// same samples, same order — at every parallelism level.
    #[test]
    fn parallel_rib_read_matches_sequential(
        paths in prop::collection::vec(prop::collection::vec(1u32..40, 2..6), 1..40),
        v1 in prop::collection::vec(prop::collection::vec(1u32..40, 2..6), 0..10),
    ) {
        let dump = mixed_dump(paths, v1);
        let seq = samples(read_rib_dump(&dump[..]).unwrap());
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let got = samples(read_rib_dump_parallel(&dump, par).unwrap());
            prop_assert_eq!(&got, &seq);
        }
    }

    /// Damaged dumps: truncation at any byte boundary must error in the
    /// parallel path whenever it errors in the sequential path (the
    /// scanner may reject strictly more prefixes of a dump than the
    /// streaming reader accepts, never fewer).
    #[test]
    fn truncated_dumps_never_diverge_to_success(
        paths in prop::collection::vec(prop::collection::vec(1u32..40, 2..6), 1..10),
        cut_pct in 0usize..100,
    ) {
        let dump = mixed_dump(paths, vec![]);
        let cut = dump.len() * cut_pct / 100;
        let seq = read_rib_dump(&dump[..cut]);
        let par = read_rib_dump_parallel(&dump[..cut], Parallelism::threads(4));
        if seq.is_err() {
            prop_assert!(par.is_err(), "sequential rejected the cut at {} but parallel accepted it", cut);
        }
        if let (Ok(a), Ok(b)) = (seq, par) {
            prop_assert_eq!(samples(a), samples(b));
        }
    }
}

#[test]
fn parallel_update_stream_matches_sequential() {
    use asrank_types::update::UpdateMessage;
    let updates = vec![
        UpdateMessage {
            vp: Asn(100),
            withdrawn: vec!["10.0.0.0/8".parse().unwrap()],
            announced: vec![
                ("11.0.0.0/8".parse().unwrap(), AsPath::from_u32s([100, 2, 3])),
                ("12.0.0.0/8".parse().unwrap(), AsPath::from_u32s([100, 5, 6])),
            ],
        },
        UpdateMessage {
            vp: Asn(200),
            withdrawn: vec![],
            announced: vec![("14.0.0.0/8".parse().unwrap(), AsPath::from_u32s([200, 9, 3]))],
        },
    ];
    let mut buf = Vec::new();
    write_update_stream(&updates, &mut buf, 77).unwrap();
    let seq = read_update_stream(&buf[..]).unwrap();
    for par in [Parallelism::sequential(), Parallelism::threads(4)] {
        assert_eq!(read_update_stream_parallel(&buf, par).unwrap(), seq);
    }
}

#[test]
fn oversized_declared_length_is_rejected_not_allocated() {
    // A frame declaring a u32::MAX body must fail in the scanner before
    // any allocation is attempted.
    let mut dump = Vec::new();
    write_rib_dump(&path_set(vec![vec![1, 2, 3]]), &mut dump, 0).unwrap();
    let base = dump.len();
    dump.extend_from_slice(&[0, 0, 0, 0, 0, 13, 0, 1, 0xff, 0xff, 0xff, 0xff]);
    assert!(scan_record_frames(&dump, DEFAULT_MAX_RECORD_LEN).is_err());
    assert!(read_rib_dump_parallel(&dump, Parallelism::threads(4)).is_err());
    // Sanity: the prefix before the bad frame still scans cleanly.
    assert!(scan_record_frames(&dump[..base], DEFAULT_MAX_RECORD_LEN).is_ok());
}

#[test]
fn frame_scanner_matches_streaming_reader_on_record_count() {
    let dump = mixed_dump(
        vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8]],
        vec![vec![9, 10]],
    );
    let frames = scan_record_frames(&dump, DEFAULT_MAX_RECORD_LEN).unwrap();
    let streamed = mrt_codec::MrtReader::new(&dump[..]).count();
    assert_eq!(frames.len(), streamed);
    assert_eq!(frames.last().unwrap().end, dump.len());
}
