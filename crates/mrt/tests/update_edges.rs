//! BGP4MP update-message edge cases: 4-byte ASNs vs `AS_TRANS`,
//! withdraw-only messages, and hostile/truncated frames surfacing typed
//! errors instead of panics.

use asrank_types::update::{PathDelta, UpdateMessage};
use asrank_types::{AsPath, Asn, Ipv4Prefix, Parallelism};
use mrt_codec::batch::{read_update_batch, UpdateBatchIter};
use mrt_codec::{read_update_stream, write_update_stream, MrtError};

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn capture(updates: &[UpdateMessage]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_update_stream(updates, &mut buf, 1_600_000_000).unwrap();
    buf
}

/// `BGP4MP_MESSAGE_AS4` carries native 4-byte ASNs: a 32-bit ASN in the
/// peer field or anywhere in the path must survive the roundtrip exactly,
/// never squashed to `AS_TRANS` the way the legacy 2-byte encodings
/// substitute it.
#[test]
fn four_byte_asns_roundtrip_without_as_trans_substitution() {
    let updates = vec![UpdateMessage {
        vp: Asn(4_200_000_001),
        withdrawn: vec![],
        announced: vec![(
            pfx("10.0.0.0/8"),
            AsPath::from_u32s([4_200_000_001, 65_536, 7018]),
        )],
    }];
    let bytes = capture(&updates);
    assert_eq!(read_update_stream(&bytes[..]).unwrap(), updates);
    let batch = read_update_batch(&bytes, Parallelism::sequential()).unwrap();
    let deltas: Vec<_> = batch.iter().cloned().collect();
    assert_eq!(
        deltas,
        vec![(
            Asn(4_200_000_001),
            pfx("10.0.0.0/8"),
            PathDelta::Announce(AsPath::from_u32s([4_200_000_001, 65_536, 7018])),
        )]
    );
}

/// A literal `AS_TRANS` (23456) in an AS4 update is an ordinary ASN —
/// decoders must not "helpfully" remap or drop it. (It shows up in real
/// tables wherever a 2-byte speaker re-exported a 4-byte path.)
#[test]
fn literal_as_trans_is_preserved_as_an_ordinary_asn() {
    let updates = vec![UpdateMessage {
        vp: Asn(100),
        withdrawn: vec![],
        announced: vec![(pfx("11.0.0.0/8"), AsPath::from_u32s([100, 23_456, 3]))],
    }];
    let bytes = capture(&updates);
    assert_eq!(read_update_stream(&bytes[..]).unwrap(), updates);
    let batch = read_update_batch(&bytes, Parallelism::sequential()).unwrap();
    assert_eq!(
        batch.iter().next().unwrap().2,
        PathDelta::Announce(AsPath::from_u32s([100, 23_456, 3]))
    );
}

/// Withdraw-only messages carry no path attributes at all; they must
/// decode and fold to pure `Withdraw` deltas.
#[test]
fn withdraw_only_messages_fold_to_withdraw_deltas() {
    let updates = vec![UpdateMessage {
        vp: Asn(4_200_000_002),
        withdrawn: vec![pfx("10.0.0.0/8"), pfx("11.0.0.0/8")],
        announced: vec![],
    }];
    let bytes = capture(&updates);
    assert_eq!(read_update_stream(&bytes[..]).unwrap(), updates);
    let batch = read_update_batch(&bytes, Parallelism::sequential()).unwrap();
    let deltas: Vec<_> = batch.iter().cloned().collect();
    assert_eq!(
        deltas,
        vec![
            (Asn(4_200_000_002), pfx("10.0.0.0/8"), PathDelta::Withdraw),
            (Asn(4_200_000_002), pfx("11.0.0.0/8"), PathDelta::Withdraw),
        ]
    );
}

fn sample_capture() -> Vec<u8> {
    capture(&[UpdateMessage {
        vp: Asn(100),
        withdrawn: vec![pfx("10.0.0.0/8")],
        announced: vec![(pfx("11.0.0.0/8"), AsPath::from_u32s([100, 2, 3]))],
    }])
}

/// Every possible truncation of a valid capture is a typed error — the
/// readers never panic and never silently return partial data.
#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = sample_capture();
    // A cut exactly on a record boundary is a legitimately shorter
    // capture; every other cut must fail with a typed error.
    let mut boundaries = vec![0usize];
    {
        let mut reader = mrt_codec::MrtReader::new(&bytes[..]);
        let mut consumed = 0usize;
        while reader.next_record().unwrap().is_some() {
            // Re-derive each record's extent from its declared length.
            let len = u32::from_be_bytes([
                bytes[consumed + 8],
                bytes[consumed + 9],
                bytes[consumed + 10],
                bytes[consumed + 11],
            ]) as usize;
            consumed += 12 + len;
            boundaries.push(consumed);
        }
    }
    for cut in 0..bytes.len() {
        if boundaries.contains(&cut) {
            assert!(read_update_batch(&bytes[..cut], Parallelism::sequential()).is_ok());
            continue;
        }
        let err = read_update_batch(&bytes[..cut], Parallelism::sequential())
            .expect_err(&format!("cut at {cut} must not decode"));
        assert!(
            matches!(err, MrtError::Truncated { .. } | MrtError::BadLength { .. }),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

/// Corruption *inside* a well-framed record — a BGP message length that
/// overruns the MRT frame — is caught by the body decoder as a typed
/// error, sequentially and via the windowed iterator.
#[test]
fn oversized_inner_bgp_length_is_a_typed_error() {
    let mut bytes = sample_capture();
    // Layout: 12-byte MRT header, 20-byte BGP4MP preamble, 16-byte
    // marker, then the u16 BGP message length at offset 48.
    bytes[48] = 0xff;
    bytes[49] = 0xff;
    assert!(read_update_batch(&bytes, Parallelism::sequential()).is_err());
    let mut iter = UpdateBatchIter::new(&bytes, 8).unwrap();
    assert!(iter.next().unwrap().is_err());
    assert!(iter.next().is_none(), "iterator poisons after a bad body");
}

/// A non-UPDATE BGP message type inside a BGP4MP record is rejected with
/// a typed error, not skipped or panicked on.
#[test]
fn non_update_message_type_is_a_typed_error() {
    let mut bytes = sample_capture();
    // BGP message type octet sits right after the u16 length at 48.
    bytes[50] = 1; // OPEN
    assert!(matches!(
        read_update_batch(&bytes, Parallelism::sequential()),
        Err(MrtError::BadValue { .. })
    ));
}

/// A corrupted BGP marker is rejected with the dedicated typed error.
#[test]
fn bad_marker_is_a_typed_error() {
    let mut bytes = sample_capture();
    bytes[32] = 0x00; // first marker byte
    assert!(matches!(
        read_update_batch(&bytes, Parallelism::sequential()),
        Err(MrtError::BadMarker)
    ));
}
