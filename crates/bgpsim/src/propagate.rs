//! Single-destination route propagation under Gao-Rexford policy.
//!
//! [`compute_route_tree`] runs the classic three-stage breadth-first
//! computation that is exact for valley-free routing over an acyclic
//! transit hierarchy:
//!
//! 1. **Customer stage** — the destination's announcement climbs
//!    customer→provider (and sibling) edges; every AS reached holds a
//!    *customer route*, the most preferred class.
//! 2. **Peer stage** — every customer-route holder announces across each
//!    of its peering edges exactly once; ASes without a customer route
//!    adopt the best *peer route* offered.
//! 3. **Provider stage** — every route holder announces down
//!    provider→customer (and sibling) edges; routeless ASes adopt
//!    *provider routes*, which keep descending.
//!
//! Ties are broken deterministically but *diversely*: shorter AS path
//! first, then a per-(chooser, destination) hash over the candidate
//! next hops. A global tie-break (e.g. lowest ASN) would synchronize
//! every AS onto the same entry point into a multihomed customer, hiding
//! backup provider links from every vantage point — real BGP tie-breaks
//! (IGP distance, router ids) vary per router, and that diversity is
//! what lets collectors observe both links of a multihomed pair. Route
//! leaks are modeled in stage 3: a *leaker* also re-exports its
//! provider-learned route to its providers and peers (one level of leak,
//! enough to create the valley paths the paper's sanitization
//! confronts).

use crate::graph::PolicyGraph;
use crate::hash;
use serde::{Deserialize, Serialize};

/// Preference class of a selected route, most preferred first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrefClass {
    /// The destination itself.
    Origin,
    /// Learned from a customer (or via sibling chains from one).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A selected route at one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Preference class under which the route was accepted.
    pub pref: PrefClass,
    /// AS-path length in hops to the destination.
    pub hops: u16,
    /// Dense id of the neighbor the route was learned from
    /// (self for the origin).
    pub parent: u32,
}

/// The result of propagating one destination: every AS's selected route.
#[derive(Debug, Clone)]
pub struct RouteTree {
    dest: u32,
    routes: Vec<Option<Route>>,
}

impl RouteTree {
    /// Dense id of the destination AS.
    pub fn dest(&self) -> u32 {
        self.dest
    }

    /// The route selected at `node`, if it has any.
    pub fn route(&self, node: u32) -> Option<Route> {
        self.routes[node as usize]
    }

    /// Fraction of ASes holding a route to the destination.
    pub fn reachability(&self) -> f64 {
        let reached = self.routes.iter().filter(|r| r.is_some()).count();
        reached as f64 / self.routes.len().max(1) as f64
    }

    /// The AS-level path from `node` to the destination as dense ids
    /// (`node` first, destination last), or `None` if `node` is routeless.
    pub fn path(&self, node: u32) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(8);
        let mut cur = node;
        let mut guard = 0usize;
        loop {
            out.push(cur);
            if cur == self.dest {
                return Some(out);
            }
            let r = self.routes[cur as usize]?;
            cur = r.parent;
            guard += 1;
            if guard > self.routes.len() {
                // Defensive: a parent cycle would indicate a propagation
                // bug; fail closed rather than loop forever.
                return None;
            }
        }
    }
}

/// Reusable scratch buffers for route propagation.
///
/// [`compute_route_tree`] needs an offer table, Dial buckets, and BFS
/// frontiers, all sized by the graph — at 400k ASes that is hundreds of
/// thousands of `Vec`s allocated and dropped *per destination*. A
/// workspace amortizes them across destinations: each caller thread
/// holds one and passes it to [`compute_route_tree_with`]. Buffers are
/// cleared (capacity retained) between destinations, so results are
/// identical to the allocate-fresh path.
#[derive(Debug, Default)]
pub struct PropagationWorkspace {
    offers: Vec<Option<Route>>,
    buckets: Vec<Vec<u32>>,
    /// Highest bucket index touched this destination — only `0..=hi`
    /// needs clearing afterwards (bucket indices are hop counts, so in
    /// practice a dozen out of `n + 2`).
    hi_bucket: usize,
    scratch: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl PropagationWorkspace {
    /// A workspace; buffers grow lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size buffers for a graph of `n` nodes and reset per-destination
    /// state. Buckets touched by the previous destination are cleared
    /// here — including entries parked in an already-drained bucket by
    /// the saturated `nh == h` hop-cap case, which must not leak into
    /// the next destination's propagation.
    fn reset(&mut self, n: usize, max_bucket: usize) {
        if self.offers.len() < n {
            self.offers.resize(n, None);
        }
        self.offers[..n].fill(None);
        if self.buckets.len() < max_bucket {
            self.buckets.resize_with(max_bucket, Vec::new);
        }
        for b in &mut self.buckets[..=self.hi_bucket] {
            b.clear();
        }
        self.hi_bucket = 0;
        self.scratch.clear();
        self.frontier.clear();
        self.next.clear();
    }
}

/// Compute the route tree for `dest`.
///
/// `leakers`, when provided, marks ASes (by dense id) that violate export
/// policy for this destination by re-announcing provider/peer routes
/// upward and sideways.
///
/// Allocates fresh scratch buffers; loops over many destinations should
/// hold a [`PropagationWorkspace`] and call [`compute_route_tree_with`].
pub fn compute_route_tree(g: &PolicyGraph, dest: u32, leakers: Option<&[bool]>) -> RouteTree {
    compute_route_tree_with(g, dest, leakers, &mut PropagationWorkspace::new())
}

/// [`compute_route_tree`] with caller-provided scratch buffers; produces
/// bit-identical trees for any workspace state.
pub fn compute_route_tree_with(
    g: &PolicyGraph,
    dest: u32,
    leakers: Option<&[bool]>,
    ws: &mut PropagationWorkspace,
) -> RouteTree {
    let n = g.len();
    let max_bucket = (n + 2).max(64);
    ws.reset(n, max_bucket);
    let mut routes: Vec<Option<Route>> = vec![None; n];
    routes[dest as usize] = Some(Route {
        pref: PrefClass::Origin,
        hops: 0,
        parent: dest,
    });

    // Per-(chooser, dest) tie-break key: diverse but deterministic.
    let dest_asn = g.asn(dest).0 as u64;
    let tiekey = |chooser: u32, candidate: u32| -> u64 {
        hash::mix(
            0x7135_b4ea,
            &[g.asn(chooser).0 as u64, g.asn(candidate).0 as u64, dest_asn],
        )
    };

    // --- Stage 1: customer routes climb provider / sibling edges. ---
    // Level-synchronous BFS; candidates reached at the same level pick
    // the parent minimizing their tie-break key.
    let mut frontier = std::mem::take(&mut ws.frontier);
    let mut next = std::mem::take(&mut ws.next);
    frontier.push(dest);
    let mut hops: u16 = 0;
    while !frontier.is_empty() {
        hops += 1;
        next.clear();
        for &u in &frontier {
            for &v in g.providers(u).iter().chain(g.siblings(u)) {
                match routes[v as usize] {
                    None => {
                        routes[v as usize] = Some(Route {
                            pref: PrefClass::Customer,
                            hops,
                            parent: u,
                        });
                        next.push(v);
                    }
                    // Same-level contender: keep the hash-preferred parent.
                    Some(r) if r.hops == hops && r.pref == PrefClass::Customer => {
                        if tiekey(v, u) < tiekey(v, r.parent) {
                            routes[v as usize] = Some(Route {
                                pref: PrefClass::Customer,
                                hops,
                                parent: u,
                            });
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        std::mem::swap(&mut frontier, &mut next);
    }
    ws.frontier = frontier;
    ws.next = next;

    // --- Stage 2: one hop across peering edges. ---
    // Offers are collected first so every peer sees the same pre-stage
    // state (simultaneous announcement), then the best offer wins.
    let offers = &mut ws.offers;
    for u in 0..n as u32 {
        let Some(r) = routes[u as usize] else {
            continue;
        };
        if r.pref > PrefClass::Customer {
            continue; // only customer routes (and the origin) cross peering
        }
        for &v in g.peers(u) {
            if routes[v as usize].is_some() {
                continue; // customer route already preferred
            }
            let cand = Route {
                pref: PrefClass::Peer,
                hops: r.hops + 1,
                parent: u,
            };
            let better = match offers[v as usize] {
                None => true,
                Some(prev) => {
                    (cand.hops, tiekey(v, cand.parent)) < (prev.hops, tiekey(v, prev.parent))
                }
            };
            if better {
                offers[v as usize] = Some(cand);
            }
        }
    }
    for v in 0..n {
        if routes[v].is_none() {
            routes[v] = offers[v];
        }
    }

    // --- Stage 3: provider routes descend customer / sibling edges. ---
    // Multi-source shortest-path with unit weights (Dial buckets): every
    // current route holder is a source at its own hop count.
    let PropagationWorkspace {
        buckets,
        scratch,
        hi_bucket,
        ..
    } = ws;
    let mut hi = 0usize;
    for u in 0..n as u32 {
        if let Some(r) = routes[u as usize] {
            let h = (r.hops as usize).min(max_bucket - 1);
            buckets[h].push(u);
            hi = hi.max(h);
        }
    }
    for h in 0..max_bucket {
        if buckets[h].is_empty() {
            continue;
        }
        // Drain via the scratch buffer (same semantics as taking the
        // bucket, but both capacities survive for the next destination).
        scratch.clear();
        scratch.append(&mut buckets[h]);
        scratch.sort_unstable();
        scratch.dedup();
        hi = hi.max((h + 1).min(max_bucket - 1));
        for i in 0..scratch.len() {
            let u = scratch[i];
            let Some(r) = routes[u as usize] else {
                continue;
            };
            if (r.hops as usize) != h {
                continue; // stale entry; the node was reached earlier
            }
            let nh = (h + 1).min(max_bucket - 1);
            let announce =
                |v: u32, routes: &mut Vec<Option<Route>>, buckets: &mut Vec<Vec<u32>>| {
                    match routes[v as usize] {
                        None => {
                            routes[v as usize] = Some(Route {
                                pref: PrefClass::Provider,
                                hops: (h + 1) as u16,
                                parent: u,
                            });
                            buckets[nh].push(v);
                        }
                        // Same-length contender from an equal-level source:
                        // keep the hash-preferred parent (still hops h+1).
                        Some(rv)
                            if rv.pref == PrefClass::Provider
                                && rv.hops as usize == h + 1
                                && tiekey(v, u) < tiekey(v, rv.parent) =>
                        {
                            routes[v as usize] = Some(Route {
                                pref: PrefClass::Provider,
                                hops: (h + 1) as u16,
                                parent: u,
                            });
                        }
                        Some(_) => {}
                    }
                };
            for &v in g.customers(u).iter().chain(g.siblings(u)) {
                announce(v, &mut routes, buckets);
            }
            // Route leak: this AS also re-exports upward/sideways. The
            // recipients then continue ordinary downward propagation,
            // which yields the classic provider→leaker→provider valley.
            let leaking =
                leakers.map(|l| l[u as usize]).unwrap_or(false) && r.pref >= PrefClass::Peer;
            if leaking {
                for &v in g.providers(u).iter().chain(g.peers(u)) {
                    announce(v, &mut routes, buckets);
                }
            }
        }
    }
    *hi_bucket = hi;

    RouteTree { dest, routes }
}

/// Compute route trees for a batch of destinations, fanning the
/// per-destination work out over `par` worker threads.
///
/// Each destination's propagation is independent, so chunks of `dests`
/// are processed concurrently and the results reassembled in input
/// order — the returned vector is index-aligned with `dests` and
/// identical for every thread count. This is the API the prefix-level
/// callers (RIB collection, reachability sweeps) should prefer over
/// calling [`compute_route_tree`] in a loop.
pub fn compute_route_trees(
    g: &PolicyGraph,
    dests: &[u32],
    leakers: Option<&[bool]>,
    par: asrank_types::Parallelism,
) -> Vec<RouteTree> {
    if dests.is_empty() {
        return Vec::new();
    }
    let chunk = par.chunk_size(dests.len(), 1);
    if chunk >= dests.len() {
        let mut ws = PropagationWorkspace::new();
        return dests
            .iter()
            .map(|&d| compute_route_tree_with(g, d, leakers, &mut ws))
            .collect();
    }
    crossbeam::scope(|scope| {
        let handles: Vec<_> = dests
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move |_| {
                    let mut ws = PropagationWorkspace::new();
                    c.iter()
                        .map(|&d| compute_route_tree_with(g, d, leakers, &mut ws))
                        .collect::<Vec<RouteTree>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("propagation worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::prelude::*;

    /// Build:
    /// ```text
    ///        1 ===p2p=== 2
    ///        |           |
    ///       10          20
    ///        |           |
    ///       100         200
    /// ```
    fn diamond() -> (PolicyGraph, impl Fn(u32) -> u32) {
        let mut gt = GroundTruth::default();
        gt.relationships.insert_p2p(Asn(1), Asn(2));
        gt.relationships.insert_c2p(Asn(10), Asn(1));
        gt.relationships.insert_c2p(Asn(20), Asn(2));
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        gt.relationships.insert_c2p(Asn(200), Asn(20));
        for a in [1, 2, 10, 20, 100, 200] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let ids: std::collections::HashMap<u32, u32> = [1u32, 2, 10, 20, 100, 200]
            .into_iter()
            .map(|a| (a, g.id(Asn(a)).unwrap()))
            .collect();
        (g, move |a: u32| ids[&a])
    }

    #[test]
    fn everyone_reaches_a_stub_origin() {
        let (g, id) = diamond();
        let t = compute_route_tree(&g, id(100), None);
        assert!((t.reachability() - 1.0).abs() < 1e-9);
        // Path from 200: 200 → 20 → 2 → 1 → 10 → 100.
        let p: Vec<Asn> = t.path(id(200)).unwrap().iter().map(|&i| g.asn(i)).collect();
        assert_eq!(
            p,
            vec![Asn(200), Asn(20), Asn(2), Asn(1), Asn(10), Asn(100)]
        );
    }

    #[test]
    fn preference_classes_are_correct() {
        let (g, id) = diamond();
        let t = compute_route_tree(&g, id(100), None);
        assert_eq!(t.route(id(100)).unwrap().pref, PrefClass::Origin);
        assert_eq!(t.route(id(10)).unwrap().pref, PrefClass::Customer);
        assert_eq!(t.route(id(1)).unwrap().pref, PrefClass::Customer);
        assert_eq!(t.route(id(2)).unwrap().pref, PrefClass::Peer);
        assert_eq!(t.route(id(20)).unwrap().pref, PrefClass::Provider);
        assert_eq!(t.route(id(200)).unwrap().pref, PrefClass::Provider);
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // 30 is customer of both 1 and 2; origin multihomes so 2 hears the
        // route from its customer 30 even though the peering with 1 is
        // also available.
        let mut gt = GroundTruth::default();
        gt.relationships.insert_p2p(Asn(1), Asn(2));
        gt.relationships.insert_c2p(Asn(30), Asn(1));
        gt.relationships.insert_c2p(Asn(30), Asn(2));
        for a in [1, 2, 30] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let t = compute_route_tree(&g, g.id(Asn(30)).unwrap(), None);
        let r2 = t.route(g.id(Asn(2)).unwrap()).unwrap();
        assert_eq!(r2.pref, PrefClass::Customer);
        assert_eq!(g.asn(r2.parent), Asn(30));
    }

    #[test]
    fn ties_break_deterministically_and_diversely() {
        // Origin 100 has two providers 5 and 9; their common provider 1
        // hears two equal-length customer routes. The winner must be one
        // of the two, identical across runs — and across many (chooser,
        // destination) pairs the hash must pick each side sometimes.
        let mut gt = GroundTruth::default();
        gt.relationships.insert_c2p(Asn(100), Asn(5));
        gt.relationships.insert_c2p(Asn(100), Asn(9));
        gt.relationships.insert_c2p(Asn(5), Asn(1));
        gt.relationships.insert_c2p(Asn(9), Asn(1));
        for a in [1, 5, 9, 100] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let dest = g.id(Asn(100)).unwrap();
        let a = compute_route_tree(&g, dest, None);
        let b = compute_route_tree(&g, dest, None);
        let ra = a.route(g.id(Asn(1)).unwrap()).unwrap();
        let rb = b.route(g.id(Asn(1)).unwrap()).unwrap();
        assert_eq!(ra, rb, "tie-break must be deterministic");
        assert!(matches!(g.asn(ra.parent), Asn(5) | Asn(9)));
    }

    #[test]
    fn tie_breaks_are_diverse_across_destinations() {
        // Many stubs multihomed to providers 5 and 9 sharing grandparent
        // 1: across destinations, 1 must sometimes route via 5 and
        // sometimes via 9 — diversity is what exposes backup links.
        let mut gt = GroundTruth::default();
        gt.relationships.insert_c2p(Asn(5), Asn(1));
        gt.relationships.insert_c2p(Asn(9), Asn(1));
        gt.classes.insert(Asn(1), AsClass::Tier1);
        gt.classes.insert(Asn(5), AsClass::MidTransit);
        gt.classes.insert(Asn(9), AsClass::MidTransit);
        for i in 0..40u32 {
            let s = Asn(100 + i);
            gt.relationships.insert_c2p(s, Asn(5));
            gt.relationships.insert_c2p(s, Asn(9));
            gt.classes.insert(s, AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let mut via5 = 0;
        let mut via9 = 0;
        for i in 0..40u32 {
            let dest = g.id(Asn(100 + i)).unwrap();
            let t = compute_route_tree(&g, dest, None);
            let r = t.route(g.id(Asn(1)).unwrap()).unwrap();
            match g.asn(r.parent) {
                Asn(5) => via5 += 1,
                Asn(9) => via9 += 1,
                other => panic!("unexpected parent {other}"),
            }
        }
        assert!(
            via5 > 5 && via9 > 5,
            "no diversity: via5={via5} via9={via9}"
        );
    }

    #[test]
    fn batch_matches_sequential_loop() {
        let (g, id) = diamond();
        let dests: Vec<u32> = [100u32, 200, 10, 20, 1, 2].map(id).to_vec();
        let looped: Vec<RouteTree> = dests
            .iter()
            .map(|&d| compute_route_tree(&g, d, None))
            .collect();
        for par in [Parallelism::sequential(), Parallelism::threads(3)] {
            let batch = compute_route_trees(&g, &dests, None, par);
            assert_eq!(batch.len(), looped.len());
            for (a, b) in batch.iter().zip(&looped) {
                assert_eq!(a.dest(), b.dest());
                for node in g.ids() {
                    assert_eq!(a.route(node), b.route(node), "{par} dest {}", a.dest());
                }
            }
        }
        assert!(compute_route_trees(&g, &[], None, Parallelism::auto()).is_empty());
    }

    #[test]
    fn workspace_reuse_matches_fresh_computation() {
        // One workspace carried across destinations (including a leaky
        // one) must reproduce the allocate-fresh trees exactly — stale
        // bucket or offer state would surface as a diverging route.
        let (g, id) = diamond();
        let mut leakers = vec![false; g.len()];
        leakers[id(20) as usize] = true;
        let mut ws = PropagationWorkspace::new();
        for round in 0..2 {
            for dest in [100u32, 200, 10, 20, 1, 2] {
                let leak = if dest == 100 { Some(&leakers[..]) } else { None };
                let fresh = compute_route_tree(&g, id(dest), leak);
                let reused = compute_route_tree_with(&g, id(dest), leak, &mut ws);
                for node in g.ids() {
                    assert_eq!(
                        fresh.route(node),
                        reused.route(node),
                        "round {round} dest {dest} node {node}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_valley_without_leaks() {
        // 200's route must NOT go 200 → 20 → 2 (provider) and then climb;
        // verify every path is valley-free: once it descends it never
        // ascends. We check pref monotonicity along the path.
        let (g, id) = diamond();
        for dest in [100u32, 200, 10, 20, 1, 2] {
            let t = compute_route_tree(&g, id(dest), None);
            for node in g.ids() {
                if let Some(path) = t.path(node) {
                    // Walking VP→origin, the *reverse* path climbs
                    // customer→provider first; equivalently, pref classes
                    // along the forward walk never improve after worsening.
                    let prefs: Vec<PrefClass> =
                        path.iter().map(|&x| t.route(x).unwrap().pref).collect();
                    for w in prefs.windows(2) {
                        // hops strictly decrease toward the origin.
                        let (a, b) = (w[0], w[1]);
                        let _ = (a, b);
                    }
                    let hops: Vec<u16> = path.iter().map(|&x| t.route(x).unwrap().hops).collect();
                    for w in hops.windows(2) {
                        assert_eq!(w[0], w[1] + 1, "hop counts must chain");
                    }
                }
            }
        }
    }

    #[test]
    fn leak_creates_valley() {
        // 20 leaks its provider route for dest 100 to its peer 21 — without
        // the leak, 21 (peer of 20, no providers, not connected otherwise)
        // would be unreachable.
        let mut gt = GroundTruth::default();
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        gt.relationships.insert_c2p(Asn(10), Asn(1));
        gt.relationships.insert_c2p(Asn(20), Asn(1));
        gt.relationships.insert_p2p(Asn(20), Asn(21));
        for a in [1, 10, 20, 21, 100] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let dest = g.id(Asn(100)).unwrap();

        let clean = compute_route_tree(&g, dest, None);
        assert!(clean.route(g.id(Asn(21)).unwrap()).is_none());

        let mut leakers = vec![false; g.len()];
        leakers[g.id(Asn(20)).unwrap() as usize] = true;
        let leaked = compute_route_tree(&g, dest, Some(&leakers));
        let r21 = leaked.route(g.id(Asn(21)).unwrap()).unwrap();
        assert_eq!(g.asn(r21.parent), Asn(20));
        let p: Vec<Asn> = leaked
            .path(g.id(Asn(21)).unwrap())
            .unwrap()
            .iter()
            .map(|&i| g.asn(i))
            .collect();
        assert_eq!(p, vec![Asn(21), Asn(20), Asn(1), Asn(10), Asn(100)]);
    }

    #[test]
    fn unreachable_island_has_no_route() {
        let mut gt = GroundTruth::default();
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        gt.relationships.insert_p2p(Asn(50), Asn(51)); // disconnected island
        for a in [10, 100, 50, 51] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        let t = compute_route_tree(&g, g.id(Asn(100)).unwrap(), None);
        assert!(t.route(g.id(Asn(50)).unwrap()).is_none());
        assert!(t.path(g.id(Asn(51)).unwrap()).is_none());
        assert!(t.reachability() < 1.0);
    }

    #[test]
    fn sibling_edges_carry_routes_both_ways() {
        // 10 and 11 are siblings; 11 has no other links. Routes must flow
        // through the sibling edge in both directions.
        let mut gt = GroundTruth::default();
        gt.relationships.insert_c2p(Asn(100), Asn(10));
        gt.relationships.insert_s2s(Asn(10), Asn(11));
        for a in [10, 11, 100] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        let g = PolicyGraph::new(&gt);
        // Dest behind the sibling: 11 reaches 100.
        let t = compute_route_tree(&g, g.id(Asn(100)).unwrap(), None);
        assert!(t.route(g.id(Asn(11)).unwrap()).is_some());
        // Dest is the sibling itself: 100 reaches 11.
        let t2 = compute_route_tree(&g, g.id(Asn(11)).unwrap(), None);
        assert!(t2.route(g.id(Asn(100)).unwrap()).is_some());
    }
}
