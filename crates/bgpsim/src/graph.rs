//! Compact policy graph.
//!
//! [`PolicyGraph`] compiles a [`GroundTruth`] into dense-index adjacency
//! vectors so the per-destination propagation (the hot loop of the whole
//! reproduction) touches flat memory only.

use asrank_types::prelude::*;
use std::collections::HashMap;

/// A compiled AS graph with relationship-typed adjacency lists.
///
/// All adjacency lists are sorted by neighbor ASN so iteration order (and
/// therefore deterministic tie-breaking) is stable.
#[derive(Debug, Clone)]
pub struct PolicyGraph {
    interner: AsnInterner,
    /// Per node: dense ids of providers (edges this node's routes climb).
    providers: Vec<Vec<u32>>,
    /// Per node: dense ids of customers.
    customers: Vec<Vec<u32>>,
    /// Per node: dense ids of peers.
    peers: Vec<Vec<u32>>,
    /// Per node: dense ids of siblings.
    siblings: Vec<Vec<u32>>,
    /// Map of p2p links that ride an IXP fabric → route-server ASN.
    ixp_links: HashMap<(u32, u32), Asn>,
}

impl PolicyGraph {
    /// Compile a ground-truth topology.
    pub fn new(gt: &GroundTruth) -> Self {
        Self::with_ixp_links(gt, &[])
    }

    /// Compile a topology, additionally tagging the given IXP route-server
    /// fabrics: `fabrics` maps each route server to its member list; any
    /// p2p link between two members is recorded as riding that fabric
    /// (used for route-server ASN insertion artifacts).
    pub fn with_ixp_links(gt: &GroundTruth, fabrics: &[(Asn, Vec<Asn>)]) -> Self {
        let mut interner = AsnInterner::new();
        // Intern in sorted ASN order so dense ids are reproducible.
        let mut ases: Vec<Asn> = gt.classes.keys().copied().collect();
        ases.sort();
        for &a in &ases {
            interner.intern(a);
        }
        // Links may mention ASes absent from `classes` (defensive).
        let mut link_ases: Vec<Asn> = gt.relationships.ases().collect();
        link_ases.sort();
        for a in link_ases {
            interner.intern(a);
        }

        let n = interner.len();
        let mut providers = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        let mut siblings = vec![Vec::new(); n];

        for (link, rel) in gt.relationships.iter() {
            let ia = interner.get(link.a).expect("interned");
            let ib = interner.get(link.b).expect("interned");
            match rel {
                LinkRel::AC2pB => {
                    // a is customer of b.
                    providers[ia as usize].push(ib);
                    customers[ib as usize].push(ia);
                }
                LinkRel::AP2cB => {
                    providers[ib as usize].push(ia);
                    customers[ia as usize].push(ib);
                }
                LinkRel::P2p => {
                    peers[ia as usize].push(ib);
                    peers[ib as usize].push(ia);
                }
                LinkRel::S2s => {
                    siblings[ia as usize].push(ib);
                    siblings[ib as usize].push(ia);
                }
            }
        }
        let by_asn = |interner: &AsnInterner, v: &mut Vec<u32>| {
            v.sort_by_key(|&i| interner.resolve(i));
        };
        for v in providers
            .iter_mut()
            .chain(&mut customers)
            .chain(&mut peers)
            .chain(&mut siblings)
        {
            by_asn(&interner, v);
        }

        let mut ixp_links = HashMap::new();
        for (rs, members) in fabrics {
            let ids: Vec<u32> = members.iter().filter_map(|m| interner.get(*m)).collect();
            for (i, &x) in ids.iter().enumerate() {
                for &y in &ids[i + 1..] {
                    let key = if x < y { (x, y) } else { (y, x) };
                    // Only tag pairs that actually peer.
                    if peers[x as usize].contains(&y) {
                        ixp_links.insert(key, *rs);
                    }
                }
            }
        }

        PolicyGraph {
            interner,
            providers,
            customers,
            peers,
            siblings,
            ixp_links,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Dense id of `asn`, if present.
    pub fn id(&self, asn: Asn) -> Option<u32> {
        self.interner.get(asn)
    }

    /// ASN behind dense id `id`.
    pub fn asn(&self, id: u32) -> Asn {
        self.interner.resolve(id)
    }

    /// Providers of node `id`.
    pub fn providers(&self, id: u32) -> &[u32] {
        &self.providers[id as usize]
    }

    /// Customers of node `id`.
    pub fn customers(&self, id: u32) -> &[u32] {
        &self.customers[id as usize]
    }

    /// Peers of node `id`.
    pub fn peers(&self, id: u32) -> &[u32] {
        &self.peers[id as usize]
    }

    /// Siblings of node `id`.
    pub fn siblings(&self, id: u32) -> &[u32] {
        &self.siblings[id as usize]
    }

    /// The route server whose fabric carries the `x`–`y` peering, if any.
    pub fn ixp_route_server(&self, x: u32, y: u32) -> Option<Asn> {
        let key = if x < y { (x, y) } else { (y, x) };
        self.ixp_links.get(&key).copied()
    }

    /// Iterate over all dense ids.
    pub fn ids(&self) -> impl Iterator<Item = u32> {
        0..self.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gt() -> GroundTruth {
        let mut gt = GroundTruth::default();
        gt.relationships.insert_p2p(Asn(1), Asn(2));
        gt.relationships.insert_c2p(Asn(10), Asn(1));
        gt.relationships.insert_c2p(Asn(20), Asn(2));
        gt.relationships.insert_s2s(Asn(10), Asn(20));
        for a in [1, 2, 10, 20] {
            gt.classes.insert(Asn(a), AsClass::Stub);
        }
        gt
    }

    #[test]
    fn adjacency_compiles_correctly() {
        let gt = tiny_gt();
        let g = PolicyGraph::new(&gt);
        assert_eq!(g.len(), 4);
        let id = |a: u32| g.id(Asn(a)).unwrap();
        assert_eq!(g.providers(id(10)), &[id(1)]);
        assert_eq!(g.customers(id(1)), &[id(10)]);
        assert_eq!(g.peers(id(1)), &[id(2)]);
        assert_eq!(g.siblings(id(10)), &[id(20)]);
        assert!(g.providers(id(1)).is_empty());
    }

    #[test]
    fn ixp_tagging_only_marks_peering_members() {
        let gt = tiny_gt();
        let fabrics = vec![(Asn(900), vec![Asn(1), Asn(2), Asn(10)])];
        let g = PolicyGraph::with_ixp_links(&gt, &fabrics);
        let id = |a: u32| g.id(Asn(a)).unwrap();
        // 1-2 peer and are both members → tagged.
        assert_eq!(g.ixp_route_server(id(1), id(2)), Some(Asn(900)));
        assert_eq!(g.ixp_route_server(id(2), id(1)), Some(Asn(900)));
        // 1-10 is c2p, not peering → untagged even though both are members.
        assert_eq!(g.ixp_route_server(id(1), id(10)), None);
    }

    #[test]
    fn dense_ids_follow_sorted_asns() {
        let gt = tiny_gt();
        let g = PolicyGraph::new(&gt);
        // Sorted ASNs: 1, 2, 10, 20 → ids 0..4.
        assert_eq!(g.asn(0), Asn(1));
        assert_eq!(g.asn(3), Asn(20));
    }
}
