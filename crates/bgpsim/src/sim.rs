//! Simulation orchestration: propagate every destination, collect RIBs at
//! the vantage points, and assemble the [`PathSet`] the inference pipeline
//! consumes.

use crate::anomaly::{emit_path, AnomalyConfig, AnomalyStats};
use crate::collector::{select_vps, VantagePoint, VpSelection};
use crate::graph::PolicyGraph;
use crate::hash;
use crate::propagate::{compute_route_tree_with, PropagationWorkspace};
use as_topology_gen::GeneratedTopology;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// How to choose vantage points.
    pub vp_selection: VpSelection,
    /// Fraction of VPs exporting full tables (paper: 116/315 ≈ 0.37).
    pub full_feed_fraction: f64,
    /// Artifact injection.
    pub anomalies: AnomalyConfig,
    /// Upper bound on the number of origin ASes to propagate
    /// (`None` = all). Sampling keeps huge topologies tractable while
    /// preserving path structure; origins are chosen deterministically.
    pub destination_sample: Option<usize>,
    /// Upper bound on retained RIB entries per vantage point (`None` =
    /// unbounded). Applied in destination order during reassembly, so
    /// the retained set is identical for every thread count. At the
    /// 400k-AS tier an unbounded collection holds millions of cloned
    /// paths; the cap keeps peak RSS proportional to `vps × cap`
    /// instead of `vps × destinations × prefixes`.
    #[serde(default)]
    pub rib_cap_per_vp: Option<usize>,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
    /// Master seed for VP choice, feeds, and artifacts.
    pub seed: u64,
}

impl SimConfig {
    /// Sensible defaults: 30 degree-biased VPs, 40 % full feeds, clean
    /// paths, all destinations, all cores.
    pub fn defaults(seed: u64) -> Self {
        SimConfig {
            vp_selection: VpSelection::Count(30),
            full_feed_fraction: 0.4,
            anomalies: AnomalyConfig::none(),
            destination_sample: None,
            rib_cap_per_vp: None,
            threads: 0,
            seed,
        }
    }

    /// Paper-scale collection: 315 VPs with the 2013 full-feed share.
    pub fn paper_scale(seed: u64) -> Self {
        SimConfig {
            vp_selection: VpSelection::Count(315),
            full_feed_fraction: 116.0 / 315.0,
            anomalies: AnomalyConfig::none(),
            destination_sample: None,
            rib_cap_per_vp: None,
            threads: 0,
            seed,
        }
    }
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Destinations (origin ASes) propagated.
    pub destinations: usize,
    /// (VP, destination) pairs with no route at the VP.
    pub unreachable_pairs: u64,
    /// Artifact counters.
    pub anomalies: AnomalyStats,
}

/// Output of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The observed paths — input for every inference algorithm.
    pub paths: PathSet,
    /// The vantage points used.
    pub vps: Vec<VantagePoint>,
    /// Run statistics.
    pub stats: SimStats,
}

/// Simulate BGP over a generated topology and collect RIBs.
///
/// Deterministic for a given `(topology, config)`: destination-level work
/// is parallelized with `crossbeam`, but all random decisions are pure
/// functions of the seed, and the output `PathSet` is assembled in
/// destination order regardless of thread interleaving.
pub fn simulate(topo: &GeneratedTopology, config: &SimConfig) -> SimOutput {
    let fabrics: Vec<(Asn, Vec<Asn>)> = topo
        .ixps
        .iter()
        .map(|ixp| (ixp.route_server, ixp.members.clone()))
        .collect();
    let g = PolicyGraph::with_ixp_links(&topo.ground_truth, &fabrics);
    let vps = select_vps(
        &g,
        &config.vp_selection,
        config.full_feed_fraction,
        config.seed,
    );

    // Destinations: every AS that originates at least one prefix.
    let mut origins: Vec<Asn> = topo
        .ground_truth
        .prefixes
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&a, _)| a)
        .collect();
    origins.sort();
    if let Some(cap) = config.destination_sample {
        if cap < origins.len() {
            // Deterministic thinning: keep a stable spread across the list.
            let step = origins.len() as f64 / cap as f64;
            origins = (0..cap)
                .map(|i| origins[(i as f64 * step) as usize])
                .collect();
        }
    }

    let vp_ids: Vec<(usize, u32)> = vps
        .iter()
        .enumerate()
        .filter_map(|(i, vp)| g.id(vp.asn).map(|id| (i, id)))
        .collect();

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let chunk = origins.len().div_ceil(threads.max(1)).max(1);

    // Each worker produces (chunk_index, samples, stats); results are
    // reassembled in order for determinism.
    let chunks: Vec<&[Asn]> = origins.chunks(chunk).collect();
    let mut per_chunk: Vec<(Vec<PathSample>, SimStats)> = Vec::with_capacity(chunks.len());

    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|dests| {
                let g = &g;
                let vps = &vps;
                let vp_ids = &vp_ids;
                scope.spawn(move |_| run_chunk(g, topo, vps, vp_ids, dests, config))
            })
            .collect();
        for h in handles {
            per_chunk.push(h.join().expect("simulation worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let mut paths = PathSet::new();
    let mut stats = SimStats::default();
    let mut per_vp: std::collections::HashMap<Asn, usize> = std::collections::HashMap::new();
    for (samples, s) in per_chunk {
        for sample in samples {
            if let Some(cap) = config.rib_cap_per_vp {
                let held = per_vp.entry(sample.vp).or_insert(0);
                if *held >= cap {
                    continue;
                }
                *held += 1;
            }
            paths.push(sample);
        }
        stats.destinations += s.destinations;
        stats.unreachable_pairs += s.unreachable_pairs;
        stats.anomalies.merge(&s.anomalies);
    }

    SimOutput { paths, vps, stats }
}

/// Propagate one chunk of destinations and emit VP observations.
fn run_chunk(
    g: &PolicyGraph,
    topo: &GeneratedTopology,
    vps: &[VantagePoint],
    vp_ids: &[(usize, u32)],
    dests: &[Asn],
    config: &SimConfig,
) -> (Vec<PathSample>, SimStats) {
    let mut samples = Vec::new();
    let mut stats = SimStats::default();
    let leak_on = config.anomalies.leak_prob > 0.0;
    let mut leakers: Vec<bool> = vec![false; g.len()];
    let mut ws = PropagationWorkspace::new();

    for &dest_asn in dests {
        let Some(dest) = g.id(dest_asn) else { continue };
        stats.destinations += 1;

        let leak_slice = if leak_on {
            let mut any = false;
            for id in g.ids() {
                let l = hash::chance(
                    config.seed,
                    &[g.asn(id).0 as u64, dest_asn.0 as u64, 0x1ea4],
                    config.anomalies.leak_prob,
                );
                leakers[id as usize] = l;
                any |= l;
            }
            if any {
                stats.anomalies.leak_destinations += 1;
            }
            Some(leakers.as_slice())
        } else {
            None
        };

        let tree = compute_route_tree_with(g, dest, leak_slice, &mut ws);
        let prefixes = &topo.ground_truth.prefixes[&dest_asn];

        for &(vp_idx, vp_id) in vp_ids {
            let vp = &vps[vp_idx];
            let Some(ids) = tree.path(vp_id) else {
                stats.unreachable_pairs += 1;
                continue;
            };
            let (asns, poisoned, prepended, rs) =
                emit_path(g, &ids, dest_asn, &config.anomalies, config.seed);
            if poisoned {
                stats.anomalies.poisoned_paths += 1;
            }
            if prepended {
                stats.anomalies.prepended_paths += 1;
            }
            if rs {
                stats.anomalies.rs_inserted_paths += 1;
            }
            let path = AsPath(asns);
            for &prefix in prefixes {
                // Partial feeds: deterministically include a fraction of
                // prefixes, keyed by (vp, prefix).
                if !vp.full_feed {
                    let include = hash::chance(
                        config.seed,
                        &[vp.asn.0 as u64, prefix.network() as u64, 0xfeed],
                        vp.feed_fraction,
                    );
                    if !include {
                        continue;
                    }
                }
                samples.push(PathSample {
                    vp: vp.asn,
                    prefix,
                    path: path.clone(),
                });
            }
        }
    }
    (samples, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology_gen::{generate, TopologyConfig};

    fn tiny_sim(seed: u64) -> (GeneratedTopology, SimOutput) {
        let topo = generate(&TopologyConfig::tiny(), seed);
        let mut cfg = SimConfig::defaults(seed);
        cfg.vp_selection = VpSelection::Count(8);
        cfg.full_feed_fraction = 1.0;
        cfg.threads = 2;
        let out = simulate(&topo, &cfg);
        (topo, out)
    }

    #[test]
    fn produces_paths_for_every_destination() {
        let (topo, out) = tiny_sim(1);
        assert!(out.stats.destinations > 0);
        // Every originated prefix should be visible from full-feed VPs.
        let seen = out.paths.prefixes();
        let expected = topo.ground_truth.prefix_count();
        assert!(
            seen.len() as f64 > 0.95 * expected as f64,
            "saw {} of {expected} prefixes",
            seen.len()
        );
    }

    #[test]
    fn paths_start_at_vp_and_end_at_origin() {
        let (topo, out) = tiny_sim(2);
        for s in out.paths.iter() {
            assert_eq!(s.path.head(), Some(s.vp), "path must start at the VP");
            let origin = s.path.origin().unwrap();
            let originated = topo
                .ground_truth
                .prefixes
                .get(&origin)
                .map(|v| v.contains(&s.prefix))
                .unwrap_or(false);
            assert!(originated, "{origin} does not originate {}", s.prefix);
        }
    }

    #[test]
    fn clean_paths_are_valley_free_and_loop_free() {
        let (topo, out) = tiny_sim(3);
        let rels = &topo.ground_truth.relationships;
        for s in out.paths.iter() {
            assert!(!s.path.has_loop(), "loop in {}", s.path);
            // Valley-free check: walking origin→VP, once we step down
            // (provider→customer) or sideways we may never step up again.
            // Equivalently walking VP→origin: pattern is up* peer? down*.
            let hops: Vec<Asn> = s.path.compress_prepending().0;
            let mut phase = 0; // 0 = ascending (c2p), 1 = post-peak
            let mut peer_used = 0;
            for w in hops.windows(2) {
                let o = rels
                    .orientation(w[0], w[1])
                    .unwrap_or_else(|| panic!("unknown link {}-{} in {}", w[0], w[1], s.path));
                match o {
                    // Sibling hops are transparent: allowed in any phase
                    // (Gao's valley-free definition).
                    Orientation::Sibling => {}
                    Orientation::Provider => {
                        assert_eq!(phase, 0, "ascent after descent in {}", s.path);
                    }
                    Orientation::Peer => {
                        assert_eq!(phase, 0, "peering after descent in {}", s.path);
                        peer_used += 1;
                        phase = 1;
                    }
                    Orientation::Customer => {
                        phase = 1;
                    }
                }
            }
            assert!(peer_used <= 1, "two peering hops in {}", s.path);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let topo = generate(&TopologyConfig::tiny(), 5);
        let mut c1 = SimConfig::defaults(5);
        c1.threads = 1;
        c1.vp_selection = VpSelection::Count(5);
        let mut c4 = c1.clone();
        c4.threads = 4;
        let a = simulate(&topo, &c1);
        let b = simulate(&topo, &c4);
        let pa: Vec<_> = a.paths.iter().cloned().collect();
        let pb: Vec<_> = b.paths.iter().cloned().collect();
        assert_eq!(pa.len(), pb.len());
        // Order-insensitive equality (chunk boundaries differ).
        let sa: std::collections::HashSet<_> = pa.into_iter().collect();
        let sb: std::collections::HashSet<_> = pb.into_iter().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn partial_feeds_see_fewer_prefixes() {
        let topo = generate(&TopologyConfig::tiny(), 7);
        let mut cfg = SimConfig::defaults(7);
        cfg.vp_selection = VpSelection::Count(10);
        cfg.full_feed_fraction = 0.0; // all partial
        let out = simulate(&topo, &cfg);
        let total = topo.ground_truth.prefix_count();
        for (_vp, n) in out.paths.prefixes_per_vp() {
            assert!(
                (n as f64) < 0.8 * total as f64,
                "partial feed saw {n}/{total}"
            );
        }
    }

    #[test]
    fn destination_sampling_caps_work() {
        let topo = generate(&TopologyConfig::tiny(), 9);
        let mut cfg = SimConfig::defaults(9);
        cfg.destination_sample = Some(10);
        let out = simulate(&topo, &cfg);
        assert_eq!(out.stats.destinations, 10);
    }

    #[test]
    fn rib_cap_bounds_per_vp_retention_deterministically() {
        let topo = generate(&TopologyConfig::tiny(), 21);
        let mut cfg = SimConfig::defaults(21);
        cfg.vp_selection = VpSelection::Count(6);
        cfg.full_feed_fraction = 1.0;
        let uncapped = simulate(&topo, &cfg);
        let max_held = uncapped
            .paths
            .prefixes_per_vp()
            .into_iter()
            .map(|(_, n)| n)
            .max()
            .unwrap();
        let cap = max_held / 2;
        cfg.rib_cap_per_vp = Some(cap);
        cfg.threads = 1;
        let capped1 = simulate(&topo, &cfg);
        for (vp, _) in capped1.paths.prefixes_per_vp() {
            let held = capped1.paths.iter().filter(|s| s.vp == vp).count();
            assert!(held <= cap, "vp {vp} holds {held} > cap {cap}");
        }
        // The retained set must not depend on worker count.
        cfg.threads = 4;
        let capped4 = simulate(&topo, &cfg);
        let s1: std::collections::HashSet<_> = capped1.paths.iter().cloned().collect();
        let s4: std::collections::HashSet<_> = capped4.paths.iter().cloned().collect();
        assert_eq!(s1, s4);
    }

    #[test]
    fn explicit_vp_with_unknown_asn_is_skipped() {
        let topo = generate(&TopologyConfig::tiny(), 13);
        let mut cfg = SimConfig::defaults(13);
        cfg.vp_selection = VpSelection::Explicit(vec![Asn(999_999), Asn(1)]);
        cfg.full_feed_fraction = 1.0;
        let out = simulate(&topo, &cfg);
        // The unknown VP contributes nothing; the known one works.
        let vps = out.paths.vantage_points();
        assert!(!vps.contains(&Asn(999_999)));
        assert!(vps.contains(&Asn(1)));
    }

    #[test]
    fn zero_vps_is_a_valid_degenerate_run() {
        let topo = generate(&TopologyConfig::tiny(), 14);
        let mut cfg = SimConfig::defaults(14);
        cfg.vp_selection = VpSelection::Count(0);
        let out = simulate(&topo, &cfg);
        assert!(out.paths.is_empty());
        assert!(out.vps.is_empty());
        assert!(out.stats.destinations > 0, "propagation still ran");
    }

    #[test]
    fn anomalies_show_up_in_stats() {
        let topo = generate(&TopologyConfig::tiny(), 11);
        let clique = topo.ground_truth.clique();
        let mut cfg = SimConfig::defaults(11);
        cfg.anomalies = AnomalyConfig {
            leak_prob: 0.01,
            poison_prob: 0.05,
            prepend_prob: 0.1,
            rs_insertion_prob: 0.9,
            poison_pool: clique,
        };
        let out = simulate(&topo, &cfg);
        let a = out.stats.anomalies;
        assert!(a.prepended_paths > 0, "no prepending injected");
        assert!(a.poisoned_paths > 0, "no poisoning injected");
    }
}
