//! Measurement-artifact injection.
//!
//! Real BGP data is not the clean Gao-Rexford ideal: paths carry
//! prepending, IXP route-server ASNs, deliberate poisoning, and leaked
//! routes. The paper's sanitization (step 1) and poisoned-path discard
//! (step 4) exist precisely because of these artifacts, so the simulator
//! must be able to produce them. All injection decisions are deterministic
//! functions of the seed via [`crate::hash`], independent of thread
//! scheduling.

use crate::graph::PolicyGraph;
use crate::hash;
use asrank_types::Asn;
use serde::{Deserialize, Serialize};

/// Artifact injection probabilities. `Default` is the clean simulation
/// (all zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AnomalyConfig {
    /// Probability that a given AS leaks routes for a given destination
    /// (re-exports provider/peer routes upward and sideways).
    pub leak_prob: f64,
    /// Probability that an emitted (VP, destination) path is poisoned —
    /// an interior forged hop producing a loop or a false clique sandwich.
    pub poison_prob: f64,
    /// Probability that an AS on a path prepends itself (1–3 extra copies)
    /// for a given destination.
    pub prepend_prob: f64,
    /// Probability that a peering hop crossing an IXP fabric shows the
    /// route-server ASN in the emitted path.
    pub rs_insertion_prob: f64,
    /// ASNs available for poisoning insertions (typically the clique;
    /// empty pool disables the clique-sandwich poison variant).
    pub poison_pool: Vec<Asn>,
}

impl AnomalyConfig {
    /// A clean simulation with no artifacts.
    pub fn none() -> Self {
        Self::default()
    }

    /// A "messy Internet" preset: mild prepending and RS insertion, rare
    /// leaks and poisoning — roughly the artifact density real collectors
    /// see.
    pub fn realistic(poison_pool: Vec<Asn>) -> Self {
        AnomalyConfig {
            leak_prob: 0.0002,
            poison_prob: 0.0005,
            prepend_prob: 0.02,
            rs_insertion_prob: 0.3,
            poison_pool,
        }
    }

    /// True when every probability is zero (fast path: skip emission
    /// post-processing entirely).
    pub fn is_clean(&self) -> bool {
        self.leak_prob == 0.0
            && self.poison_prob == 0.0
            && self.prepend_prob == 0.0
            && self.rs_insertion_prob == 0.0
    }
}

/// Counters of artifacts actually injected during a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyStats {
    /// Paths that traversed at least one leaked route edge.
    pub leak_destinations: u64,
    /// Emitted paths that were poisoned.
    pub poisoned_paths: u64,
    /// Emitted paths with at least one prepended hop.
    pub prepended_paths: u64,
    /// Emitted paths showing at least one route-server ASN.
    pub rs_inserted_paths: u64,
}

impl AnomalyStats {
    /// Accumulate another stats block (for merging per-thread counters).
    pub fn merge(&mut self, other: &AnomalyStats) {
        self.leak_destinations += other.leak_destinations;
        self.poisoned_paths += other.poisoned_paths;
        self.prepended_paths += other.prepended_paths;
        self.rs_inserted_paths += other.rs_inserted_paths;
    }
}

/// Apply emission-time artifacts to a raw dense-id path, producing the
/// final ASN path as a VP would record it. Returns the path plus flags
/// `(poisoned, prepended, rs_inserted)`.
///
/// `ids` is ordered VP-first, origin-last. `dest_asn` keys the
/// deterministic draws so the same path is mangled identically every run.
pub fn emit_path(
    g: &PolicyGraph,
    ids: &[u32],
    dest_asn: Asn,
    cfg: &AnomalyConfig,
    seed: u64,
) -> (Vec<Asn>, bool, bool, bool) {
    let d = dest_asn.0 as u64;

    // 1. Route-server insertion on IXP-fabric peering hops.
    let mut with_rs: Vec<Asn> = Vec::with_capacity(ids.len() + 2);
    let mut rs_inserted = false;
    for (i, &x) in ids.iter().enumerate() {
        with_rs.push(g.asn(x));
        if cfg.rs_insertion_prob > 0.0 {
            if let Some(&y) = ids.get(i + 1) {
                if let Some(rs) = g.ixp_route_server(x, y) {
                    if hash::chance(seed, &[x as u64, y as u64, d, 0x5e], cfg.rs_insertion_prob) {
                        with_rs.push(rs);
                        rs_inserted = true;
                    }
                }
            }
        }
    }

    // 2. Prepending: each AS may repeat itself 1–3 extra times.
    let mut prepended = false;
    let mut out: Vec<Asn> = Vec::with_capacity(with_rs.len() + 4);
    for &asn in &with_rs {
        out.push(asn);
        if cfg.prepend_prob > 0.0 && hash::chance(seed, &[asn.0 as u64, d, 0x9e], cfg.prepend_prob)
        {
            let extra = 1 + hash::pick(seed, &[asn.0 as u64, d, 0xa1], 3);
            for _ in 0..extra {
                out.push(asn);
            }
            prepended = true;
        }
    }

    // 3. Poisoning: forge one interior hop.
    let mut poisoned = false;
    if cfg.poison_prob > 0.0
        && out.len() >= 3
        && hash::chance(seed, &[out[0].0 as u64, d, 0x70], cfg.poison_prob)
    {
        let pos = 1 + hash::pick(seed, &[d, 0x71], out.len() - 2);
        let use_pool = !cfg.poison_pool.is_empty() && hash::chance(seed, &[d, 0x72], 0.5);
        let forged = if use_pool {
            // Clique-sandwich style: splice a prominent ASN mid-path.
            cfg.poison_pool[hash::pick(seed, &[d, 0x73], cfg.poison_pool.len())]
        } else {
            // Loop style: duplicate a non-adjacent earlier hop.
            out[hash::pick(seed, &[d, 0x74], pos.saturating_sub(1).max(1))]
        };
        if forged != out[pos] && forged != out[pos - 1] {
            out.insert(pos, forged);
            poisoned = true;
        }
    }

    (out, poisoned, prepended, rs_inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::prelude::*;

    fn peering_pair_graph() -> PolicyGraph {
        let mut gt = GroundTruth::default();
        gt.relationships.insert_p2p(Asn(10), Asn(20));
        gt.relationships.insert_c2p(Asn(30), Asn(10));
        gt.classes.insert(Asn(10), AsClass::MidTransit);
        gt.classes.insert(Asn(20), AsClass::MidTransit);
        gt.classes.insert(Asn(30), AsClass::Stub);
        let fabrics = vec![(Asn(900), vec![Asn(10), Asn(20)])];
        PolicyGraph::with_ixp_links(&gt, &fabrics)
    }

    #[test]
    fn clean_config_is_identity() {
        let g = peering_pair_graph();
        let ids: Vec<u32> = [20u32, 10, 30]
            .iter()
            .map(|&a| g.id(Asn(a)).unwrap())
            .collect();
        let (path, p, pr, rs) = emit_path(&g, &ids, Asn(30), &AnomalyConfig::none(), 1);
        assert_eq!(path, vec![Asn(20), Asn(10), Asn(30)]);
        assert!(!p && !pr && !rs);
    }

    #[test]
    fn rs_insertion_happens_on_fabric_hop() {
        let g = peering_pair_graph();
        let ids: Vec<u32> = [20u32, 10, 30]
            .iter()
            .map(|&a| g.id(Asn(a)).unwrap())
            .collect();
        let mut cfg = AnomalyConfig::none();
        cfg.rs_insertion_prob = 1.0;
        let (path, _, _, rs) = emit_path(&g, &ids, Asn(30), &cfg, 1);
        assert!(rs);
        assert_eq!(path, vec![Asn(20), Asn(900), Asn(10), Asn(30)]);
    }

    #[test]
    fn prepending_repeats_hops_adjacently() {
        let g = peering_pair_graph();
        let ids: Vec<u32> = [20u32, 10, 30]
            .iter()
            .map(|&a| g.id(Asn(a)).unwrap())
            .collect();
        let mut cfg = AnomalyConfig::none();
        cfg.prepend_prob = 1.0;
        let (path, _, pr, _) = emit_path(&g, &ids, Asn(30), &cfg, 3);
        assert!(pr);
        assert!(path.len() > 3);
        // Compressing prepending must recover the original path.
        let compressed = AsPath(path).compress_prepending();
        assert_eq!(compressed.0, vec![Asn(20), Asn(10), Asn(30)]);
    }

    #[test]
    fn poisoning_changes_path() {
        let g = peering_pair_graph();
        let ids: Vec<u32> = [20u32, 10, 30]
            .iter()
            .map(|&a| g.id(Asn(a)).unwrap())
            .collect();
        let mut cfg = AnomalyConfig::none();
        cfg.poison_prob = 1.0;
        cfg.poison_pool = vec![Asn(777)];
        // Try several seeds; at least one must actually insert (the guard
        // against adjacent duplicates can suppress some draws).
        let mut any = false;
        for seed in 0..20 {
            let (path, poisoned, _, _) = emit_path(&g, &ids, Asn(30), &cfg, seed);
            if poisoned {
                any = true;
                assert_eq!(path.len(), 4);
            }
        }
        assert!(any, "poisoning never fired across 20 seeds");
    }

    #[test]
    fn emit_is_deterministic() {
        let g = peering_pair_graph();
        let ids: Vec<u32> = [20u32, 10, 30]
            .iter()
            .map(|&a| g.id(Asn(a)).unwrap())
            .collect();
        let cfg = AnomalyConfig::realistic(vec![Asn(777)]);
        let a = emit_path(&g, &ids, Asn(30), &cfg, 99);
        let b = emit_path(&g, &ids, Asn(30), &cfg, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = AnomalyStats {
            leak_destinations: 1,
            poisoned_paths: 2,
            prepended_paths: 3,
            rs_inserted_paths: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.poisoned_paths, 4);
        assert_eq!(a.rs_inserted_paths, 8);
    }
}
