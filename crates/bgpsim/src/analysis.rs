//! Collection analysis: the descriptive statistics the paper reports
//! about its input data (path lengths, link visibility by relationship
//! class, table sizes per VP).

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Distribution summary of AS-path lengths (after prepending removal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PathLengthStats {
    /// Shortest observed path.
    pub min: usize,
    /// Median length.
    pub median: usize,
    /// Mean length.
    pub mean: f64,
    /// 95th percentile.
    pub p95: usize,
    /// Longest observed path.
    pub max: usize,
    /// Distinct paths measured.
    pub count: usize,
}

/// Per-relationship-class link visibility: how much of the topology's
/// link population each class contributes, and how much of it the
/// collected paths actually show.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassVisibility {
    /// Links of this class in the ground truth.
    pub total: usize,
    /// Of those, links appearing in at least one collected path.
    pub observed: usize,
}

impl ClassVisibility {
    /// Observed fraction (1.0 when the class is empty).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.observed as f64 / self.total as f64
        }
    }
}

/// Full collection analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectionAnalysis {
    /// Path-length distribution over distinct paths.
    pub path_lengths: PathLengthStats,
    /// Visibility of c2p links.
    pub c2p: ClassVisibility,
    /// Visibility of p2p links.
    pub p2p: ClassVisibility,
    /// Visibility of s2s links.
    pub s2s: ClassVisibility,
    /// Links observed in paths that do not exist in the ground truth
    /// (artifact links: poisoning, route-server insertion).
    pub phantom_links: usize,
}

/// Analyze a collected path set against its generating ground truth.
pub fn analyze(paths: &PathSet, truth: &RelationshipMap) -> CollectionAnalysis {
    let distinct: HashSet<AsPath> = paths
        .paths()
        .map(|p| p.compress_prepending())
        .filter(|p| p.len() >= 2)
        .collect();

    // Path lengths.
    let mut lengths: Vec<usize> = distinct.iter().map(AsPath::len).collect();
    lengths.sort_unstable();
    let path_lengths = if lengths.is_empty() {
        PathLengthStats::default()
    } else {
        let n = lengths.len();
        PathLengthStats {
            min: lengths[0],
            median: lengths[n / 2],
            mean: lengths.iter().sum::<usize>() as f64 / n as f64,
            p95: lengths[(n * 95 / 100).min(n - 1)],
            max: lengths[n - 1],
            count: n,
        }
    };

    // Observed links.
    let mut observed: HashSet<AsLink> = HashSet::new();
    for p in &distinct {
        for (a, b) in p.links() {
            if a != b {
                observed.insert(AsLink::new(a, b));
            }
        }
    }

    // Class visibility + phantom count.
    let mut by_kind: HashMap<RelationshipKind, ClassVisibility> = HashMap::new();
    for (link, rel) in truth.iter() {
        let e = by_kind.entry(rel.kind()).or_default();
        e.total += 1;
        if observed.contains(&link) {
            e.observed += 1;
        }
    }
    let phantom_links = observed
        .iter()
        .filter(|l| truth.get(l.a, l.b).is_none())
        .count();

    CollectionAnalysis {
        path_lengths,
        c2p: by_kind.remove(&RelationshipKind::C2p).unwrap_or_default(),
        p2p: by_kind.remove(&RelationshipKind::P2p).unwrap_or_default(),
        s2s: by_kind.remove(&RelationshipKind::S2s).unwrap_or_default(),
        phantom_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::VpSelection;
    use crate::sim::{simulate, SimConfig};
    use as_topology_gen::{generate, TopologyConfig};

    #[test]
    fn clean_collection_has_no_phantoms() {
        let topo = generate(&TopologyConfig::tiny(), 2);
        let mut cfg = SimConfig::defaults(2);
        cfg.vp_selection = VpSelection::Count(8);
        cfg.full_feed_fraction = 1.0;
        let sim = simulate(&topo, &cfg);
        let a = analyze(&sim.paths, &topo.ground_truth.relationships);
        assert_eq!(a.phantom_links, 0);
        assert!(a.path_lengths.count > 0);
        assert!(a.path_lengths.min >= 2);
        assert!(a.path_lengths.mean >= a.path_lengths.min as f64);
        assert!(a.path_lengths.max <= 12, "paths unreasonably long");
        // c2p links are far more visible than p2p (peering is local).
        assert!(a.c2p.fraction() > a.p2p.fraction());
        assert!(a.c2p.fraction() > 0.5);
    }

    #[test]
    fn rs_insertion_creates_phantoms() {
        let topo = generate(&TopologyConfig::small(), 4);
        let mut cfg = SimConfig::defaults(4);
        cfg.vp_selection = VpSelection::Count(20);
        cfg.anomalies.rs_insertion_prob = 1.0;
        let sim = simulate(&topo, &cfg);
        let a = analyze(&sim.paths, &topo.ground_truth.relationships);
        assert!(
            a.phantom_links > 0,
            "route-server ASNs must appear as phantom links"
        );
    }

    #[test]
    fn empty_input() {
        let a = analyze(&PathSet::new(), &RelationshipMap::new());
        assert_eq!(a.path_lengths.count, 0);
        assert_eq!(a.phantom_links, 0);
        assert!((a.c2p.fraction() - 1.0).abs() < 1e-12);
    }
}
