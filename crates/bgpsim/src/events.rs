//! Routing events and update-stream derivation.
//!
//! The peering disputes that motivated the paper's relationship work
//! (and its follow-ups) manifest as *events*: a link is depeered, a
//! provider is dropped, a prefix moves. This module applies an event to
//! a topology and derives the BGP update stream each vantage point would
//! emit — by simulating before and after, then diffing the two RIBs.

use crate::sim::{simulate, SimConfig, SimOutput};
use as_topology_gen::GeneratedTopology;
use asrank_types::prelude::*;
use asrank_types::update::UpdateMessage;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A topology-level routing event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingEvent {
    /// The link between two ASes goes down (depeering, contract end,
    /// fiber cut at the only interconnect).
    LinkDown {
        /// One endpoint.
        a: Asn,
        /// The other endpoint.
        b: Asn,
    },
    /// An AS stops originating all of its prefixes (outage).
    OriginDown {
        /// The origin AS.
        asn: Asn,
    },
}

/// Apply an event, returning the modified topology (the input is
/// untouched). Unknown links/ASes yield an unchanged copy.
pub fn apply_event(topo: &GeneratedTopology, event: RoutingEvent) -> GeneratedTopology {
    let mut out = topo.clone();
    match event {
        RoutingEvent::LinkDown { a, b } => {
            out.ground_truth.relationships.remove(a, b);
        }
        RoutingEvent::OriginDown { asn } => {
            out.ground_truth.prefixes.remove(&asn);
        }
    }
    out
}

/// Derive per-VP update messages by diffing two collected RIBs
/// (before → after). One message per VP, deterministic order.
pub fn diff_collections(before: &SimOutput, after: &SimOutput) -> Vec<UpdateMessage> {
    // Index each collection: (vp, prefix) → path.
    let index = |out: &SimOutput| -> HashMap<(Asn, Ipv4Prefix), AsPath> {
        out.paths
            .iter()
            .map(|s| ((s.vp, s.prefix), s.path.clone()))
            .collect()
    };
    let old = index(before);
    let new = index(after);

    let mut per_vp: HashMap<Asn, UpdateMessage> = HashMap::new();
    for (&(vp, prefix), old_path) in &old {
        match new.get(&(vp, prefix)) {
            None => per_vp
                .entry(vp)
                .or_insert_with(|| UpdateMessage {
                    vp,
                    ..Default::default()
                })
                .withdrawn
                .push(prefix),
            Some(new_path) if new_path != old_path => per_vp
                .entry(vp)
                .or_insert_with(|| UpdateMessage {
                    vp,
                    ..Default::default()
                })
                .announced
                .push((prefix, new_path.clone())),
            Some(_) => {}
        }
    }
    for (&(vp, prefix), new_path) in &new {
        if !old.contains_key(&(vp, prefix)) {
            per_vp
                .entry(vp)
                .or_insert_with(|| UpdateMessage {
                    vp,
                    ..Default::default()
                })
                .announced
                .push((prefix, new_path.clone()));
        }
    }

    let mut out: Vec<UpdateMessage> = per_vp.into_values().collect();
    for m in &mut out {
        m.withdrawn.sort();
        m.announced.sort_by_key(|(p, _)| *p);
    }
    out.sort_by_key(|m| m.vp);
    out
}

/// Convenience: simulate around an event with identical collection
/// settings and return `(before, after, updates)`.
///
/// The vantage-point set is resolved once, against the *pre-event*
/// topology, and pinned for both runs — otherwise degree-weighted VP
/// selection would re-sample on the modified graph and the diff would
/// conflate VP churn with routing churn.
pub fn simulate_event(
    topo: &GeneratedTopology,
    event: RoutingEvent,
    config: &SimConfig,
) -> (SimOutput, SimOutput, Vec<UpdateMessage>) {
    let before = simulate(topo, config);
    let mut pinned = config.clone();
    pinned.vp_selection =
        crate::collector::VpSelection::Explicit(before.vps.iter().map(|v| v.asn).collect());
    // Re-run "before" under the pinned selection so feed fractions are
    // drawn identically for both sides of the diff.
    let before = simulate(topo, &pinned);
    let changed = apply_event(topo, event);
    let after = simulate(&changed, &pinned);
    let updates = diff_collections(&before, &after);
    (before, after, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::VpSelection;
    use as_topology_gen::{generate, TopologyConfig};

    fn setup() -> (GeneratedTopology, SimConfig) {
        let topo = generate(&TopologyConfig::tiny(), 3);
        let mut cfg = SimConfig::defaults(3);
        cfg.vp_selection = VpSelection::Count(6);
        cfg.full_feed_fraction = 1.0;
        (topo, cfg)
    }

    #[test]
    fn no_event_no_updates() {
        let (topo, cfg) = setup();
        let a = simulate(&topo, &cfg);
        let b = simulate(&topo, &cfg);
        assert!(diff_collections(&a, &b).is_empty());
    }

    #[test]
    fn origin_down_produces_withdrawals() {
        let (topo, cfg) = setup();
        // Pick an AS that originates prefixes.
        let victim = *topo
            .ground_truth
            .prefixes
            .keys()
            .min()
            .expect("some origin");
        let n_prefixes = topo.ground_truth.prefixes[&victim].len();
        let (_before, _after, updates) =
            simulate_event(&topo, RoutingEvent::OriginDown { asn: victim }, &cfg);
        assert!(!updates.is_empty());
        let withdrawals: usize = updates.iter().map(|m| m.withdrawn.len()).sum();
        assert!(
            withdrawals >= n_prefixes,
            "each full-feed VP should withdraw the victim's {n_prefixes} prefixes; got {withdrawals}"
        );
        // No announcements should reference the dead origin.
        for m in &updates {
            for (_, path) in &m.announced {
                assert_ne!(path.origin(), Some(victim));
            }
        }
    }

    #[test]
    fn link_down_reroutes_or_withdraws() {
        let (topo, cfg) = setup();
        // Fail the first c2p link of the lowest-numbered multihomed stub;
        // fall back to any c2p link.
        let (c, p) = topo
            .ground_truth
            .relationships
            .c2p_pairs()
            .min()
            .expect("some c2p link");
        let (_b, after, updates) =
            simulate_event(&topo, RoutingEvent::LinkDown { a: c, b: p }, &cfg);
        // The failed link must not appear in any post-event path.
        for s in after.paths.iter() {
            for (x, y) in s.path.links() {
                assert!(
                    !(x == c && y == p || x == p && y == c),
                    "failed link {c}-{p} still used in {}",
                    s.path
                );
            }
        }
        // Some VP must have noticed (either new paths or withdrawals),
        // unless the link was invisible to every VP before the event.
        let was_visible = _b.paths.iter().any(|s| {
            s.path
                .links()
                .any(|(x, y)| x == c && y == p || x == p && y == c)
        });
        if was_visible {
            assert!(!updates.is_empty(), "visible link failure must cause churn");
        }
    }

    #[test]
    fn updates_are_deterministic_and_sorted() {
        let (topo, cfg) = setup();
        let victim = *topo.ground_truth.prefixes.keys().max().unwrap();
        let ev = RoutingEvent::OriginDown { asn: victim };
        let (_, _, u1) = simulate_event(&topo, ev, &cfg);
        let (_, _, u2) = simulate_event(&topo, ev, &cfg);
        assert_eq!(u1, u2);
        for w in u1.windows(2) {
            assert!(w[0].vp < w[1].vp);
        }
    }
}
