//! Vantage points and feed modeling.
//!
//! RouteViews and RIS see the Internet through the BGP sessions that
//! networks volunteer. Two properties of that corpus shape the paper's
//! method and its visibility analysis:
//!
//! * VPs are **biased toward well-connected networks** — large transit
//!   providers are far more likely to peer with a collector than a random
//!   stub; and
//! * only about a third of VPs are **full feeds** (the paper's April 2013
//!   snapshot had 116 full feeds out of 315 VPs); the rest export partial
//!   tables.
//!
//! [`select_vps`] reproduces both properties with degree-weighted sampling.

use crate::graph::PolicyGraph;
use asrank_types::Asn;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// One vantage point: an AS exporting its table to a collector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// The AS hosting the VP.
    pub asn: Asn,
    /// True when the VP exports (nearly) the full routed table.
    pub full_feed: bool,
    /// Fraction of prefixes this VP reports (1.0 for full feeds).
    pub feed_fraction: f64,
}

/// How to choose vantage points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VpSelection {
    /// Pick this many VPs, degree-weighted (collector-peering bias).
    Count(usize),
    /// Use exactly these ASes as VPs.
    Explicit(Vec<Asn>),
}

/// Select vantage points over a compiled topology.
///
/// * With [`VpSelection::Count`], ASes are drawn without replacement with
///   probability proportional to `1 + degree²` — a strong bias toward
///   transit networks, matching who actually peers with collectors.
/// * `full_feed_fraction` of the chosen VPs export the whole table; the
///   rest report a uniform random fraction in `[0.05, 0.5)` of prefixes.
pub fn select_vps(
    g: &PolicyGraph,
    selection: &VpSelection,
    full_feed_fraction: f64,
    seed: u64,
) -> Vec<VantagePoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc011_ec70);
    let chosen: Vec<Asn> = match selection {
        VpSelection::Explicit(list) => list.clone(),
        VpSelection::Count(count) => {
            let mut weighted: Vec<(Asn, f64)> = g
                .ids()
                .map(|id| {
                    let deg = g.providers(id).len()
                        + g.customers(id).len()
                        + g.peers(id).len()
                        + g.siblings(id).len();
                    (g.asn(id), 1.0 + (deg * deg) as f64)
                })
                .collect();
            weighted.sort_by_key(|(a, _)| *a);
            let mut picked = Vec::with_capacity(*count);
            let mut total: f64 = weighted.iter().map(|(_, w)| w).sum();
            // Draw without replacement by zeroing out selected weights.
            for _ in 0..(*count).min(weighted.len()) {
                let mut target = rng.random::<f64>() * total;
                let mut idx = weighted.len() - 1;
                for (i, (_, w)) in weighted.iter().enumerate() {
                    if target < *w {
                        idx = i;
                        break;
                    }
                    target -= *w;
                }
                let (asn, w) = weighted[idx];
                picked.push(asn);
                total -= w;
                weighted[idx].1 = 0.0;
            }
            picked
        }
    };

    chosen
        .into_iter()
        .map(|asn| {
            let full = rng.random::<f64>() < full_feed_fraction;
            VantagePoint {
                asn,
                full_feed: full,
                feed_fraction: if full {
                    1.0
                } else {
                    0.05 + 0.45 * rng.random::<f64>()
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::prelude::*;

    fn star_graph() -> PolicyGraph {
        // Hub AS1 with 20 stub customers: degree bias should almost always
        // include the hub.
        let mut gt = GroundTruth::default();
        for i in 0..20u32 {
            gt.relationships.insert_c2p(Asn(100 + i), Asn(1));
            gt.classes.insert(Asn(100 + i), AsClass::Stub);
        }
        gt.classes.insert(Asn(1), AsClass::LargeTransit);
        PolicyGraph::new(&gt)
    }

    #[test]
    fn degree_bias_prefers_hub() {
        let g = star_graph();
        let mut hub_hits = 0;
        for seed in 0..50 {
            let vps = select_vps(&g, &VpSelection::Count(3), 0.5, seed);
            if vps.iter().any(|v| v.asn == Asn(1)) {
                hub_hits += 1;
            }
        }
        assert!(hub_hits > 40, "hub selected only {hub_hits}/50 times");
    }

    #[test]
    fn explicit_selection_is_exact() {
        let g = star_graph();
        let want = vec![Asn(100), Asn(105)];
        let vps = select_vps(&g, &VpSelection::Explicit(want.clone()), 1.0, 7);
        assert_eq!(vps.iter().map(|v| v.asn).collect::<Vec<_>>(), want);
        assert!(vps.iter().all(|v| v.full_feed));
        assert!(vps.iter().all(|v| (v.feed_fraction - 1.0).abs() < 1e-12));
    }

    #[test]
    fn no_duplicate_vps() {
        let g = star_graph();
        let vps = select_vps(&g, &VpSelection::Count(21), 0.3, 3);
        let set: std::collections::HashSet<Asn> = vps.iter().map(|v| v.asn).collect();
        assert_eq!(set.len(), vps.len());
        assert_eq!(vps.len(), 21); // never more than the population
    }

    #[test]
    fn partial_feeds_have_small_fractions() {
        let g = star_graph();
        let vps = select_vps(&g, &VpSelection::Count(10), 0.0, 5);
        for vp in vps {
            assert!(!vp.full_feed);
            assert!((0.05..0.5).contains(&vp.feed_fraction));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = star_graph();
        let a = select_vps(&g, &VpSelection::Count(5), 0.4, 11);
        let b = select_vps(&g, &VpSelection::Count(5), 0.4, 11);
        assert_eq!(a, b);
    }
}
