//! Deterministic per-tuple randomness.
//!
//! Route propagation runs destination-parallel; threading one RNG through
//! it would serialize the simulation and make results depend on thread
//! scheduling. Instead, every stochastic decision (does AS *x* leak toward
//! destination *d*? does AS *x* prepend on this path?) is a pure function
//! of `(seed, participants)` via a splitmix64-based mixer, so the full
//! simulation is reproducible regardless of parallelism.

/// One round of splitmix64 — a fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix an arbitrary tuple of words into one 64-bit value.
#[inline]
pub fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Deterministic Bernoulli draw: true with probability `p`.
#[inline]
pub fn chance(seed: u64, parts: &[u64], p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    // Map the top 53 bits to [0, 1).
    let u = (mix(seed, parts) >> 11) as f64 / (1u64 << 53) as f64;
    u < p
}

/// Deterministic uniform draw from `[0, n)`; `n` must be non-zero.
#[inline]
pub fn pick(seed: u64, parts: &[u64], n: usize) -> usize {
    debug_assert!(n > 0);
    (mix(seed, parts) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(1, &[2, 3]), mix(1, &[2, 3]));
        assert_ne!(mix(1, &[2, 3]), mix(1, &[3, 2]));
        assert_ne!(mix(1, &[2, 3]), mix(2, &[2, 3]));
    }

    #[test]
    fn chance_extremes() {
        assert!(!chance(1, &[1], 0.0));
        assert!(chance(1, &[1], 1.0));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let hits = (0..100_000u64).filter(|&i| chance(42, &[i], 0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "f={f}");
    }

    #[test]
    fn pick_in_range_and_covers() {
        let mut seen = [false; 7];
        for i in 0..1000u64 {
            let k = pick(9, &[i], 7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
