//! # bgp-sim
//!
//! A Gao-Rexford policy-routing simulator over ground-truth AS topologies.
//!
//! The ASRank paper infers relationships from AS paths collected by
//! RouteViews and RIPE RIS. This crate stands in for the real BGP
//! ecosystem: given a [`asrank_types::GroundTruth`] topology it computes,
//! for every destination, the routes that the standard economic policy
//! model would select and export:
//!
//! * **Preference** — customer-learned routes over peer-learned routes
//!   over provider-learned routes; then shortest AS path; then lowest
//!   next-hop ASN (deterministic tie-break).
//! * **Export** — customer routes are announced to everyone; peer- and
//!   provider-learned routes only to customers. Sibling links exchange
//!   everything.
//!
//! The classic three-stage BFS computes this exactly when the c2p graph is
//! acyclic (which the generator guarantees): routes first climb customer→
//! provider edges, then cross a single peering edge, then descend
//! provider→customer edges.
//!
//! On top of the clean model the simulator layers the *measurement
//! artifacts* the paper's sanitization and robustness machinery exist to
//! handle: AS-path prepending, route leaks, path poisoning, IXP
//! route-server ASN insertion, and partial-feed vantage points.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod anomaly;
pub mod collector;
pub mod events;
pub mod graph;
pub mod hash;
pub mod propagate;
pub mod sim;

pub use analysis::{analyze, ClassVisibility, CollectionAnalysis, PathLengthStats};
pub use anomaly::AnomalyConfig;
pub use collector::{VantagePoint, VpSelection};
pub use events::{apply_event, diff_collections, simulate_event, RoutingEvent};
pub use graph::PolicyGraph;
pub use propagate::{
    compute_route_tree, compute_route_tree_with, compute_route_trees, PrefClass,
    PropagationWorkspace, RouteTree,
};
pub use sim::{simulate, SimConfig, SimOutput};
