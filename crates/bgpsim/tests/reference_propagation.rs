//! Cross-validation of the optimized three-stage propagation against a
//! slow, obviously-correct reference: a fixpoint iteration that applies
//! the Gao-Rexford export and preference rules literally. On random
//! hierarchies, both must agree on reachability, preference class, and
//! AS-path length for every (node, destination) pair — only the
//! tie-broken parent may differ.

use asrank_types::prelude::*;
use bgp_sim::propagate::{compute_route_tree, PrefClass};
use bgp_sim::PolicyGraph;
use proptest::prelude::*;

/// A random acyclic transit hierarchy: node i > 0 buys transit from 1–2
/// lower-numbered nodes; random peer links are sprinkled on top.
fn arb_topology() -> impl Strategy<Value = GroundTruth> {
    (3usize..18, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_add(0x9e3779b97f4a7c15)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            s ^ (s >> 31)
        };
        let mut gt = GroundTruth::default();
        for i in 0..n as u32 {
            gt.classes.insert(Asn(i + 1), AsClass::Stub);
        }
        // c2p edges toward lower indices (acyclic by construction).
        for i in 1..n as u32 {
            let homes = 1 + (next() % 2) as u32;
            for _ in 0..homes {
                let p = (next() % i as u64) as u32 + 1;
                if p != i + 1 {
                    gt.relationships.insert_c2p(Asn(i + 1), Asn(p));
                }
            }
        }
        // A few random peerings between unrelated pairs.
        for _ in 0..n / 3 {
            let a = (next() % n as u64) as u32 + 1;
            let b = (next() % n as u64) as u32 + 1;
            if a != b && gt.relationships.get(Asn(a), Asn(b)).is_none() {
                gt.relationships.insert_p2p(Asn(a), Asn(b));
            }
        }
        gt
    })
}

/// Reference route state: (preference rank, hops). Lower is better;
/// pref rank: 0 = origin/customer, 1 = peer, 2 = provider.
type RefRoute = Option<(u8, u16)>;

fn pref_rank(p: PrefClass) -> u8 {
    match p {
        PrefClass::Origin | PrefClass::Customer => 0,
        PrefClass::Peer => 1,
        PrefClass::Provider => 2,
    }
}

/// Literal Gao-Rexford fixpoint: synchronous best-response iteration.
///
/// Each round recomputes every node's best route *from scratch* out of
/// its neighbors' current routes — monotone "improve only" updates would
/// keep stale routes whose upstream later switched to a more-preferred
/// but longer path (real BGP retracts those). Gao-Rexford preferences
/// are dispute-free, so this iteration converges.
fn reference_routes(gt: &GroundTruth, dest: Asn) -> std::collections::HashMap<Asn, (u8, u16)> {
    use std::collections::HashMap;
    let adj = gt.relationships.adjacency();
    let mut ases: Vec<Asn> = gt.classes.keys().copied().collect();
    ases.sort();
    let mut routes: HashMap<Asn, (u8, u16)> = HashMap::new();
    routes.insert(dest, (0, 0));

    let n = gt.classes.len();
    for _ in 0..=2 * n + 4 {
        let mut next: HashMap<Asn, (u8, u16)> = HashMap::new();
        next.insert(dest, (0, 0));
        for &me in &ases {
            if me == dest {
                continue;
            }
            let Some(neigh) = adj.get(&me) else { continue };
            let mut best: Option<(u8, u16)> = None;
            for &(nb, orientation) in neigh {
                let Some(&(nb_rank, nb_hops)) = routes.get(&nb) else {
                    continue;
                };
                // Export rule: nb sends me its best route iff nb learned
                // it from a customer or originated it (nb_rank == 0), or
                // I am nb's customer (nb is my provider).
                let i_am_customer = orientation == Orientation::Provider;
                if nb_rank != 0 && !i_am_customer {
                    continue;
                }
                let my_rank = match orientation {
                    Orientation::Customer => 0, // nb is my customer
                    Orientation::Sibling => 0,  // siblings excluded here
                    Orientation::Peer => 1,
                    Orientation::Provider => 2,
                };
                let cand = (my_rank, nb_hops + 1);
                if best.is_none() || cand < best.unwrap() {
                    best = Some(cand);
                }
            }
            if let Some(b) = best {
                next.insert(me, b);
            }
        }
        let stable = next == routes;
        routes = next;
        if stable {
            break;
        }
    }
    routes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn three_stage_matches_reference_fixpoint(gt in arb_topology()) {
        let g = PolicyGraph::new(&gt);
        let mut dests: Vec<Asn> = gt.classes.keys().copied().collect();
        dests.sort();
        for &dest in &dests {
            let Some(dest_id) = g.id(dest) else { continue };
            let tree = compute_route_tree(&g, dest_id, None);
            let reference = reference_routes(&gt, dest);
            for &asn in gt.classes.keys() {
                let id = g.id(asn).unwrap();
                let fast: RefRoute = tree
                    .route(id)
                    .map(|r| (pref_rank(r.pref), r.hops));
                let slow: RefRoute = reference.get(&asn).copied();
                prop_assert_eq!(
                    fast, slow,
                    "disagreement at {} for dest {}: fast={:?} slow={:?}",
                    asn, dest, fast, slow
                );
            }
        }
    }
}
