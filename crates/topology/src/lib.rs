//! # as-topology-gen
//!
//! Synthetic Internet AS-level topology generator with ground-truth
//! relationships — the data substrate for the `asrank` reproduction.
//!
//! The original paper consumed BGP RIB dumps of the real Internet and
//! validated against partial external corpora. This crate replaces the
//! real Internet with a *generated* one whose business relationships are
//! known exactly, while preserving the structural properties the ASRank
//! algorithm exploits and the paper reports:
//!
//! * a small, fully-meshed **Tier-1 clique** at the top of the hierarchy;
//! * a multi-level **transit hierarchy** (large / mid / small transit)
//!   with power-law-ish customer degree via preferential attachment;
//! * an overwhelming majority (~85 %) of **stub** ASes at the edge;
//! * **content networks** that buy little transit but peer densely
//!   (the "flattening" actors of the paper's longitudinal analysis);
//! * regional structure biasing both provider choice and peering, plus
//!   **IXPs** whose route-server ASNs can leak into observed paths;
//! * per-AS originated **prefixes** with class-dependent counts.
//!
//! [`TopologyConfig`] describes a topology; [`generator::generate`]
//! materializes a [`asrank_types::GroundTruth`] from a config and a seed;
//! [`evolution`] grows a topology through a sequence of snapshots for
//! longitudinal experiments.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod evolution;
pub mod generator;
pub mod io;
pub mod realism;
pub mod stats;

pub use config::{ClassMix, IxpConfig, TopologyConfig};
pub use evolution::{evolve, EvolutionConfig};
pub mod sampling;
pub mod scale;
pub use generator::{generate, generate_reference, GeneratedTopology};
pub use scale::{Scale, ScaleParseError};
pub use io::{load_bundle, save_bundle, BundleError};
pub use realism::{check_realism, RealismReport};
pub use stats::TopologyStats;
