//! Longitudinal topology evolution.
//!
//! The paper's historical analysis tracks customer cones across 15 years
//! of monthly snapshots and observes the "flattening" of the Internet:
//! edge networks increasingly peer directly (largely via IXPs and content
//! networks), so the largest transit cones stop growing relative to the
//! AS population. [`evolve`] reproduces that generating process: starting
//! from a seed topology, each step adds newly-registered edge ASes (growth
//! of the AS population), adds peering links (flattening), and applies a
//! small amount of provider churn (customers switching transit).

use crate::generator::{generate, GeneratedTopology};
use crate::sampling::WeightedSampler;
use crate::TopologyConfig;
use asrank_types::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Parameters of one evolution run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// Base topology for snapshot 0.
    pub base: TopologyConfig,
    /// Number of snapshots to produce *after* the base (total = steps + 1).
    pub steps: usize,
    /// New stub ASes per step (population growth).
    pub new_stubs_per_step: usize,
    /// New content ASes per step.
    pub new_content_per_step: usize,
    /// New regional (mid-tier) transit providers per step. Their
    /// upstreams are drawn uniformly from the Tier-1/large layer, which
    /// diversifies the branch structure — the mechanism that makes the
    /// biggest cones stop growing relative to the population.
    pub new_transit_per_step: usize,
    /// New p2p links added per step among existing content/transit ASes
    /// (the flattening pressure).
    pub new_peerings_per_step: usize,
    /// Fraction of stubs that switch one provider each step (churn).
    pub provider_churn: f64,
    /// When true, newcomers attach preferentially to already-large
    /// providers (rich-get-richer, the pre-2005 growth regime). When
    /// false, attachment is uniform over transit providers — the
    /// regional-diversification regime in which the biggest cones stop
    /// growing relative to the population (the paper's flattening).
    pub preferential_attachment: bool,
}

impl EvolutionConfig {
    /// A small default evolution suitable for tests: 1k base, 6 steps.
    pub fn small() -> Self {
        EvolutionConfig {
            base: TopologyConfig::small(),
            steps: 6,
            new_stubs_per_step: 60,
            new_content_per_step: 8,
            new_transit_per_step: 5,
            new_peerings_per_step: 120,
            provider_churn: 0.06,
            preferential_attachment: false,
        }
    }
}

/// Evolve a topology, returning `steps + 1` snapshots (index 0 = base).
///
/// Each snapshot is a fully independent [`GeneratedTopology`] (deep copy),
/// so downstream analysis can hold several snapshots at once. ASNs are
/// stable across snapshots: an AS present in snapshot *i* keeps its number
/// in every later snapshot.
pub fn evolve(config: &EvolutionConfig, seed: u64) -> Vec<GeneratedTopology> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_e701);
    let mut snapshots = Vec::with_capacity(config.steps + 1);
    let mut current = generate(&config.base, seed);
    snapshots.push(current.clone());

    for _step in 0..config.steps {
        step_topology(&mut current, config, &mut rng);
        snapshots.push(current.clone());
    }
    snapshots
}

/// Apply one evolution step in place.
fn step_topology(t: &mut GeneratedTopology, cfg: &EvolutionConfig, rng: &mut StdRng) {
    let regions = t.config.regions.max(1);
    let gt = &mut t.ground_truth;
    let mut next_asn = gt.classes.keys().map(|a| a.0).max().unwrap_or(0) + 1;

    // Build an attachment sampler over current transit providers, weighted
    // by how many customers they already serve (rich get richer).
    let adj = gt.relationships.adjacency();
    let mut provider_sampler: WeightedSampler<Asn> = WeightedSampler::new();
    let mut transit: Vec<Asn> = Vec::new();
    let mut customer_counts: std::collections::HashMap<Asn, usize> =
        std::collections::HashMap::new();
    // Iterate ASes in sorted order: HashMap order is nondeterministic and
    // would leak into the sampler's layout, breaking reproducibility.
    let mut sorted_classes: Vec<(Asn, AsClass)> =
        gt.classes.iter().map(|(&a, &c)| (a, c)).collect();
    sorted_classes.sort_by_key(|(a, _)| *a);
    for &(asn, class) in &sorted_classes {
        // Preferential (early-era) growth draws on every transit tier;
        // the flattening era's newcomers buy regional transit, so the
        // uniform regime samples mid/small providers only.
        let eligible = if cfg.preferential_attachment {
            matches!(
                class,
                AsClass::MidTransit | AsClass::SmallTransit | AsClass::LargeTransit
            )
        } else {
            matches!(class, AsClass::MidTransit | AsClass::SmallTransit)
        };
        if eligible {
            let customers = adj
                .get(&asn)
                .map(|n| {
                    n.iter()
                        .filter(|&&(_, o)| o == Orientation::Customer)
                        .count()
                })
                .unwrap_or(0);
            customer_counts.insert(asn, customers);
            let weight = if cfg.preferential_attachment {
                1.0 + customers as f64
            } else {
                1.0
            };
            provider_sampler.insert(asn, weight);
            transit.push(asn);
        }
    }
    transit.sort();

    // Upstream pool for newly-created transits: uniform over the top two
    // layers so new branches spread across the clique.
    let uppers: Vec<Asn> = sorted_classes
        .iter()
        .filter(|(_, c)| matches!(c, AsClass::Tier1 | AsClass::LargeTransit))
        .map(|(a, _)| *a)
        .collect();

    let mut prefix_cursor = gt
        .prefixes
        .values()
        .flatten()
        .map(|p| p.network().wrapping_add(1u32 << (32 - p.len() as u32)))
        .max()
        .unwrap_or(11 << 24);

    // New regional transits first, so this step's stubs can attach to
    // them (recency bias: growth concentrates where the Internet is
    // expanding).
    for _ in 0..cfg.new_transit_per_step {
        if uppers.is_empty() {
            break;
        }
        let asn = Asn(next_asn);
        next_asn += 1;
        gt.classes.insert(asn, AsClass::MidTransit);
        t.regions.insert(asn, rng.random_range(0..regions) as u8);
        let homes = if rng.random_bool(0.5) { 2 } else { 1 };
        let mut chosen: Vec<Asn> = Vec::new();
        for _ in 0..homes * 4 {
            if chosen.len() >= homes {
                break;
            }
            let p = uppers[rng.random_range(0..uppers.len())];
            if p != asn && !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        for p in chosen {
            gt.relationships.insert_c2p(asn, p);
        }
        let pfx = Ipv4Prefix::new(prefix_cursor, 24).expect("/24 is valid");
        prefix_cursor = prefix_cursor.wrapping_add(256);
        gt.prefixes.insert(asn, vec![pfx]);
        // Strong recency weight: newcomers attract this step's stubs.
        provider_sampler.insert(asn, 6.0);
    }

    let mut add_edge_as = |class: AsClass,
                           providers: usize,
                           gt: &mut GroundTruth,
                           t_regions: &mut std::collections::HashMap<Asn, u8>,
                           rng: &mut StdRng| {
        let asn = Asn(next_asn);
        next_asn += 1;
        gt.classes.insert(asn, class);
        t_regions.insert(asn, rng.random_range(0..regions) as u8);
        let mut chosen = Vec::new();
        for _ in 0..providers.max(1) * 4 {
            if chosen.len() >= providers.max(1) {
                break;
            }
            if let Some(p) = provider_sampler.sample(rng) {
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
        }
        for p in &chosen {
            gt.relationships.insert_c2p(asn, *p);
        }
        // One /24 for the newcomer.
        let p = Ipv4Prefix::new(prefix_cursor, 24).expect("/24 is valid");
        prefix_cursor = prefix_cursor.wrapping_add(256);
        gt.prefixes.insert(asn, vec![p]);
        asn
    };

    for _ in 0..cfg.new_stubs_per_step {
        let n = if rng.random_bool(0.4) { 2 } else { 1 };
        add_edge_as(AsClass::Stub, n, gt, &mut t.regions, rng);
    }
    let mut new_content = Vec::new();
    for _ in 0..cfg.new_content_per_step {
        new_content.push(add_edge_as(AsClass::Content, 2, gt, &mut t.regions, rng));
    }

    // Flattening: new p2p links among content + transit.
    let mut content: Vec<Asn> = sorted_classes
        .iter()
        .filter(|(_, c)| *c == AsClass::Content)
        .map(|(a, _)| *a)
        .collect();
    // Newly-added content ASes are not in the pre-step snapshot; include them.
    content.extend(new_content.iter().copied());
    content.sort();
    content.dedup();
    let peer_pool: Vec<Asn> = content.iter().chain(transit.iter()).copied().collect();
    if peer_pool.len() >= 2 {
        for _ in 0..cfg.new_peerings_per_step {
            // Bias one endpoint toward content (the actors of flattening).
            let x = if !content.is_empty() && rng.random_bool(0.7) {
                content[rng.random_range(0..content.len())]
            } else {
                peer_pool[rng.random_range(0..peer_pool.len())]
            };
            let y = peer_pool[rng.random_range(0..peer_pool.len())];
            if x != y && gt.relationships.get(x, y).is_none() {
                gt.relationships.insert_p2p(x, y);
            }
        }
    }

    // Provider churn: stubs *switch* away from their largest provider
    // toward regional competition (the consolidation-era dynamic behind
    // the paper's shrinking incumbent cones). The replacement is added
    // before the incumbent is dropped, so no stub is ever orphaned and
    // the link count stays roughly stable.
    let stubs: Vec<Asn> = sorted_classes
        .iter()
        .filter(|(_, c)| *c == AsClass::Stub)
        .map(|(a, _)| *a)
        .collect();
    let churn_count = (stubs.len() as f64 * cfg.provider_churn) as usize;
    for _ in 0..churn_count {
        let s = stubs[rng.random_range(0..stubs.len())];
        // providers_of iterates a HashMap: sort for deterministic choice.
        let mut providers = gt.relationships.providers_of(s);
        providers.sort();
        if providers.is_empty() {
            continue;
        }
        let dropped = *providers
            .iter()
            .max_by_key(|p| (customer_counts.get(p).copied().unwrap_or(0), p.0))
            .expect("providers nonempty");
        // Find a replacement distinct from every current provider.
        let mut replacement = None;
        for _ in 0..8 {
            if let Some(p) = provider_sampler.sample(rng) {
                if p != s && p != dropped && gt.relationships.get(s, p).is_none() {
                    replacement = Some(p);
                    break;
                }
            }
        }
        let Some(replacement) = replacement else {
            continue;
        };
        gt.relationships.insert_c2p(s, replacement);
        gt.relationships.remove(s, dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_count_and_growth() {
        let mut cfg = EvolutionConfig::small();
        cfg.base = TopologyConfig::tiny();
        cfg.steps = 4;
        cfg.new_stubs_per_step = 10;
        let snaps = evolve(&cfg, 1);
        assert_eq!(snaps.len(), 5);
        for w in snaps.windows(2) {
            assert!(
                w[1].ground_truth.as_count() > w[0].ground_truth.as_count(),
                "population must grow every step"
            );
        }
    }

    #[test]
    fn asns_are_stable_across_snapshots() {
        let mut cfg = EvolutionConfig::small();
        cfg.base = TopologyConfig::tiny();
        cfg.steps = 3;
        let snaps = evolve(&cfg, 2);
        let first: std::collections::HashSet<Asn> =
            snaps[0].ground_truth.classes.keys().copied().collect();
        let last: std::collections::HashSet<Asn> = snaps
            .last()
            .unwrap()
            .ground_truth
            .classes
            .keys()
            .copied()
            .collect();
        assert!(first.is_subset(&last));
    }

    #[test]
    fn invariants_hold_after_evolution() {
        let mut cfg = EvolutionConfig::small();
        cfg.base = TopologyConfig::tiny();
        cfg.steps = 5;
        let snaps = evolve(&cfg, 3);
        for (i, s) in snaps.iter().enumerate() {
            let problems = s.ground_truth.check_invariants();
            assert!(problems.is_empty(), "snapshot {i}: {problems:?}");
        }
    }

    #[test]
    fn peering_density_increases() {
        let cfg = EvolutionConfig::small();
        let snaps = evolve(&cfg, 4);
        let ratio = |t: &GeneratedTopology| {
            let (c2p, p2p, _) = t.ground_truth.relationships.counts();
            p2p as f64 / (c2p + p2p).max(1) as f64
        };
        assert!(
            ratio(snaps.last().unwrap()) > ratio(&snaps[0]),
            "flattening should raise the p2p share"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = EvolutionConfig::small();
        let a = evolve(&cfg, 9);
        let b = evolve(&cfg, 9);
        assert_eq!(
            a.last().unwrap().ground_truth.relationships.len(),
            b.last().unwrap().ground_truth.relationships.len()
        );
    }
}
