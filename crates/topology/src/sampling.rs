//! Weighted sampling with incremental weight updates.
//!
//! Preferential attachment draws millions of weighted samples while the
//! weights themselves change after every draw (a provider that gains a
//! customer becomes more attractive). A Fenwick (binary indexed) tree over
//! the weights gives O(log n) sample *and* O(log n) weight update, versus
//! O(n) for a rebuilt cumulative table.

use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;

/// A dynamically-updatable weighted sampler over items of type `T`.
#[derive(Debug, Clone)]
pub struct WeightedSampler<T> {
    items: Vec<T>,
    index: HashMap<T, usize>,
    /// Fenwick tree of weights, 1-based internally.
    tree: Vec<f64>,
    total: f64,
}

impl<T: Copy + Eq + Hash> WeightedSampler<T> {
    /// Create an empty sampler.
    pub fn new() -> Self {
        WeightedSampler {
            items: Vec::new(),
            index: HashMap::new(),
            tree: vec![0.0],
            total: 0.0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no item has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert `item` with initial `weight` (> 0). Inserting an existing
    /// item adds to its weight instead.
    pub fn insert(&mut self, item: T, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        if self.index.contains_key(&item) {
            self.add_weight(item, weight);
            return;
        }
        let pos = self.items.len();
        self.items.push(item);
        self.index.insert(item, pos);
        // Appending index i (1-based) to a Fenwick tree: the new node must
        // be initialized with the sum of the sub-blocks it covers, i.e.
        // tree[i] = w + Σ tree[j] for j walking down from i-1 to i-lowbit(i).
        let i = pos + 1;
        let mut v = weight;
        let stop = i - (i & i.wrapping_neg());
        let mut j = i - 1;
        while j > stop {
            v += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        self.tree.push(v);
        self.total += weight;
    }

    /// Add `delta` to the weight of an existing item (no-op for unknown
    /// items, so callers can reward without tracking membership).
    pub fn add_weight(&mut self, item: T, delta: f64) {
        if let Some(&pos) = self.index.get(&item) {
            self.bump(pos, delta);
        }
    }

    fn bump(&mut self, pos: usize, delta: f64) {
        self.total += delta;
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sample an item proportionally to its current weight.
    pub fn sample(&self, rng: &mut StdRng) -> Option<T> {
        if self.items.is_empty() || self.total <= 0.0 {
            return None;
        }
        let mut target = rng.random::<f64>() * self.total;
        // Descend the Fenwick tree to find the smallest prefix whose
        // cumulative weight exceeds `target`.
        let mut pos = 0usize;
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] < target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // `pos` is 1-based-exclusive: item index = pos.
        self.items
            .get(pos)
            .copied()
            .or_else(|| self.items.last().copied())
    }
}

impl<T: Copy + Eq + Hash> Default for WeightedSampler<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sampler_returns_none() {
        let s: WeightedSampler<u32> = WeightedSampler::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn single_item_always_sampled() {
        let mut s = WeightedSampler::new();
        s.insert(7u32, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Some(7));
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let mut s = WeightedSampler::new();
        s.insert(1u32, 1.0);
        s.insert(2u32, 9.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let twos = (0..n).filter(|_| s.sample(&mut rng) == Some(2)).count();
        let frac = twos as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn add_weight_shifts_distribution() {
        let mut s = WeightedSampler::new();
        s.insert(1u32, 1.0);
        s.insert(2u32, 1.0);
        s.add_weight(1, 8.0); // now 9 : 1
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == Some(1)).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn duplicate_insert_accumulates() {
        let mut s = WeightedSampler::new();
        s.insert(5u32, 1.0);
        s.insert(5u32, 2.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn add_weight_on_unknown_is_noop() {
        let mut s: WeightedSampler<u32> = WeightedSampler::new();
        s.add_weight(99, 5.0);
        assert!(s.is_empty());
    }

    #[test]
    fn many_items_all_reachable() {
        let mut s = WeightedSampler::new();
        for i in 0..257u32 {
            s.insert(i, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            seen.insert(s.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 257, "every item should be sampled eventually");
    }
}
