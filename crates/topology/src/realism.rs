//! Calibration checks: does a generated topology look like the measured
//! Internet?
//!
//! The substitution argument in `DESIGN.md` rests on the generator
//! reproducing the structural facts the inference algorithm exploits.
//! This module makes those facts executable: published ranges for the
//! stub share, the power-law degree tail, clique size, multihoming, and
//! the p2p/c2p mix, checked against any [`GroundTruth`]. The preset
//! configs are unit-tested to stay inside the ranges, so a refactor of
//! the generator that silently breaks realism fails CI.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};

/// One realism check outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Which fact was checked.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Accepted range (inclusive).
    pub range: (f64, f64),
}

impl CheckOutcome {
    /// True when the measured value falls in the accepted range.
    pub fn ok(&self) -> bool {
        self.value >= self.range.0 && self.value <= self.range.1
    }
}

/// Full realism report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RealismReport {
    /// Individual outcomes.
    pub checks: Vec<CheckOutcome>,
}

impl RealismReport {
    /// Checks that failed.
    pub fn failures(&self) -> Vec<&CheckOutcome> {
        self.checks.iter().filter(|c| !c.ok()).collect()
    }

    /// True when every check passed.
    pub fn all_ok(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Estimate the power-law exponent of the degree CCDF tail by a simple
/// Hill estimator over degrees ≥ `xmin`.
fn hill_alpha(degrees: &[usize], xmin: usize) -> Option<f64> {
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= xmin)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let n = tail.len() as f64;
    let sum_log: f64 = tail.iter().map(|d| (d / xmin as f64).ln()).sum();
    Some(1.0 + n / sum_log)
}

/// Check a topology against published Internet structure facts
/// (ranges are deliberately generous — they encode "same universe", not
/// "same snapshot"):
///
/// * stub share 70–92 % (measured ≈ 85 %);
/// * clique size 3–25 (measured 10–20 across the paper's snapshots);
/// * mean providers per multihomable AS 1.2–3.5 (measured ≈ 1.5–2.5);
/// * p2p share of links 5–60 % (visible share grew from ~10 % to ~50 %
///   as community data improved);
/// * degree-distribution tail exponent α 1.5–3.5 (classic power-law
///   measurements put the Internet near 2.1).
pub fn check_realism(gt: &GroundTruth) -> RealismReport {
    let adj = gt.relationships.adjacency();
    let mut report = RealismReport::default();

    let n = gt.as_count().max(1);
    let customer_count = |a: &Asn| {
        adj.get(a)
            .map(|ns| {
                ns.iter()
                    .filter(|&&(_, o)| o == Orientation::Customer)
                    .count()
            })
            .unwrap_or(0)
    };
    let provider_count = |a: &Asn| {
        adj.get(a)
            .map(|ns| {
                ns.iter()
                    .filter(|&&(_, o)| o == Orientation::Provider)
                    .count()
            })
            .unwrap_or(0)
    };

    // Stub share.
    let stubs = gt.classes.keys().filter(|a| customer_count(a) == 0).count();
    report.checks.push(CheckOutcome {
        name: "stub share".into(),
        value: stubs as f64 / n as f64,
        range: (0.70, 0.92),
    });

    // Clique size.
    report.checks.push(CheckOutcome {
        name: "clique size".into(),
        value: gt.clique().len() as f64,
        range: (3.0, 25.0),
    });

    // Mean providers over ASes that have any provider.
    let provider_counts: Vec<usize> = gt
        .classes
        .keys()
        .map(provider_count)
        .filter(|&c| c > 0)
        .collect();
    let mean_providers = if provider_counts.is_empty() {
        0.0
    } else {
        provider_counts.iter().sum::<usize>() as f64 / provider_counts.len() as f64
    };
    report.checks.push(CheckOutcome {
        name: "mean providers (multihoming)".into(),
        value: mean_providers,
        range: (1.2, 3.5),
    });

    // p2p share of links.
    let (c2p, p2p, s2s) = gt.relationships.counts();
    report.checks.push(CheckOutcome {
        name: "p2p share of links".into(),
        value: p2p as f64 / (c2p + p2p + s2s).max(1) as f64,
        range: (0.05, 0.60),
    });

    // Degree tail exponent.
    let degrees: Vec<usize> = gt
        .classes
        .keys()
        .map(|a| adj.get(a).map(Vec::len).unwrap_or(0))
        .collect();
    if let Some(alpha) = hill_alpha(&degrees, 3) {
        report.checks.push(CheckOutcome {
            name: "degree tail exponent (Hill, xmin=3)".into(),
            value: alpha,
            range: (1.5, 3.5),
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TopologyConfig};

    #[test]
    fn presets_stay_in_published_ranges() {
        for (name, cfg) in [
            ("small", TopologyConfig::small()),
            ("medium", TopologyConfig::medium()),
        ] {
            let topo = generate(&cfg, 42);
            let report = check_realism(&topo.ground_truth);
            assert!(
                report.all_ok(),
                "{name}: failed checks {:?}",
                report.failures()
            );
        }
    }

    #[test]
    fn degenerate_topology_fails_checks() {
        // A pure star: one provider, everyone else its customer — the
        // stub share is fine but multihoming and peering are absent.
        let mut gt = GroundTruth::default();
        gt.classes.insert(Asn(1), AsClass::Tier1);
        for i in 2..200u32 {
            gt.relationships.insert_c2p(Asn(i), Asn(1));
            gt.classes.insert(Asn(i), AsClass::Stub);
        }
        let report = check_realism(&gt);
        assert!(!report.all_ok());
        let failed: Vec<&str> = report.failures().iter().map(|c| c.name.as_str()).collect();
        assert!(failed.contains(&"p2p share of links"), "{failed:?}");
    }

    #[test]
    fn hill_estimator_on_synthetic_power_law() {
        // degrees ~ pareto(alpha=2): CCDF(x) = x^-2. Generate via inverse
        // transform on a deterministic grid.
        let degrees: Vec<usize> = (1..5000)
            .map(|i| {
                let u = i as f64 / 5000.0;
                (3.0 * (1.0 - u).powf(-0.5)) as usize
            })
            .collect();
        let alpha = hill_alpha(&degrees, 3).unwrap();
        assert!((alpha - 3.0).abs() < 0.6, "alpha={alpha}");
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        let report = check_realism(&GroundTruth::default());
        // No degrees, no tail estimate; checks exist but may fail —
        // the point is graceful behavior.
        assert!(report.checks.len() >= 4);
    }
}
