//! Materializing a [`GroundTruth`] topology from a [`TopologyConfig`].
//!
//! Generation order follows the Internet's hierarchy top-down so that
//! provider choices can use preferential attachment over already-placed
//! ASes: clique → large transit → mid transit → small transit → content →
//! stubs → IXP peering → siblings → prefix allocation.

use crate::config::TopologyConfig;
use crate::sampling::WeightedSampler;
use asrank_types::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One generated Internet exchange point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ixp {
    /// The route-server ASN (class [`AsClass::IxpRouteServer`]).
    pub route_server: Asn,
    /// Region the exchange is located in.
    pub region: u8,
    /// Member ASes connected to the fabric.
    pub members: Vec<Asn>,
}

/// A generated topology: the ground truth plus generation-side metadata
/// that experiments need (regions, IXPs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTopology {
    /// The annotated AS graph with true relationships.
    pub ground_truth: GroundTruth,
    /// Geographic region of every AS.
    pub regions: HashMap<Asn, u8>,
    /// Generated exchanges (members peer across the fabric; the route
    /// server ASN may leak into simulated paths as an artifact).
    pub ixps: Vec<Ixp>,
    /// The config the topology was generated from.
    pub config: TopologyConfig,
    /// The seed used, for provenance.
    pub seed: u64,
}

impl GeneratedTopology {
    /// Convenience accessor for the relationship map.
    pub fn relationships(&self) -> &RelationshipMap {
        &self.ground_truth.relationships
    }
}

/// Draw from a small-mean Poisson distribution (Knuth's method).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // defensive: cannot happen for the means we use
        }
    }
}

/// Number of providers for an AS given the configured mean (always ≥ 1).
fn provider_count(rng: &mut StdRng, mean: f64) -> usize {
    1 + poisson(rng, (mean - 1.0).max(0.0))
}

/// Internal builder carrying generation state.
struct Builder {
    rng: StdRng,
    gt: GroundTruth,
    regions: HashMap<Asn, u8>,
    /// Preferential-attachment sampler per provider pool, keyed by region
    /// (index `regions` = global pool spanning all regions).
    next_asn: u32,
}

impl Builder {
    fn alloc_asn(&mut self) -> Asn {
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        asn
    }

    fn place(&mut self, class: AsClass, region: u8) -> Asn {
        let asn = self.alloc_asn();
        self.gt.classes.insert(asn, class);
        self.regions.insert(asn, region);
        asn
    }
}

/// A provider pool supporting region-biased preferential attachment.
struct ProviderPool {
    /// Sampler per region plus one global sampler at index `regions`.
    per_region: Vec<WeightedSampler<Asn>>,
    global: WeightedSampler<Asn>,
}

impl ProviderPool {
    fn new(regions: usize) -> Self {
        ProviderPool {
            per_region: (0..regions).map(|_| WeightedSampler::new()).collect(),
            global: WeightedSampler::new(),
        }
    }

    fn add(&mut self, asn: Asn, region: u8, weight: f64) {
        self.per_region[region as usize].insert(asn, weight);
        self.global.insert(asn, weight);
    }

    /// Reward `asn` with extra attachment weight after it gains a customer.
    fn reward(&mut self, asn: Asn, region: u8) {
        self.per_region[region as usize].add_weight(asn, 1.0);
        self.global.add_weight(asn, 1.0);
    }

    /// Pick a provider, preferring the customer's region.
    fn pick(&self, rng: &mut StdRng, region: u8, cross_region_prob: f64) -> Option<Asn> {
        let regional = &self.per_region[region as usize];
        if !regional.is_empty() && !rng.random_bool(cross_region_prob.clamp(0.0, 1.0)) {
            regional.sample(rng)
        } else {
            self.global.sample(rng)
        }
    }

    fn is_empty(&self) -> bool {
        self.global.is_empty()
    }
}

/// Attach `customer` to `n` distinct providers drawn from `pool`.
fn attach_providers(
    b: &mut Builder,
    pool: &mut ProviderPool,
    customer: Asn,
    n: usize,
    cross_region_prob: f64,
) {
    if pool.is_empty() {
        return;
    }
    let region = b.regions[&customer];
    let mut chosen: Vec<Asn> = Vec::with_capacity(n);
    let mut attempts = 0;
    while chosen.len() < n && attempts < n * 8 {
        attempts += 1;
        let Some(p) = pool.pick(&mut b.rng, region, cross_region_prob) else {
            break;
        };
        if p == customer || chosen.contains(&p) {
            continue;
        }
        chosen.push(p);
    }
    for p in chosen {
        b.gt.relationships.insert_c2p(customer, p);
        let p_region = b.regions[&p];
        pool.reward(p, p_region);
    }
}

/// Insert a p2p link unless the pair is already related.
fn maybe_peer(b: &mut Builder, x: Asn, y: Asn) {
    if x != y && b.gt.relationships.get(x, y).is_none() {
        b.gt.relationships.insert_p2p(x, y);
    }
}

/// How edge-phase Bernoulli successes are decoded into AS pairs.
///
/// Both modes consume the RNG identically (the draws happen inside
/// [`bernoulli_positions`], shared by construction); they differ only in
/// the non-random machinery that maps a success position back to a
/// candidate pair. [`EdgeSampling::Fast`] decodes positions in closed
/// form without materializing the candidate space;
/// [`EdgeSampling::Reference`] builds the explicit candidate list and
/// indexes into it — O(candidates) per phase, kept as the oracle the
/// fast decode is proptest-pinned against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeSampling {
    /// Closed-form position decode; the production path.
    Fast,
    /// Materialized candidate lists; the pinned reference.
    Reference,
}

/// Success positions of `n` independent Bernoulli(`p`) trials, found by
/// geometric gap skipping: each draw yields the number of failures
/// before the next success (`⌊ln(1-u)/ln(1-p)⌋`, the inverse-CDF of the
/// geometric distribution), so the expected draw count is `n·p + 1`
/// instead of `n`. `G = 0 ⇔ u < p`, i.e. each position succeeds with
/// exactly probability `p`, matching a per-position `random_bool(p)`
/// marginally — only far fewer RNG calls are spent discovering the
/// failures. Positions come back strictly ascending.
fn bernoulli_positions(rng: &mut StdRng, n: usize, p: f64) -> Vec<usize> {
    if n == 0 || p <= 0.0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..n).collect();
    }
    let denom = (1.0 - p).ln(); // negative and finite for p in (0, 1)
    let mut out = Vec::new();
    let mut cur = 0usize;
    while cur < n {
        let u: f64 = rng.random();
        let gap = ((1.0 - u).ln() / denom).floor();
        if !(gap >= 0.0) || gap >= (n - cur) as f64 {
            break; // overshot the remaining candidate space: no more successes
        }
        cur += gap as usize;
        out.push(cur);
        cur += 1;
    }
    out
}

/// Decode linear index `k` into the `(i, j)` pair (`i < j`) at that
/// position of the lexicographic traversal `for i { for j in i+1.. }`
/// over `n` items. A float sqrt gives the row guess; the fix-up loops
/// settle integer rounding (at most a step or two).
fn tri_decode(n: usize, k: usize) -> (usize, usize) {
    // Pairs with first element < i: C(i) = i·(n-1) - i·(i-1)/2,
    // factored as i·(2n-i-1)/2 so no operand underflows at i = 0.
    let c = |i: usize| i * (2 * n - i - 1) / 2;
    let nf = n as f64 - 0.5;
    let mut i = (nf - (nf * nf - 2.0 * k as f64).max(0.0).sqrt()) as usize;
    i = i.min(n.saturating_sub(2));
    while i + 2 < n && c(i + 1) <= k {
        i += 1;
    }
    while i > 0 && c(i) > k {
        i -= 1;
    }
    (i, i + 1 + (k - c(i)))
}

/// Peer unordered pairs of `items` with probability `p` each, visiting
/// successes in the same lexicographic `(i, j)` order the old nested
/// `random_bool` loops used.
fn peer_triangular(b: &mut Builder, items: &[Asn], p: f64, mode: EdgeSampling) {
    let n = items.len();
    if n < 2 {
        return;
    }
    let hits = bernoulli_positions(&mut b.rng, n * (n - 1) / 2, p);
    if hits.is_empty() {
        return;
    }
    match mode {
        EdgeSampling::Fast => {
            for k in hits {
                let (i, j) = tri_decode(n, k);
                maybe_peer(b, items[i], items[j]);
            }
        }
        EdgeSampling::Reference => {
            let mut pairs: Vec<(Asn, Asn)> = Vec::with_capacity(n * (n - 1) / 2);
            for (i, &x) in items.iter().enumerate() {
                for &y in &items[i + 1..] {
                    pairs.push((x, y));
                }
            }
            for k in hits {
                let (x, y) = pairs[k];
                maybe_peer(b, x, y);
            }
        }
    }
}

/// Generate a full topology from `config` and `seed`.
///
/// Deterministic: equal inputs produce identical topologies.
///
/// ```
/// use as_topology_gen::{generate, TopologyConfig};
/// let t1 = generate(&TopologyConfig::tiny(), 7);
/// let t2 = generate(&TopologyConfig::tiny(), 7);
/// assert_eq!(
///     t1.ground_truth.relationships.len(),
///     t2.ground_truth.relationships.len()
/// );
/// assert!(t1.ground_truth.check_invariants().is_empty());
/// ```
pub fn generate(config: &TopologyConfig, seed: u64) -> GeneratedTopology {
    generate_with(config, seed, EdgeSampling::Fast)
}

/// Generate with the retained reference edge sampler: candidate spaces
/// are materialized and indexed instead of decoded in closed form.
///
/// Consumes the RNG identically to [`generate`] (both paths share
/// [`bernoulli_positions`]), so for any `(config, seed)` the two must
/// produce the same topology — the equivalence proptest pins this.
/// O(candidates) time and memory per peering phase; use only as an
/// oracle.
pub fn generate_reference(config: &TopologyConfig, seed: u64) -> GeneratedTopology {
    generate_with(config, seed, EdgeSampling::Reference)
}

fn generate_with(config: &TopologyConfig, seed: u64, mode: EdgeSampling) -> GeneratedTopology {
    let mut b = Builder {
        rng: StdRng::seed_from_u64(seed),
        gt: GroundTruth::default(),
        regions: HashMap::new(),
        next_asn: 1,
    };
    let regions = config.regions.max(1);

    // --- Tier-1 clique: full p2p mesh, spread across regions. ---
    let tier1: Vec<Asn> = (0..config.mix.tier1)
        .map(|i| b.place(AsClass::Tier1, (i % regions) as u8))
        .collect();
    for (i, &x) in tier1.iter().enumerate() {
        for &y in &tier1[i + 1..] {
            b.gt.relationships.insert_p2p(x, y);
        }
    }

    // Provider pools grow as each tier is placed. Base weights encode
    // where customers concentrate on the real Internet: Tier-1 carriers
    // hold by far the largest direct customer bases, and preferential
    // attachment amplifies whoever starts heavy — so the top of the
    // hierarchy must start heaviest for transit degrees to come out
    // monotone in tier (the property the ASRank algorithm leans on).
    let mut tier1_pool = ProviderPool::new(regions);
    for &t in &tier1 {
        tier1_pool.add(t, b.regions[&t], 12.0);
    }

    // --- Large transit: customers of the clique, peer among themselves. ---
    let large: Vec<Asn> = (0..config.mix.large_transit)
        .map(|_| {
            let region = b.rng.random_range(0..regions) as u8;
            b.place(AsClass::LargeTransit, region)
        })
        .collect();
    for &a in &large {
        let n = provider_count(&mut b.rng, config.mean_providers_transit);
        attach_providers(&mut b, &mut tier1_pool, a, n, config.cross_region_prob);
    }
    peer_triangular(&mut b, &large, config.peer_prob_large, mode);

    // --- Mid transit: customers of large transit (sometimes the clique). ---
    let mut upper_pool = ProviderPool::new(regions);
    for &t in &tier1 {
        upper_pool.add(t, b.regions[&t], 12.0);
    }
    for &l in &large {
        upper_pool.add(l, b.regions[&l], 5.0);
    }
    let mid: Vec<Asn> = (0..config.mix.mid_transit)
        .map(|_| {
            let region = b.rng.random_range(0..regions) as u8;
            b.place(AsClass::MidTransit, region)
        })
        .collect();
    for &m in &mid {
        let n = provider_count(&mut b.rng, config.mean_providers_transit);
        attach_providers(&mut b, &mut upper_pool, m, n, config.cross_region_prob);
    }
    // Same-region mid-transit peering.
    let mut by_region: Vec<Vec<Asn>> = vec![Vec::new(); regions];
    for &m in &mid {
        by_region[b.regions[&m] as usize].push(m);
    }
    for bucket in &by_region {
        peer_triangular(&mut b, bucket, config.peer_prob_mid, mode);
    }

    // --- Small transit: customers of mid (occasionally large) transit. ---
    let mut transit_pool = ProviderPool::new(regions);
    for &t in &tier1 {
        transit_pool.add(t, b.regions[&t], 12.0);
    }
    for &l in &large {
        transit_pool.add(l, b.regions[&l], 5.0);
    }
    for &m in &mid {
        transit_pool.add(m, b.regions[&m], 2.0);
    }
    let small: Vec<Asn> = (0..config.mix.small_transit)
        .map(|_| {
            let region = b.rng.random_range(0..regions) as u8;
            b.place(AsClass::SmallTransit, region)
        })
        .collect();
    for &s in &small {
        let n = provider_count(&mut b.rng, config.mean_providers_transit);
        attach_providers(&mut b, &mut transit_pool, s, n, config.cross_region_prob);
    }

    // --- Content networks: shallow transit, dense peering. ---
    let content: Vec<Asn> = (0..config.mix.content)
        .map(|_| {
            let region = b.rng.random_range(0..regions) as u8;
            b.place(AsClass::Content, region)
        })
        .collect();
    for &c in &content {
        let n = provider_count(&mut b.rng, config.mean_providers_stub);
        attach_providers(&mut b, &mut transit_pool, c, n, config.cross_region_prob);
    }
    // Content peers with transit (and other content) in its region. Each
    // content AS sits in its own region bucket, so the candidate space is
    // the bucket minus itself — the fast decode skips the self slot in
    // closed form, the reference materializes the filtered list.
    let mut transit_by_region: Vec<Vec<Asn>> = vec![Vec::new(); regions];
    let mut bucket_pos: HashMap<Asn, usize> = HashMap::new();
    for &t in large.iter().chain(&mid).chain(&small).chain(&content) {
        let bucket = &mut transit_by_region[b.regions[&t] as usize];
        bucket_pos.insert(t, bucket.len());
        bucket.push(t);
    }
    for &c in &content {
        let region = b.regions[&c] as usize;
        let bucket = &transit_by_region[region];
        if bucket.len() < 2 {
            continue;
        }
        let hits = bernoulli_positions(&mut b.rng, bucket.len() - 1, config.peer_prob_content);
        match mode {
            EdgeSampling::Fast => {
                let cpos = bucket_pos[&c];
                for k in hits {
                    let idx = if k >= cpos { k + 1 } else { k };
                    maybe_peer(&mut b, c, bucket[idx]);
                }
            }
            EdgeSampling::Reference => {
                let candidates: Vec<Asn> = bucket.iter().copied().filter(|&t| t != c).collect();
                for k in hits {
                    maybe_peer(&mut b, c, candidates[k]);
                }
            }
        }
    }

    // --- Stubs: customers of small/mid transit, preferential attachment. ---
    let mut edge_pool = ProviderPool::new(regions);
    for &t in &tier1 {
        edge_pool.add(t, b.regions[&t], 12.0);
    }
    for &l in &large {
        edge_pool.add(l, b.regions[&l], 4.0);
    }
    for &m in &mid {
        edge_pool.add(m, b.regions[&m], 3.0);
    }
    for &s in &small {
        edge_pool.add(s, b.regions[&s], 2.0);
    }
    let stubs: Vec<Asn> = (0..config.mix.stubs)
        .map(|_| {
            let region = b.rng.random_range(0..regions) as u8;
            b.place(AsClass::Stub, region)
        })
        .collect();
    for &s in &stubs {
        let n = provider_count(&mut b.rng, config.mean_providers_stub);
        attach_providers(&mut b, &mut edge_pool, s, n, config.cross_region_prob);
    }

    // --- IXPs: route-server ASNs + fabric peering among members. ---
    let mut ixps = Vec::with_capacity(config.ixp.count);
    for i in 0..config.ixp.count {
        let region = (i % regions) as u8;
        let rs = b.place(AsClass::IxpRouteServer, region);
        let pool: Vec<Asn> = transit_by_region[region as usize].clone();
        let want = config.ixp.mean_members.min(pool.len());
        let mut members: Vec<Asn> = pool;
        // Partial Fisher-Yates: shuffle the first `want` positions.
        for j in 0..want {
            let k = b.rng.random_range(j..members.len());
            members.swap(j, k);
        }
        members.truncate(want);
        peer_triangular(&mut b, &members, config.ixp.peering_prob, mode);
        ixps.push(Ixp {
            route_server: rs,
            region,
            members,
        });
    }

    // --- Siblings: a few stub pairs under common ownership. ---
    let sibling_count = ((config.mix.total() as f64) * config.sibling_fraction).round() as usize;
    for _ in 0..sibling_count {
        if stubs.len() < 2 {
            break;
        }
        let x = stubs[b.rng.random_range(0..stubs.len())];
        let y = stubs[b.rng.random_range(0..stubs.len())];
        if x != y && b.gt.relationships.get(x, y).is_none() {
            b.gt.relationships.insert_s2s(x, y);
        }
    }

    // --- Prefix allocation: aligned blocks from 11.0.0.0 upward. ---
    allocate_prefixes(&mut b, config);

    GeneratedTopology {
        ground_truth: b.gt,
        regions: b.regions,
        ixps,
        config: config.clone(),
        seed,
    }
}

/// Class-dependent multiplier on the stub prefix mean.
fn prefix_multiplier(class: AsClass) -> f64 {
    match class {
        AsClass::Tier1 => 24.0,
        AsClass::LargeTransit => 16.0,
        AsClass::MidTransit => 8.0,
        AsClass::SmallTransit => 4.0,
        AsClass::Content => 6.0,
        AsClass::Stub => 1.0,
        AsClass::IxpRouteServer => 0.0,
    }
}

fn allocate_prefixes(b: &mut Builder, config: &TopologyConfig) {
    // Cursor-based aligned allocator starting at 11.0.0.0; every AS gets
    // at least one prefix except IXP route servers.
    let mut cursor: u32 = 11 << 24;
    let mut ases: Vec<Asn> = b.gt.classes.keys().copied().collect();
    ases.sort(); // deterministic allocation order
    for asn in ases {
        let class = b.gt.classes[&asn];
        if class == AsClass::IxpRouteServer {
            continue;
        }
        let mean = config.mean_prefixes_stub * prefix_multiplier(class);
        let count = (1 + poisson(&mut b.rng, (mean - 1.0).max(0.0))).min(64);
        let mut prefixes = Vec::with_capacity(count);
        for _ in 0..count {
            // Lengths between /16 (rare, big networks) and /24 (common).
            let len: u8 = match b.rng.random_range(0..10u32) {
                0 => 16,
                1..=2 => 20,
                3..=5 => 22,
                _ => 24,
            };
            let block = 1u32 << (32 - len as u32);
            cursor = cursor.div_ceil(block) * block; // align
            let p = Ipv4Prefix::new(cursor, len).expect("len <= 24");
            cursor = cursor.wrapping_add(block);
            prefixes.push(p);
        }
        b.gt.prefixes.insert(asn, prefixes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(&TopologyConfig::tiny(), 42);
        let c = generate(&TopologyConfig::tiny(), 42);
        let mut la: Vec<_> = a.ground_truth.relationships.iter().collect();
        let mut lc: Vec<_> = c.ground_truth.relationships.iter().collect();
        la.sort_by_key(|(l, _)| (l.a, l.b));
        lc.sort_by_key(|(l, _)| (l.a, l.b));
        assert_eq!(la, lc);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::tiny(), 1);
        let b = generate(&TopologyConfig::tiny(), 2);
        let la: std::collections::HashSet<_> = a
            .ground_truth
            .relationships
            .iter()
            .map(|(l, _)| l)
            .collect();
        let lb: std::collections::HashSet<_> = b
            .ground_truth
            .relationships
            .iter()
            .map(|(l, _)| l)
            .collect();
        assert_ne!(la, lb);
    }

    #[test]
    fn invariants_hold_small() {
        for seed in 0..5 {
            let t = generate(&TopologyConfig::small(), seed);
            let problems = t.ground_truth.check_invariants();
            assert!(problems.is_empty(), "seed {seed}: {problems:?}");
        }
    }

    #[test]
    fn class_counts_match_config() {
        let cfg = TopologyConfig::small();
        let t = generate(&cfg, 3);
        let gt = &t.ground_truth;
        assert_eq!(gt.ases_of_class(AsClass::Tier1).len(), cfg.mix.tier1);
        assert_eq!(gt.ases_of_class(AsClass::Stub).len(), cfg.mix.stubs);
        assert_eq!(
            gt.ases_of_class(AsClass::IxpRouteServer).len(),
            cfg.ixp.count
        );
        assert_eq!(gt.as_count(), cfg.mix.total() + cfg.ixp.count);
    }

    #[test]
    fn every_non_ixp_as_originates_a_prefix() {
        let t = generate(&TopologyConfig::tiny(), 9);
        for (&asn, &class) in &t.ground_truth.classes {
            let has = t
                .ground_truth
                .prefixes
                .get(&asn)
                .map(|v| !v.is_empty())
                .unwrap_or(false);
            if class == AsClass::IxpRouteServer {
                assert!(!has, "route server {asn} should not originate");
            } else {
                assert!(has, "{asn} ({class:?}) originates nothing");
            }
        }
    }

    #[test]
    fn prefixes_do_not_overlap() {
        let t = generate(&TopologyConfig::small(), 5);
        let mut all: Vec<Ipv4Prefix> = t
            .ground_truth
            .prefixes
            .values()
            .flatten()
            .copied()
            .collect();
        all.sort();
        for w in all.windows(2) {
            assert!(
                !w[0].contains(&w[1]) && !w[1].contains(&w[0]),
                "{} overlaps {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let t = generate(&TopologyConfig::small(), 11);
        let adj = t.ground_truth.relationships.adjacency();
        for &s in &t.ground_truth.ases_of_class(AsClass::Stub) {
            let customers = adj
                .get(&s)
                .map(|n| {
                    n.iter()
                        .filter(|&&(_, o)| o == Orientation::Customer)
                        .count()
                })
                .unwrap_or(0);
            assert_eq!(customers, 0, "stub {s} has customers");
        }
    }

    #[test]
    fn transit_degree_distribution_is_skewed() {
        // Preferential attachment should produce a heavy-tailed customer
        // distribution: the busiest transit AS should have many times the
        // median customer count.
        let t = generate(&TopologyConfig::small(), 13);
        let adj = t.ground_truth.relationships.adjacency();
        let mut customer_counts: Vec<usize> = t
            .ground_truth
            .classes
            .iter()
            .filter(|(_, c)| c.is_transit())
            .map(|(&a, _)| {
                adj.get(&a)
                    .map(|n| {
                        n.iter()
                            .filter(|&&(_, o)| o == Orientation::Customer)
                            .count()
                    })
                    .unwrap_or(0)
            })
            .collect();
        customer_counts.sort_unstable();
        let max = *customer_counts.last().unwrap();
        let median = customer_counts[customer_counts.len() / 2];
        assert!(
            max >= median.max(1) * 4,
            "expected skew, max={max} median={median}"
        );
    }

    #[test]
    fn ixps_have_members() {
        let t = generate(&TopologyConfig::small(), 17);
        assert_eq!(t.ixps.len(), t.config.ixp.count);
        for ixp in &t.ixps {
            assert!(!ixp.members.is_empty());
            assert_eq!(
                t.ground_truth.classes[&ixp.route_server],
                AsClass::IxpRouteServer
            );
        }
    }

    #[test]
    fn tri_decode_matches_nested_loop() {
        for n in 2usize..40 {
            let mut k = 0usize;
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(tri_decode(n, k), (i, j), "n={n} k={k}");
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn bernoulli_positions_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(bernoulli_positions(&mut rng, 0, 0.5).is_empty());
        assert!(bernoulli_positions(&mut rng, 100, 0.0).is_empty());
        assert!(bernoulli_positions(&mut rng, 100, -1.0).is_empty());
        assert_eq!(
            bernoulli_positions(&mut rng, 5, 1.0),
            vec![0, 1, 2, 3, 4],
            "p >= 1 selects every position"
        );
        let hits = bernoulli_positions(&mut rng, 1000, 0.3);
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(hits.iter().all(|&k| k < 1000), "in range");
    }

    #[test]
    fn bernoulli_positions_hit_rate_matches_p() {
        let mut rng = StdRng::seed_from_u64(7);
        let (n, p, rounds) = (10_000usize, 0.05f64, 20);
        let total: usize = (0..rounds)
            .map(|_| bernoulli_positions(&mut rng, n, p).len())
            .sum();
        let rate = total as f64 / (n * rounds) as f64;
        assert!((rate - p).abs() < 0.005, "hit rate {rate} vs p={p}");
    }

    #[test]
    fn poisson_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "poisson mean {mean}");
    }
}
