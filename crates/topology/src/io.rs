//! Topology bundle persistence.
//!
//! A [`GeneratedTopology`] is saved as a directory of line-oriented text
//! files, deliberately shaped like the artifacts CAIDA publishes so the
//! bundle is greppable and diffable:
//!
//! ```text
//! <dir>/as-rel.txt    provider|customer|-1 / peer|peer|0 / sib|sib|2
//! <dir>/classes.txt   asn|class|region
//! <dir>/prefixes.txt  asn|prefix
//! <dir>/ixps.txt      route_server_asn|region|member,member,…
//! <dir>/meta.txt      seed and config provenance (informational)
//! ```

use crate::generator::{GeneratedTopology, Ixp};
use crate::TopologyConfig;
use asrank_types::prelude::*;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised while loading or saving a topology bundle.
#[derive(Debug)]
pub enum BundleError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line in one of the bundle files.
    Malformed {
        /// Which file.
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "I/O error: {e}"),
            BundleError::Malformed {
                file,
                line,
                content,
            } => write!(f, "malformed {file} line {line}: {content:?}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

fn class_name(c: AsClass) -> &'static str {
    match c {
        AsClass::Tier1 => "tier1",
        AsClass::LargeTransit => "large-transit",
        AsClass::MidTransit => "mid-transit",
        AsClass::SmallTransit => "small-transit",
        AsClass::Stub => "stub",
        AsClass::Content => "content",
        AsClass::IxpRouteServer => "ixp-rs",
    }
}

fn class_from(s: &str) -> Option<AsClass> {
    Some(match s {
        "tier1" => AsClass::Tier1,
        "large-transit" => AsClass::LargeTransit,
        "mid-transit" => AsClass::MidTransit,
        "small-transit" => AsClass::SmallTransit,
        "stub" => AsClass::Stub,
        "content" => AsClass::Content,
        "ixp-rs" => AsClass::IxpRouteServer,
        _ => return None,
    })
}

/// Save a topology bundle into `dir` (created if missing).
///
/// Records stream through buffered writers as they are produced: the
/// only side buffers are compact sort indexes (12-byte link triples and
/// a sorted ASN list), never formatted rows or a second copy of the
/// graph — at the 400k-AS tier the old row-vector approach held the
/// whole topology twice while writing.
pub fn save_bundle(topo: &GeneratedTopology, dir: &Path) -> Result<(), BundleError> {
    std::fs::create_dir_all(dir)?;

    // as-rel.txt via the core-compatible format (inline writer to avoid a
    // dependency cycle with asrank-core). Deterministic output needs a
    // global sort; the index holds packed triples, not rows.
    let mut rel = BufWriter::new(std::fs::File::create(dir.join("as-rel.txt"))?);
    writeln!(
        rel,
        "# ground truth | provider|customer|-1, peer|peer|0, sibling|sibling|2"
    )?;
    let mut lines: Vec<(u32, u32, i8)> = Vec::with_capacity(topo.ground_truth.link_count());
    for (link, r) in topo.ground_truth.relationships.iter() {
        lines.push(match r {
            LinkRel::AC2pB => (link.b.0, link.a.0, -1),
            LinkRel::AP2cB => (link.a.0, link.b.0, -1),
            LinkRel::P2p => (link.a.0, link.b.0, 0),
            LinkRel::S2s => (link.a.0, link.b.0, 2),
        });
    }
    lines.sort_unstable();
    for (a, b, c) in lines {
        writeln!(rel, "{a}|{b}|{c}")?;
    }
    rel.flush()?;

    // One sorted ASN list drives both classes.txt and prefixes.txt.
    let mut asns: Vec<Asn> = topo.ground_truth.classes.keys().copied().collect();
    asns.sort_unstable();

    let mut classes = BufWriter::new(std::fs::File::create(dir.join("classes.txt"))?);
    writeln!(classes, "# asn|class|region")?;
    for &asn in &asns {
        let class = topo.ground_truth.classes[&asn];
        let region = topo.regions.get(&asn).copied().unwrap_or(0);
        writeln!(classes, "{}|{}|{region}", asn.0, class_name(class))?;
    }
    classes.flush()?;

    let mut prefixes = BufWriter::new(std::fs::File::create(dir.join("prefixes.txt"))?);
    writeln!(prefixes, "# asn|prefix")?;
    let mut per_as: Vec<Ipv4Prefix> = Vec::new();
    for &asn in &asns {
        let Some(ps) = topo.ground_truth.prefixes.get(&asn) else {
            continue;
        };
        per_as.clear();
        per_as.extend_from_slice(ps);
        per_as.sort_unstable();
        for p in &per_as {
            writeln!(prefixes, "{}|{p}", asn.0)?;
        }
    }
    prefixes.flush()?;

    let mut ixps = BufWriter::new(std::fs::File::create(dir.join("ixps.txt"))?);
    writeln!(ixps, "# route_server_asn|region|member,member,…")?;
    for ixp in &topo.ixps {
        write!(ixps, "{}|{}|", ixp.route_server.0, ixp.region)?;
        for (i, m) in ixp.members.iter().enumerate() {
            if i > 0 {
                write!(ixps, ",")?;
            }
            write!(ixps, "{}", m.0)?;
        }
        writeln!(ixps)?;
    }
    ixps.flush()?;

    let mut meta = BufWriter::new(std::fs::File::create(dir.join("meta.txt"))?);
    writeln!(meta, "seed={}", topo.seed)?;
    writeln!(meta, "ases={}", topo.ground_truth.as_count())?;
    writeln!(meta, "links={}", topo.ground_truth.link_count())?;
    meta.flush()?;
    Ok(())
}

fn parse_line_err(file: &'static str, line: usize, content: &str) -> BundleError {
    BundleError::Malformed {
        file,
        line,
        content: content.to_string(),
    }
}

/// Load a topology bundle from `dir`.
///
/// The returned topology carries a default [`TopologyConfig`] (the bundle
/// records provenance in `meta.txt` but the config itself is not
/// round-tripped; nothing downstream of generation needs it).
pub fn load_bundle(dir: &Path) -> Result<GeneratedTopology, BundleError> {
    let mut gt = GroundTruth::default();
    let mut regions = std::collections::HashMap::new();

    // as-rel.txt
    let f = BufReader::new(std::fs::File::open(dir.join("as-rel.txt"))?);
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split('|');
        let (Some(a), Some(b), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(parse_line_err("as-rel.txt", i + 1, &line));
        };
        let (Ok(a), Ok(b), Ok(c)) = (a.parse::<u32>(), b.parse::<u32>(), c.parse::<i8>()) else {
            return Err(parse_line_err("as-rel.txt", i + 1, &line));
        };
        if a == b {
            return Err(parse_line_err("as-rel.txt", i + 1, &line));
        }
        match c {
            -1 => gt.relationships.insert_c2p(Asn(b), Asn(a)),
            0 => gt.relationships.insert_p2p(Asn(a), Asn(b)),
            2 => gt.relationships.insert_s2s(Asn(a), Asn(b)),
            _ => return Err(parse_line_err("as-rel.txt", i + 1, &line)),
        }
    }

    // classes.txt
    let f = BufReader::new(std::fs::File::open(dir.join("classes.txt"))?);
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split('|');
        let (Some(a), Some(c), Some(r)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(parse_line_err("classes.txt", i + 1, &line));
        };
        let (Ok(a), Some(c), Ok(r)) = (a.parse::<u32>(), class_from(c), r.parse::<u8>()) else {
            return Err(parse_line_err("classes.txt", i + 1, &line));
        };
        gt.classes.insert(Asn(a), c);
        regions.insert(Asn(a), r);
    }

    // prefixes.txt
    let f = BufReader::new(std::fs::File::open(dir.join("prefixes.txt"))?);
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split('|');
        let (Some(a), Some(p)) = (parts.next(), parts.next()) else {
            return Err(parse_line_err("prefixes.txt", i + 1, &line));
        };
        let (Ok(a), Ok(p)) = (a.parse::<u32>(), p.parse::<Ipv4Prefix>()) else {
            return Err(parse_line_err("prefixes.txt", i + 1, &line));
        };
        gt.prefixes.entry(Asn(a)).or_default().push(p);
    }

    // ixps.txt
    let mut ixps = Vec::new();
    let f = BufReader::new(std::fs::File::open(dir.join("ixps.txt"))?);
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split('|');
        let (Some(rs), Some(region), Some(members)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(parse_line_err("ixps.txt", i + 1, &line));
        };
        let (Ok(rs), Ok(region)) = (rs.parse::<u32>(), region.parse::<u8>()) else {
            return Err(parse_line_err("ixps.txt", i + 1, &line));
        };
        let members: Result<Vec<Asn>, _> = members
            .split(',')
            .filter(|m| !m.is_empty())
            .map(|m| m.parse::<u32>().map(Asn))
            .collect();
        let Ok(members) = members else {
            return Err(parse_line_err("ixps.txt", i + 1, &line));
        };
        ixps.push(Ixp {
            route_server: Asn(rs),
            region,
            members,
        });
    }

    // meta.txt (informational; tolerate absence of fields)
    let mut seed = 0u64;
    if let Ok(f) = std::fs::File::open(dir.join("meta.txt")) {
        for line in BufReader::new(f).lines() {
            let line = line?;
            if let Some(v) = line.strip_prefix("seed=") {
                seed = v.trim().parse().unwrap_or(0);
            }
        }
    }

    Ok(GeneratedTopology {
        ground_truth: gt,
        regions,
        ixps,
        config: TopologyConfig::default(),
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TopologyConfig};

    #[test]
    fn bundle_roundtrip() {
        let topo = generate(&TopologyConfig::tiny(), 5);
        let dir = std::env::temp_dir().join(format!("asrank_bundle_{}", std::process::id()));
        save_bundle(&topo, &dir).unwrap();
        let back = load_bundle(&dir).unwrap();

        assert_eq!(back.seed, topo.seed);
        assert_eq!(back.ground_truth.as_count(), topo.ground_truth.as_count());
        assert_eq!(
            back.ground_truth.link_count(),
            topo.ground_truth.link_count()
        );
        // Spot-check relationships and classes.
        let mut orig: Vec<_> = topo.ground_truth.relationships.iter().collect();
        let mut got: Vec<_> = back.ground_truth.relationships.iter().collect();
        orig.sort_by_key(|(l, _)| (l.a, l.b));
        got.sort_by_key(|(l, _)| (l.a, l.b));
        assert_eq!(orig, got);
        assert_eq!(back.ground_truth.classes, topo.ground_truth.classes);
        assert_eq!(back.regions, topo.regions);
        assert_eq!(back.ixps.len(), topo.ixps.len());
        // Prefix sets match.
        let count = |t: &GeneratedTopology| t.ground_truth.prefix_count();
        assert_eq!(count(&back), count(&topo));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bundle_bytes_are_deterministic() {
        // Two saves of the same topology must be byte-identical — the
        // streamed writers may only vary where the sort indexes say so.
        let topo = generate(&TopologyConfig::tiny(), 23);
        let base = std::env::temp_dir().join(format!("asrank_bundle_det_{}", std::process::id()));
        let (d1, d2) = (base.join("a"), base.join("b"));
        save_bundle(&topo, &d1).unwrap();
        save_bundle(&topo, &d2).unwrap();
        for f in ["as-rel.txt", "classes.txt", "prefixes.txt", "ixps.txt", "meta.txt"] {
            let a = std::fs::read(d1.join(f)).unwrap();
            let b = std::fs::read(d2.join(f)).unwrap();
            assert_eq!(a, b, "{f} differs between saves");
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn malformed_bundle_is_rejected() {
        let dir = std::env::temp_dir().join(format!("asrank_badbundle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("as-rel.txt"), "1|1|0\n").unwrap();
        std::fs::write(dir.join("classes.txt"), "").unwrap();
        std::fs::write(dir.join("prefixes.txt"), "").unwrap();
        std::fs::write(dir.join("ixps.txt"), "").unwrap();
        let err = load_bundle(&dir).unwrap_err();
        assert!(matches!(
            err,
            BundleError::Malformed {
                file: "as-rel.txt",
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = std::env::temp_dir().join("asrank_nonexistent_bundle_xyz");
        assert!(matches!(load_bundle(&dir), Err(BundleError::Io(_))));
    }
}
