//! Topology configuration and presets.

use serde::{Deserialize, Serialize};

/// How many ASes of each structural class to generate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Tier-1 clique size (the paper's inferred clique had 10–20 members
    /// across snapshots).
    pub tier1: usize,
    /// Large national/international transit providers.
    pub large_transit: usize,
    /// Regional transit providers.
    pub mid_transit: usize,
    /// Small/local transit providers.
    pub small_transit: usize,
    /// Content/CDN networks (dense peering, shallow transit).
    pub content: usize,
    /// Stub (access / enterprise) networks.
    pub stubs: usize,
}

impl ClassMix {
    /// Total AS count across all classes.
    pub fn total(&self) -> usize {
        self.tier1
            + self.large_transit
            + self.mid_transit
            + self.small_transit
            + self.content
            + self.stubs
    }
}

/// Internet-exchange-point modeling parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IxpConfig {
    /// Number of IXPs (each gets a route-server ASN).
    pub count: usize,
    /// Expected members per IXP, drawn from the transit/content population
    /// of the IXP's region.
    pub mean_members: usize,
    /// Probability that any given pair of co-located members peers over
    /// the fabric.
    pub peering_prob: f64,
}

/// Full description of a synthetic topology.
///
/// All probabilities are per-opportunity Bernoulli parameters; all counts
/// are exact. Generation is deterministic given `(config, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Class composition.
    pub mix: ClassMix,
    /// Number of geographic regions; provider selection and peering are
    /// biased toward same-region ASes.
    pub regions: usize,
    /// Probability that a provider choice escapes the chooser's region.
    pub cross_region_prob: f64,
    /// Mean number of providers for multi-homed edge ASes (≥ 1; the
    /// generator draws 1 + Poisson-ish extra homes).
    pub mean_providers_stub: f64,
    /// Mean providers for transit ASes below the clique.
    pub mean_providers_transit: f64,
    /// Probability that two large-transit ASes peer.
    pub peer_prob_large: f64,
    /// Probability that two same-region mid-transit ASes peer.
    pub peer_prob_mid: f64,
    /// Probability that a content AS peers with any given transit AS of
    /// its region (the flattening knob).
    pub peer_prob_content: f64,
    /// IXP modeling.
    pub ixp: IxpConfig,
    /// Mean prefixes originated by a stub (transit ASes originate more,
    /// scaled by class).
    pub mean_prefixes_stub: f64,
    /// Fraction of adjacent AS pairs (siblings) under common ownership.
    pub sibling_fraction: f64,
}

impl TopologyConfig {
    /// ~60-AS toy topology for unit tests and doc examples.
    pub fn tiny() -> Self {
        TopologyConfig {
            mix: ClassMix {
                tier1: 3,
                large_transit: 4,
                mid_transit: 8,
                small_transit: 10,
                content: 5,
                stubs: 30,
            },
            regions: 2,
            cross_region_prob: 0.2,
            mean_providers_stub: 1.5,
            mean_providers_transit: 1.8,
            peer_prob_large: 0.5,
            peer_prob_mid: 0.2,
            peer_prob_content: 0.15,
            ixp: IxpConfig {
                count: 1,
                mean_members: 6,
                peering_prob: 0.3,
            },
            mean_prefixes_stub: 1.2,
            sibling_fraction: 0.01,
        }
    }

    /// ~1 000-AS topology: fast enough for every test, large enough for
    /// stable statistics.
    pub fn small() -> Self {
        TopologyConfig {
            mix: ClassMix {
                tier1: 8,
                large_transit: 15,
                mid_transit: 60,
                small_transit: 120,
                content: 50,
                stubs: 750,
            },
            regions: 4,
            cross_region_prob: 0.15,
            mean_providers_stub: 1.6,
            mean_providers_transit: 1.9,
            peer_prob_large: 0.35,
            peer_prob_mid: 0.1,
            peer_prob_content: 0.06,
            ixp: IxpConfig {
                count: 3,
                mean_members: 25,
                peering_prob: 0.15,
            },
            mean_prefixes_stub: 1.3,
            sibling_fraction: 0.01,
        }
    }

    /// ~10 000-AS topology for benches and mid-scale experiments.
    pub fn medium() -> Self {
        TopologyConfig {
            mix: ClassMix {
                tier1: 11,
                large_transit: 40,
                mid_transit: 400,
                small_transit: 1_100,
                content: 450,
                stubs: 8_000,
            },
            regions: 6,
            cross_region_prob: 0.12,
            mean_providers_stub: 1.7,
            mean_providers_transit: 2.0,
            peer_prob_large: 0.3,
            peer_prob_mid: 0.035,
            peer_prob_content: 0.012,
            ixp: IxpConfig {
                count: 8,
                mean_members: 80,
                peering_prob: 0.05,
            },
            mean_prefixes_stub: 1.4,
            sibling_fraction: 0.008,
        }
    }

    /// ≈ 42 000-AS topology mimicking the April 2013 Internet the paper
    /// measured (42 k ASes, ~87 % stubs, clique of ~13).
    pub fn internet_2013() -> Self {
        TopologyConfig {
            mix: ClassMix {
                tier1: 13,
                large_transit: 90,
                mid_transit: 1_400,
                small_transit: 3_900,
                content: 1_600,
                stubs: 35_000,
            },
            regions: 8,
            cross_region_prob: 0.1,
            mean_providers_stub: 1.8,
            mean_providers_transit: 2.1,
            peer_prob_large: 0.25,
            peer_prob_mid: 0.012,
            peer_prob_content: 0.004,
            ixp: IxpConfig {
                count: 20,
                mean_members: 180,
                peering_prob: 0.02,
            },
            mean_prefixes_stub: 1.5,
            sibling_fraction: 0.006,
        }
    }

    /// ≈ 400 000-AS stress topology — ten times the 2013 Internet, for
    /// forward-looking scaling claims ("does it stay linear past the
    /// real table?"). Class shares follow [`TopologyConfig::internet_2013`]
    /// with the clique held at paper size; peering probabilities shrink
    /// so per-AS adjacency stays realistic as the population grows.
    pub fn ten_x() -> Self {
        TopologyConfig {
            mix: ClassMix {
                tier1: 13,
                large_transit: 900,
                mid_transit: 14_000,
                small_transit: 39_000,
                content: 16_000,
                stubs: 330_000,
            },
            regions: 12,
            cross_region_prob: 0.1,
            mean_providers_stub: 1.8,
            mean_providers_transit: 2.1,
            peer_prob_large: 0.08,
            peer_prob_mid: 0.0012,
            peer_prob_content: 0.0004,
            ixp: IxpConfig {
                count: 40,
                mean_members: 300,
                peering_prob: 0.01,
            },
            mean_prefixes_stub: 1.5,
            sibling_fraction: 0.006,
        }
    }

    /// Scale every class count by `factor`, keeping probabilities; useful
    /// for size-sweep benches.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        let mut out = self.clone();
        out.mix = ClassMix {
            tier1: self.mix.tier1.clamp(3, 20), // clique size does not scale
            large_transit: scale(self.mix.large_transit),
            mid_transit: scale(self.mix.mid_transit),
            small_transit: scale(self.mix.small_transit),
            content: scale(self.mix.content),
            stubs: scale(self.mix.stubs),
        };
        out
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        assert_eq!(TopologyConfig::tiny().mix.total(), 60);
        assert!(TopologyConfig::internet_2013().mix.total() > 40_000);
    }

    #[test]
    fn presets_have_majority_stubs() {
        for cfg in [
            TopologyConfig::small(),
            TopologyConfig::medium(),
            TopologyConfig::internet_2013(),
        ] {
            let total = cfg.mix.total();
            assert!(
                cfg.mix.stubs as f64 >= 0.7 * total as f64,
                "stub share too low in {cfg:?}"
            );
        }
    }

    #[test]
    fn scaled_keeps_clique_bounded() {
        let big = TopologyConfig::small().scaled(10.0);
        assert!(big.mix.tier1 <= 20);
        assert_eq!(big.mix.stubs, 7_500);
        let tiny = TopologyConfig::small().scaled(0.001);
        assert!(tiny.mix.stubs >= 1, "scaling never produces empty classes");
    }
}
