//! Summary statistics over generated (or inferred) topologies.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Degree summary for one population of ASes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Median degree.
    pub median: usize,
    /// Arithmetic mean degree.
    pub mean: f64,
    /// 95th percentile.
    pub p95: usize,
    /// Largest degree.
    pub max: usize,
}

impl DegreeStats {
    /// Summarize a list of degrees (empty input gives all-zero stats).
    pub fn from_degrees(mut degrees: Vec<usize>) -> Self {
        if degrees.is_empty() {
            return DegreeStats::default();
        }
        degrees.sort_unstable();
        let n = degrees.len();
        DegreeStats {
            min: degrees[0],
            median: degrees[n / 2],
            mean: degrees.iter().sum::<usize>() as f64 / n as f64,
            p95: degrees[(n * 95 / 100).min(n - 1)],
            max: degrees[n - 1],
        }
    }
}

/// Topology-level summary used by reports and tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Total AS count.
    pub as_count: usize,
    /// Total link count.
    pub link_count: usize,
    /// Links by kind: (c2p, p2p, s2s).
    pub link_kinds: (usize, usize, usize),
    /// ASes per class.
    pub class_counts: HashMap<String, usize>,
    /// Node degree (all neighbors).
    pub node_degree: DegreeStats,
    /// Customer degree of transit ASes only.
    pub customer_degree: DegreeStats,
    /// Fraction of ASes with zero customers (edge share).
    pub edge_fraction: f64,
}

impl TopologyStats {
    /// Compute stats for a ground-truth topology.
    pub fn compute(gt: &GroundTruth) -> Self {
        let adj = gt.relationships.adjacency();
        let node_degrees: Vec<usize> = gt
            .classes
            .keys()
            .map(|a| adj.get(a).map(Vec::len).unwrap_or(0))
            .collect();

        let customer_count = |a: &Asn| {
            adj.get(a)
                .map(|n| {
                    n.iter()
                        .filter(|&&(_, o)| o == Orientation::Customer)
                        .count()
                })
                .unwrap_or(0)
        };
        let customer_degrees: Vec<usize> = gt
            .classes
            .iter()
            .filter(|(_, c)| c.is_transit())
            .map(|(a, _)| customer_count(a))
            .collect();

        let edge = gt.classes.keys().filter(|a| customer_count(a) == 0).count();

        let mut class_counts: HashMap<String, usize> = HashMap::new();
        for class in gt.classes.values() {
            *class_counts.entry(format!("{class:?}")).or_default() += 1;
        }

        TopologyStats {
            as_count: gt.as_count(),
            link_count: gt.link_count(),
            link_kinds: gt.relationships.counts(),
            class_counts,
            node_degree: DegreeStats::from_degrees(node_degrees),
            customer_degree: DegreeStats::from_degrees(customer_degrees),
            edge_fraction: edge as f64 / gt.as_count().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TopologyConfig};

    #[test]
    fn degree_stats_basics() {
        let s = DegreeStats::from_degrees(vec![1, 2, 3, 4, 100]);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 3);
        assert_eq!(s.max, 100);
        assert!((s.mean - 22.0).abs() < 1e-9);
        assert_eq!(DegreeStats::from_degrees(vec![]).max, 0);
    }

    #[test]
    fn stats_on_generated_topology() {
        let t = generate(&TopologyConfig::small(), 1);
        let s = TopologyStats::compute(&t.ground_truth);
        assert_eq!(s.as_count, t.ground_truth.as_count());
        assert_eq!(s.link_count, t.ground_truth.link_count());
        // Most of the Internet is edge.
        assert!(s.edge_fraction > 0.6, "edge fraction {}", s.edge_fraction);
        // c2p dominates links in a transit hierarchy.
        assert!(s.link_kinds.0 > s.link_kinds.1 / 4);
        assert!(s.node_degree.max >= s.node_degree.median);
    }
}
