//! Named experiment scales, shared by the CLI, the bench harness, and
//! the report tooling — one registry of tier names, so a new tier (or a
//! renamed one) propagates to every `--scale` flag at once.

use crate::config::TopologyConfig;
use std::fmt;

/// Experiment scale, mapped to topology presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~60 ASes — smoke tests.
    Tiny,
    /// ~1 000 ASes — default for reports.
    Small,
    /// ~10 000 ASes.
    Medium,
    /// ~42 000 ASes (the paper's 2013 Internet). Destination-sampled.
    Internet,
    /// ~400 000 ASes — ten times the 2013 Internet, the forward-looking
    /// stress tier. Destination-sampled.
    TenX,
}

/// A `--scale` string that names no known tier. Carries the offending
/// input and renders the full tier list, so a typo is distinguishable
/// from an unset flag and the caller never has to hard-code the names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleParseError {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for ScaleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scale {:?} (valid tiers: {})",
            self.input,
            Scale::NAMES.join("|")
        )
    }
}

impl std::error::Error for ScaleParseError {}

impl Scale {
    /// Every valid tier name, in ascending size order — the single
    /// source for usage strings and error messages.
    pub const NAMES: [&'static str; 5] = ["tiny", "small", "medium", "internet", "tenx"];

    /// Parse from a CLI string; the error lists the valid tier names.
    pub fn parse(s: &str) -> Result<Scale, ScaleParseError> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "internet" => Ok(Scale::Internet),
            "tenx" => Ok(Scale::TenX),
            _ => Err(ScaleParseError {
                input: s.to_string(),
            }),
        }
    }

    /// The topology preset for this scale.
    pub fn topology(&self) -> TopologyConfig {
        match self {
            Scale::Tiny => TopologyConfig::tiny(),
            Scale::Small => TopologyConfig::small(),
            Scale::Medium => TopologyConfig::medium(),
            Scale::Internet => TopologyConfig::internet_2013(),
            Scale::TenX => TopologyConfig::ten_x(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_round_trips() {
        for name in Scale::NAMES {
            let scale = Scale::parse(name).expect("listed names must parse");
            assert!(scale.topology().mix.total() > 0);
        }
    }

    #[test]
    fn unknown_names_report_the_tier_list() {
        let err = Scale::parse("big").unwrap_err();
        assert_eq!(err.input, "big");
        let msg = err.to_string();
        for name in Scale::NAMES {
            assert!(msg.contains(name), "{msg:?} must list {name}");
        }
    }

    #[test]
    fn tiers_ascend_in_size() {
        let totals: Vec<usize> = Scale::NAMES
            .iter()
            .map(|n| Scale::parse(n).unwrap().topology().mix.total())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] < w[1]), "{totals:?}");
    }
}
