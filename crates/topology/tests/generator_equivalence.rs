//! Pins the production generator (closed-form edge-sample decode)
//! bit-identical to the retained reference generator (materialized
//! candidate lists) across scales and seeds.
//!
//! Both paths draw randomness through the shared geometric
//! skip-sampler, so any divergence here means the *decode* — triangular
//! index math, self-slot skipping, visit order — disagrees with the
//! oracle. Full-topology equality is asserted: relationships, classes,
//! regions, prefixes, and IXP membership.

use as_topology_gen::{generate, generate_reference, GeneratedTopology, TopologyConfig};
use proptest::prelude::*;

fn assert_topologies_equal(fast: &GeneratedTopology, reference: &GeneratedTopology) {
    let mut lf: Vec<_> = fast.ground_truth.relationships.iter().collect();
    let mut lr: Vec<_> = reference.ground_truth.relationships.iter().collect();
    lf.sort_by_key(|(l, _)| (l.a, l.b));
    lr.sort_by_key(|(l, _)| (l.a, l.b));
    assert_eq!(lf, lr, "relationship maps diverge");
    assert_eq!(
        fast.ground_truth.classes, reference.ground_truth.classes,
        "class assignments diverge"
    );
    assert_eq!(
        fast.ground_truth.prefixes, reference.ground_truth.prefixes,
        "prefix allocations diverge"
    );
    assert_eq!(fast.regions, reference.regions, "regions diverge");
    let ixp_key = |t: &GeneratedTopology| -> Vec<(u32, u8, Vec<u32>)> {
        t.ixps
            .iter()
            .map(|i| {
                (
                    i.route_server.0,
                    i.region,
                    i.members.iter().map(|m| m.0).collect(),
                )
            })
            .collect()
    };
    assert_eq!(ixp_key(fast), ixp_key(reference), "IXPs diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fast_matches_reference_tiny(seed in 0u64..10_000) {
        let cfg = TopologyConfig::tiny();
        assert_topologies_equal(&generate(&cfg, seed), &generate_reference(&cfg, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fast_matches_reference_small(seed in 0u64..10_000) {
        let cfg = TopologyConfig::small();
        assert_topologies_equal(&generate(&cfg, seed), &generate_reference(&cfg, seed));
    }
}

proptest! {
    // Medium is ~10k ASes; a few cases keep the suite fast while still
    // exercising multi-region buckets far larger than tiny/small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn fast_matches_reference_medium(seed in 0u64..10_000) {
        let cfg = TopologyConfig::medium();
        assert_topologies_equal(&generate(&cfg, seed), &generate_reference(&cfg, seed));
    }
}
