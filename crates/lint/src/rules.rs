//! The file-local rules (L001–L005) and the shared rule table. Each
//! local rule is a line-oriented pattern check over [`lexer::strip`]ped
//! text, scoped to the files where the property matters, with
//! `// lint: allow(<slug>, <reason>)` as the escape hatch. The
//! cross-file rules (L006–L009) live in [`crate::semantic`] and run over
//! a whole-workspace item index.
//!
//! These are deliberately token-level heuristics, not a type checker:
//! they cannot see through method calls (`rels.c2p_pairs()` iterating an
//! internal map) or infer the type of destructured bindings. The scope is
//! "catch the patterns that have actually bitten this codebase", and the
//! semantic auditor (`asrank audit`) covers the dynamic side.

use crate::lexer::{self, Stripped};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `L001`.
    pub rule: &'static str,
    /// Rule slug used in allow-annotations, e.g. `nondeterministic-iter`.
    pub slug: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of this specific violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Static description of a rule, for `--list-rules` and report footers.
pub struct RuleInfo {
    /// Rule id (`L001`..`L009`, plus the `L000` strict meta-check).
    pub id: &'static str,
    /// Annotation slug.
    pub slug: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// How to fix or annotate.
    pub help: &'static str,
}

/// The strict-mode meta-check on the annotations themselves: every
/// `// lint: allow(..)` must name a known slug and carry a reason. Not
/// part of [`RULES`] because it cannot be allow-annotated away.
pub const META_RULE: RuleInfo = RuleInfo {
    id: "L000",
    slug: "annotation",
    summary: "allow-annotation without a reason, or with an unknown rule slug",
    help: "write `// lint: allow(<slug>, <reason>)` with a slug from --list-rules and a \
           reason stating why the exception is sound",
};

/// All rules, in id order.
pub const RULES: [RuleInfo; 9] = [
    RuleInfo {
        id: "L001",
        slug: "nondeterministic-iter",
        summary: "HashMap/HashSet iteration in determinism-critical modules",
        help: "sort the iterated result (a `.sort*` within the next few lines clears the \
               finding), drain into a BTree collection, or annotate \
               `// lint: allow(nondeterministic-iter, <reason>)`",
    },
    RuleInfo {
        id: "L002",
        slug: "panics",
        summary: "unwrap()/expect()/panic! in crates/core non-test code",
        help: "return a Result, restructure so the invariant is visible to the compiler, or \
               annotate `// lint: allow(panics, <invariant that makes this unreachable>)`",
    },
    RuleInfo {
        id: "L003",
        slug: "relaxed-ordering",
        summary: "Ordering::Relaxed outside core/src/par.rs",
        help: "atomics with Relaxed ordering are only audited in par.rs; use the helpers there \
               or annotate `// lint: allow(relaxed-ordering, <reason>)`",
    },
    RuleInfo {
        id: "L004",
        slug: "missing-doc",
        summary: "pub fn without a doc comment in crates/core or crates/types",
        help: "add a `///` doc comment (or `#[doc = ...]`) above the function",
    },
    RuleInfo {
        id: "L005",
        slug: "narrowing-cast",
        summary: "narrowing `as` cast on ASN/id-domain values outside the interner",
        help: "route the conversion through `asrank_types::asn::dense_id` (checked) or widen \
               the target type; the interner (types/src/asn.rs) is the one place allowed to \
               mint ids with a raw cast",
    },
    RuleInfo {
        id: "L006",
        slug: "fp-excluded",
        summary: "config field not mixed into any registered stage fingerprint",
        help: "read the field from an fp_* function registered as `cfg_fp:` in the stage \
               table (crates/core/src/engine.rs), or annotate the field \
               `// lint: allow(fp-excluded, <why it cannot change stage outputs>)`",
    },
    RuleInfo {
        id: "L007",
        slug: "unsafe-contract",
        summary: "unsafe outside allowlisted modules, or without an adjacent SAFETY: comment",
        help: "keep unsafety inside the audited modules (serve/src/mmap.rs, the zero-alloc \
               test allocator) and give every `unsafe` a `// SAFETY:` comment on the same \
               line or directly above",
    },
    RuleInfo {
        id: "L008",
        slug: "atomics",
        summary: "Release store with no Acquire load in its compilation unit, or Relaxed in tests",
        help: "pair every `store(…, Release)` with a `load(Acquire)` on the same receiver \
               in the same crate/test tree, and annotate genuinely order-free test counters \
               `// lint: allow(atomics, <reason>)`",
    },
    RuleInfo {
        id: "L009",
        slug: "codec-kind",
        summary: "artifact kind tag without encode, decode, and view coverage",
        help: "give every `u16` tag in `persist::kind` an `Encoder::new(kind::X)` site, a \
               decode match arm (or `Decoder::open`), and a borrowed-view reference in \
               persist/view.rs — or remove the dead tag",
    },
];

/// Files/prefixes where L001 (deterministic iteration) is enforced.
/// Entries ending in `/` are prefixes; others are exact paths.
const DETERMINISM_CRITICAL: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/pipeline/",
    "crates/core/src/pipeline.rs",
    "crates/core/src/cone.rs",
    "crates/core/src/delta.rs",
    "crates/core/src/par.rs",
    "crates/core/src/patharena.rs",
    "crates/core/src/persist/",
    "crates/serve/src/",
    "crates/types/src/codec.rs",
    "crates/mrt/src/batch.rs",
    "crates/mrt/src/scan.rs",
    "crates/bgpsim/src/propagate.rs",
];

/// Per-rule path allowlists: files exempt even though they fall in the
/// rule's scope.
const ALLOWLIST: &[(&str, &[&str])] = &[
    ("L003", &["crates/core/src/par.rs"]),
    ("L005", &["crates/types/src/asn.rs"]),
];

fn allowlisted(rule: &str, rel: &str) -> bool {
    ALLOWLIST
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, files)| files.contains(&rel))
        .unwrap_or(false)
}

/// True for files under an integration-test tree (`tests/` at the root
/// or inside a crate). L003 leaves those to L008's atomics audit.
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

fn in_scope_l001(rel: &str) -> bool {
    DETERMINISM_CRITICAL.iter().any(|p| {
        if let Some(prefix) = p.strip_suffix('/') {
            rel.starts_with(prefix) && rel.as_bytes().get(prefix.len()) == Some(&b'/')
        } else {
            rel == *p
        }
    })
}

fn in_core(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
}

fn in_core_or_types(rel: &str) -> bool {
    in_core(rel) || rel.starts_with("crates/types/src/")
}

/// Lint one file. `rel` is the repo-relative path (forward slashes) used
/// for rule scoping; `source` is the file's text. Findings come back in
/// (line, rule) order.
pub fn check_file(rel: &str, source: &str) -> Vec<Finding> {
    let stripped = lexer::strip(source);
    let mask = test_mask(&stripped.lines);
    let orig: Vec<&str> = source.split('\n').collect();
    let mut out = Vec::new();

    if in_scope_l001(rel) && !allowlisted("L001", rel) {
        l001(rel, &stripped, &mask, &orig, &mut out);
    }
    if in_core(rel) && !allowlisted("L002", rel) {
        l002(rel, &stripped, &mask, &orig, &mut out);
    }
    if !is_test_path(rel) && !allowlisted("L003", rel) {
        l003(rel, &stripped, &mask, &orig, &mut out);
    }
    if in_core_or_types(rel) && !allowlisted("L004", rel) {
        l004(rel, &stripped, &mask, &orig, &mut out);
    }
    if in_core_or_types(rel) && !allowlisted("L005", rel) {
        l005(rel, &stripped, &mask, &orig, &mut out);
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Mark lines that belong to `#[cfg(test)]` items (modules or functions):
/// from the attribute through the matching close brace of the item body.
pub fn test_mask(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut l = 0usize;
    while l < lines.len() {
        let Some(col) = lines[l].find("#[cfg(test)]") else {
            l += 1;
            continue;
        };
        let mut depth = 0i32;
        let mut started = false;
        let mut cur = l;
        let mut done = false;
        while cur < lines.len() && !done {
            mask[cur] = true;
            for (ci, ch) in lines[cur].char_indices() {
                if cur == l && ci < col {
                    continue;
                }
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            done = true;
                            break;
                        }
                    }
                    ';' if !started => {
                        // `#[cfg(test)] mod tests;` — out-of-line module.
                        done = true;
                        break;
                    }
                    _ => {}
                }
            }
            cur += 1;
        }
        l = cur.max(l + 1);
    }
    mask
}

fn emit(
    out: &mut Vec<Finding>,
    stripped: &Stripped,
    info: &RuleInfo,
    rel: &str,
    line0: usize,
    orig: &[&str],
    message: String,
) {
    let line = line0 + 1;
    if stripped.allowed(info.slug, line) {
        return;
    }
    let mut message = message;
    if stripped.allowed_without_reason(info.slug, line) {
        message.push_str(
            " (an allow-annotation covers this line but has no reason; add one to suppress)",
        );
    }
    out.push(Finding {
        rule: info.id,
        slug: info.slug,
        file: rel.to_string(),
        line,
        message,
        excerpt: orig.get(line0).map(|s| s.trim()).unwrap_or("").to_string(),
    });
}

/// True when `line[idx..]` starts with `pat` at an identifier boundary on
/// both sides.
pub(crate) fn ident_bounded(line: &str, idx: usize, len: usize) -> bool {
    let before_ok = idx == 0
        || !line[..idx]
            .chars()
            .next_back()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
    let after_ok = !line[idx + len..]
        .chars()
        .next()
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false);
    before_ok && after_ok
}

/// All identifier-bounded occurrences of `name` in `line`.
pub(crate) fn ident_occurrences(line: &str, name: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0usize;
    while let Some(off) = line[from..].find(name) {
        let idx = from + off;
        if ident_bounded(line, idx, name.len()) {
            found.push(idx);
        }
        from = idx + name.len().max(1);
    }
    found
}

// ---------------------------------------------------------------- L001

const HASH_MARKERS: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];
/// Chain endings that consume the iterator order-insensitively.
const ORDER_FREE_SINKS: &[&str] = &[
    ".any(",
    ".all(",
    ".count()",
    ".sum()",
    ".sum::<",
    ".min()",
    ".max()",
    "BTreeMap",
    "BTreeSet",
];

fn l001(rel: &str, s: &Stripped, mask: &[bool], orig: &[&str], out: &mut Vec<Finding>) {
    // Pass 1: names bound to hash collections — `let [mut] x: HashMap...`,
    // `let x = HashMap::new()`, and `x: &HashMap<...>` parameters/fields.
    let mut tracked: Vec<String> = Vec::new();
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] || !HASH_MARKERS.iter().any(|m| line.contains(m)) {
            continue;
        }
        for idx in ident_occurrences(line, "let") {
            let rest = line[idx + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && !tracked.contains(&name) {
                tracked.push(name);
            }
        }
        for marker in HASH_MARKERS {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(marker) {
                let idx = from + off;
                from = idx + marker.len();
                // Look back past `Fx`-style prefixes, `&`, `mut`, `::`
                // path segments for an `ident:` pattern.
                let before = line[..idx].trim_end_matches(|c: char| {
                    c.is_alphanumeric() || c == '_' || c == ':' || c == '&' || c == '<'
                });
                let before = before.trim_end();
                let Some(before) = before.strip_suffix(':').map(str::trim_end) else {
                    continue;
                };
                let name: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty()
                    && name != "mut"
                    && !name.chars().next().map(char::is_numeric).unwrap_or(true)
                    && !tracked.contains(&name)
                {
                    tracked.push(name);
                }
            }
        }
    }

    // Pass 2: flag iteration over tracked names unless sorted or sunk
    // order-insensitively.
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        // A sort (or an order-insensitive sink) appearing shortly after
        // the iteration clears it; 8 lines covers a formatted multi-line
        // collect-then-sort chain.
        let window_sorted = (i..(i + 8).min(s.lines.len())).any(|j| s.lines[j].contains(".sort"));
        let order_free = (i..(i + 4).min(s.lines.len()))
            .any(|j| ORDER_FREE_SINKS.iter().any(|m| s.lines[j].contains(m)));
        for name in &tracked {
            let mut hit = false;
            for idx in ident_occurrences(line, name) {
                let rest = &line[idx + name.len()..];
                if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                    hit = true;
                }
                // Chain broken across lines: `distinct` at end of line,
                // `.into_iter()` starting the next.
                if rest.trim().is_empty() {
                    if let Some(next) = s.lines.get(i + 1) {
                        let next = next.trim_start();
                        if ITER_METHODS.iter().any(|m| next.starts_with(m)) {
                            hit = true;
                        }
                    }
                }
            }
            // Bare `for x in name {` / `for x in &name {`; iteration via a
            // method chain (`name.keys()`, `name.get(..)` → Vec) is handled
            // — or deliberately not handled — above.
            if !hit && line.contains("for ") {
                if let Some(pos) = line.find(" in ") {
                    let expr = line[pos + 4..].trim_start();
                    let expr = expr.trim_start_matches('&');
                    let expr = expr.strip_prefix("mut ").unwrap_or(expr);
                    if let Some(after) = expr.strip_prefix(name.as_str()) {
                        let after = after.trim_start();
                        if after.starts_with('{') {
                            hit = true;
                        } else if after.is_empty() {
                            // Line break after the name: bare iteration
                            // only if the chain doesn't continue with a
                            // (non-iterating) method on the next line.
                            let next = s
                                .lines
                                .get(i + 1)
                                .map(|l| l.trim_start())
                                .unwrap_or("");
                            if !next.starts_with('.')
                                || ITER_METHODS.iter().any(|m| next.starts_with(m))
                            {
                                hit = true;
                            }
                        }
                    }
                }
            }
            if hit && !window_sorted && !order_free {
                emit(
                    out,
                    s,
                    &RULES[0],
                    rel,
                    i,
                    orig,
                    format!(
                        "iteration over hash collection `{name}` feeds ordered output; hash \
                         order varies across runs/platforms"
                    ),
                );
                break; // one finding per line is enough
            }
        }
    }
}

// ---------------------------------------------------------------- L002

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect(..)`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

fn l002(rel: &str, s: &Stripped, mask: &[bool], orig: &[&str], out: &mut Vec<Finding>) {
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        for (pat, label) in PANIC_PATTERNS {
            let mut from = 0usize;
            let mut hit = false;
            while let Some(off) = line[from..].find(pat) {
                let idx = from + off;
                from = idx + pat.len();
                // Macro patterns need a left identifier boundary
                // (`should_panic!` style false positives); dotted calls
                // are anchored by the dot already.
                let left_ok = idx == 0
                    || !line[..idx]
                        .chars()
                        .next_back()
                        .map(|c| c.is_alphanumeric() || c == '_')
                        .unwrap_or(false);
                if pat.starts_with('.') || left_ok {
                    hit = true;
                    break;
                }
            }
            if hit {
                emit(
                    out,
                    s,
                    &RULES[1],
                    rel,
                    i,
                    orig,
                    format!("{label} can panic; core must stay panic-free outside tests"),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------- L003

fn l003(rel: &str, s: &Stripped, mask: &[bool], orig: &[&str], out: &mut Vec<Finding>) {
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if line.contains("Ordering::Relaxed") {
            emit(
                out,
                s,
                &RULES[2],
                rel,
                i,
                orig,
                "`Ordering::Relaxed` outside core/src/par.rs; relaxed atomics are only \
                 audited there"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- L004

fn l004(rel: &str, s: &Stripped, mask: &[bool], orig: &[&str], out: &mut Vec<Finding>) {
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Some(idx) = find_pub_fn(line) else {
            continue;
        };
        let _ = idx;
        // Walk up over attributes and blank lines looking for a doc line.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let t = s.lines[j].trim();
            let orig_t = orig.get(j).map(|s| s.trim()).unwrap_or("");
            if s.doc[j] || orig_t.starts_with("#[doc") {
                documented = true;
                break;
            }
            // Skip attribute lines and blank (possibly comment-only) lines.
            if t.is_empty() || t.starts_with("#[") || t.ends_with(")]") {
                continue;
            }
            break;
        }
        if !documented {
            emit(
                out,
                s,
                &RULES[3],
                rel,
                i,
                orig,
                "public function without a doc comment".to_string(),
            );
        }
    }
}

/// Byte index of a `pub [const|async|unsafe|extern "..."] fn` on this
/// line, if any.
fn find_pub_fn(line: &str) -> Option<usize> {
    for idx in ident_occurrences(line, "pub") {
        let mut rest = line[idx + 3..].trim_start();
        loop {
            let mut advanced = false;
            for kw in ["const", "async", "unsafe", "extern"] {
                if let Some(r) = rest.strip_prefix(kw) {
                    if r.starts_with(char::is_whitespace) {
                        rest = r.trim_start();
                        advanced = true;
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        if rest.starts_with("fn")
            && rest[2..]
                .chars()
                .next()
                .map(char::is_whitespace)
                .unwrap_or(false)
        {
            return Some(idx);
        }
    }
    None
}

// ---------------------------------------------------------------- L005

fn l005(rel: &str, s: &Stripped, mask: &[bool], orig: &[&str], out: &mut Vec<Finding>) {
    for (i, line) in s.lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let mut flagged = false;
        for pat in [" as u8", " as u16"] {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(pat) {
                let idx = from + off;
                from = idx + pat.len();
                if !line[idx + pat.len()..]
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric() || c == '_')
                    .unwrap_or(false)
                {
                    emit(
                        out,
                        s,
                        &RULES[4],
                        rel,
                        i,
                        orig,
                        format!(
                            "narrowing cast `{}` can silently truncate id-domain values",
                            pat.trim_start()
                        ),
                    );
                    flagged = true;
                    break;
                }
            }
            if flagged {
                break;
            }
        }
        if flagged {
            continue;
        }
        // `len()/count()/count_ones() as u32`: usize → u32 narrowing on a
        // count that becomes a dense id or offset.
        let mut from = 0usize;
        while let Some(off) = line[from..].find(" as u32") {
            let idx = from + off;
            from = idx + 7;
            let before = line[..idx].trim_end();
            if before.ends_with(".len()")
                || before.ends_with(".count()")
                || before.ends_with(".count_ones()")
            {
                emit(
                    out,
                    s,
                    &RULES[4],
                    rel,
                    i,
                    orig,
                    "`usize` count cast to `u32` with `as` can silently truncate; use \
                     `dense_id` (checked) instead"
                        .to_string(),
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_test_module() {
        let s = lexer::strip("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        let m = test_mask(&s.lines);
        // Trailing newline yields a final empty line.
        assert_eq!(m, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn pub_fn_detection() {
        assert!(find_pub_fn("pub fn foo() {}").is_some());
        assert!(find_pub_fn("    pub const fn foo() {}").is_some());
        assert!(find_pub_fn("pub(crate) fn foo() {}").is_none());
        assert!(find_pub_fn("fn foo() {}").is_none());
        assert!(find_pub_fn("pub struct Foo;").is_none());
    }

    #[test]
    fn scope_matching() {
        assert!(in_scope_l001("crates/core/src/pipeline/steps.rs"));
        assert!(in_scope_l001("crates/core/src/cone.rs"));
        assert!(in_scope_l001("crates/core/src/patharena.rs"));
        assert!(in_scope_l001("crates/bgpsim/src/propagate.rs"));
        assert!(!in_scope_l001("crates/core/src/io.rs"));
        assert!(!in_scope_l001("crates/bgpsim/src/lib.rs"));
    }
}
