//! Cross-file semantic rules (L006–L009).
//!
//! Unlike the line-oriented rules in [`crate::rules`], these passes index
//! the whole workspace first — every file stripped, test-masked, and
//! item-parsed into a [`WorkspaceIndex`] — and then check properties that
//! span files: a config struct in `pipeline/mod.rs` against the
//! fingerprint functions in `engine.rs` (L006), `unsafe` sites against
//! the module allowlist and their `// SAFETY:` contracts (L007), release
//! stores against acquire loads elsewhere in the same compilation unit
//! (L008), and codec kind tags against their encode/decode/view call
//! sites (L009).
//!
//! The same annotation grammar applies: a finding is suppressed by
//! `// lint: allow(<slug>, <reason>)` on the flagged line or the line
//! above, and reason-less annotations never suppress.

use crate::lexer::{self, Stripped};
use crate::parser::{self, base_type_ident, Item, ItemKind};
use crate::rules::{self, Finding, RuleInfo, RULES};

/// One indexed file: stripped text, test mask, original lines, and the
/// parsed item skeleton.
pub struct FileIndex {
    /// Repo-relative path with forward slashes (rule scoping key).
    pub rel: String,
    /// Comment/string-stripped text (see [`lexer::strip`]).
    pub stripped: Stripped,
    /// `true` for lines inside `#[cfg(test)]` items.
    pub mask: Vec<bool>,
    /// Original source lines (for excerpts and `SAFETY:` comments).
    pub orig: Vec<String>,
    /// Parsed items, children after parents.
    pub items: Vec<Item>,
}

/// The whole workspace, indexed once before any semantic rule runs.
pub struct WorkspaceIndex {
    /// One entry per scanned file, in input order.
    pub files: Vec<FileIndex>,
}

impl WorkspaceIndex {
    /// Index `(rel, source)` pairs.
    pub fn build(files: &[(String, String)]) -> WorkspaceIndex {
        let files = files
            .iter()
            .map(|(rel, source)| {
                let stripped = lexer::strip(source);
                let mask = rules::test_mask(&stripped.lines);
                let items = parser::parse_items(&stripped.lines);
                FileIndex {
                    rel: rel.clone(),
                    mask,
                    orig: source.split('\n').map(str::to_string).collect(),
                    items,
                    stripped,
                }
            })
            .collect();
        WorkspaceIndex { files }
    }

    /// Locate a non-test struct definition by name: `prefer_file` (the
    /// referencing file) first, then workspace order.
    fn find_struct(&self, name: &str, prefer_file: Option<usize>) -> Option<(usize, usize)> {
        for fi in prefer_file.into_iter().chain(0..self.files.len()) {
            let f = &self.files[fi];
            for (ii, it) in f.items.iter().enumerate() {
                if it.kind == ItemKind::Struct
                    && it.name == name
                    && !f.mask.get(it.line.saturating_sub(1)).copied().unwrap_or(false)
                {
                    return Some((fi, ii));
                }
            }
        }
        None
    }
}

/// Run all semantic rules over pre-labelled `(rel, source)` pairs.
/// Fixture tests call this directly with synthetic path labels.
pub fn check_workspace(files: &[(String, String)]) -> Vec<Finding> {
    check_index(&WorkspaceIndex::build(files))
}

/// Run all semantic rules over an existing index.
pub fn check_index(idx: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    l006_fingerprint_coverage(idx, &mut out);
    l007_unsafe_contracts(idx, &mut out);
    l008_atomics_audit(idx, &mut out);
    l009_codec_kinds(idx, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Strict-mode meta findings: every allow-annotation must carry a reason
/// and name a known rule slug. Reported as `L000` and deliberately not
/// suppressible — an annotation cannot vouch for itself.
pub fn annotation_findings(idx: &WorkspaceIndex) -> Vec<Finding> {
    let meta = &rules::META_RULE;
    let mut out = Vec::new();
    for f in &idx.files {
        for a in &f.stripped.allows {
            // Doc comments *describe* the grammar (`/// … lint: allow(rule,
            // reason)`); only plain-comment annotations actually suppress,
            // so only those are audited.
            if f.stripped.doc.get(a.line.saturating_sub(1)).copied().unwrap_or(false) {
                continue;
            }
            let known = RULES.iter().any(|r| r.slug == a.rule);
            let message = if !known {
                format!(
                    "allow-annotation names unknown rule slug `{}`; it suppresses nothing \
                     (known slugs: {})",
                    a.rule,
                    RULES.iter().map(|r| r.slug).collect::<Vec<_>>().join(", ")
                )
            } else if a.reason.is_empty() {
                format!(
                    "allow-annotation for `{}` has no reason; reason-less annotations never \
                     suppress findings — state why the exception is sound",
                    a.rule
                )
            } else {
                continue;
            };
            out.push(Finding {
                rule: meta.id,
                slug: meta.slug,
                file: f.rel.clone(),
                line: a.line,
                message,
                excerpt: excerpt(f, a.line),
            });
        }
    }
    out
}

fn excerpt(f: &FileIndex, line: usize) -> String {
    f.orig
        .get(line.saturating_sub(1))
        .map(|s| s.trim())
        .unwrap_or("")
        .to_string()
}

fn emit(out: &mut Vec<Finding>, f: &FileIndex, info: &'static RuleInfo, line: usize, message: String) {
    if f.stripped.allowed(info.slug, line) {
        return;
    }
    let mut message = message;
    if f.stripped.allowed_without_reason(info.slug, line) {
        message.push_str(
            " (an allow-annotation covers this line but has no reason; add one to suppress)",
        );
    }
    out.push(Finding {
        rule: info.id,
        slug: info.slug,
        file: f.rel.clone(),
        line,
        message,
        excerpt: excerpt(f, line),
    });
}

// ---------------------------------------------------------------- L006

/// The struct every stage fingerprint function receives.
const FP_CTX: &str = "FpCtx";

/// L006: every field of `FpCtx` — and, transitively, of every
/// workspace-defined struct reachable through its covered fields — must
/// be read (`.field`) by at least one fingerprint function registered as
/// `cfg_fp:` in the stage table, unless annotated `fp-excluded`.
///
/// Transitivity walks field *types*, not generic parameters: a field of
/// type `SanitizeConfig` pulls that struct into the audit, a
/// `HashSet<Asn>` is a leaf. Exclusion stops the walk, so annotating
/// `parallelism` keeps the whole `Parallelism` type out of scope.
fn l006_fingerprint_coverage(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let info = &RULES[5];
    let Some((ctx_fi, ctx_ii)) = idx.find_struct(FP_CTX, None) else {
        return; // no fingerprint machinery in this workspace
    };

    // The registry: `cfg_fp: <ident>` initializers in the stage table,
    // which lives in the same file as `FpCtx`. (`cfg_fp: fn(..)` is the
    // field declaration, not a registration.)
    let reg_file = &idx.files[ctx_fi];
    let mut registered: Vec<String> = Vec::new();
    for (i, line) in reg_file.stripped.lines.iter().enumerate() {
        if reg_file.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        for at in rules::ident_occurrences(line, "cfg_fp") {
            let rest = line[at + "cfg_fp".len()..].trim_start();
            let Some(rest) = rest.strip_prefix(':') else {
                continue;
            };
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && name != "fn" && !registered.contains(&name) {
                registered.push(name);
            }
        }
    }
    if registered.is_empty() {
        let line = reg_file.items[ctx_ii].line;
        emit(
            out,
            reg_file,
            info,
            line,
            format!(
                "`{FP_CTX}` is defined but no `cfg_fp:` registrations were found in {}; \
                 fingerprint coverage cannot be verified",
                reg_file.rel
            ),
        );
        return;
    }
    let body = reachable_body_text(reg_file, &registered);

    // Walk the structs feeding FpCtx.
    let mut visited: Vec<String> = vec![FP_CTX.to_string()];
    let mut queue: Vec<(usize, usize)> = vec![(ctx_fi, ctx_ii)];
    while let Some((fi, ii)) = queue.pop() {
        let file = &idx.files[fi];
        let item = file.items[ii].clone();
        for field in &item.fields {
            if file.stripped.allowed("fp-excluded", field.line) {
                continue; // deliberate, justified exclusion: stop the walk
            }
            if !reads_field(&body, &field.name) {
                emit(
                    out,
                    file,
                    info,
                    field.line,
                    format!(
                        "field `{}.{}` is not read by any of the {} registered stage \
                         fingerprint functions; a config knob outside the fingerprint chain \
                         can serve stale cached artifacts",
                        item.name,
                        field.name,
                        registered.len()
                    ),
                );
                continue;
            }
            let base = base_type_ident(&field.ty).to_string();
            if !base.is_empty() && !visited.contains(&base) {
                if let Some(next) = idx.find_struct(&base, Some(fi)) {
                    visited.push(base);
                    queue.push(next);
                }
            }
        }
    }
}

/// Concatenated stripped bodies of the named functions plus, transitively,
/// every same-file function they call (by identifier reference) — so a
/// fingerprint helper like `hash_prefixes` counts toward coverage.
fn reachable_body_text(f: &FileIndex, roots: &[String]) -> String {
    let mut text = String::new();
    let mut pending: Vec<String> = roots.to_vec();
    let mut done: Vec<String> = Vec::new();
    while let Some(name) = pending.pop() {
        if done.contains(&name) {
            continue;
        }
        done.push(name.clone());
        for it in &f.items {
            if it.kind != ItemKind::Fn || it.name != name {
                continue;
            }
            for l in it.body_start..=it.body_end {
                if let Some(line) = f.stripped.lines.get(l.saturating_sub(1)) {
                    text.push_str(line);
                    text.push('\n');
                }
            }
        }
        for it in &f.items {
            if it.kind == ItemKind::Fn
                && !done.contains(&it.name)
                && !pending.contains(&it.name)
                && !rules::ident_occurrences(&text, &it.name).is_empty()
            {
                pending.push(it.name.clone());
            }
        }
    }
    text
}

/// True when `text` contains a `.field` access (right-bounded, so `.cfg`
/// does not match `.cfg_fp`).
fn reads_field(text: &str, field: &str) -> bool {
    let pat = format!(".{field}");
    let mut from = 0usize;
    while let Some(off) = text[from..].find(&pat) {
        let idx = from + off;
        let after = idx + pat.len();
        let boundary = !text[after..]
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
        if boundary {
            return true;
        }
        from = idx + 1;
    }
    false
}

// ---------------------------------------------------------------- L007

/// Modules allowed to contain `unsafe` at all. Everything here has been
/// audited line by line; new entries are a deliberate review decision.
const UNSAFE_ALLOWED_MODULES: &[&str] = &[
    "crates/serve/src/mmap.rs",
    "crates/serve/tests/zero_alloc.rs",
];

/// L007: `unsafe` only in allowlisted modules, and every occurrence needs
/// an adjacent `// SAFETY:` comment — on the same line or in the
/// contiguous comment/attribute block immediately above.
fn l007_unsafe_contracts(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let info = &RULES[6];
    for f in &idx.files {
        for (i, line) in f.stripped.lines.iter().enumerate() {
            if rules::ident_occurrences(line, "unsafe").is_empty() {
                continue;
            }
            let ln = i + 1;
            if !UNSAFE_ALLOWED_MODULES.contains(&f.rel.as_str()) {
                emit(
                    out,
                    f,
                    info,
                    ln,
                    format!(
                        "`unsafe` outside the allowlisted modules ({}); keep unsafety behind \
                         an audited module boundary",
                        UNSAFE_ALLOWED_MODULES.join(", ")
                    ),
                );
            } else if !has_adjacent_safety(f, i) {
                emit(
                    out,
                    f,
                    info,
                    ln,
                    "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant \
                     that makes it sound"
                        .to_string(),
                );
            }
        }
    }
}

/// A `SAFETY:` marker on the flagged line or in the unbroken run of
/// comment/attribute lines directly above it.
fn has_adjacent_safety(f: &FileIndex, line0: usize) -> bool {
    if f.orig
        .get(line0)
        .map(|l| l.contains("SAFETY:"))
        .unwrap_or(false)
    {
        return true;
    }
    let mut j = line0;
    while j > 0 {
        j -= 1;
        let t = f.orig[j].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            if t.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        break; // code or blank line ends the adjacent block
    }
    false
}

// ---------------------------------------------------------------- L008

/// The compilation unit a file belongs to for cross-file atomics pairing:
/// a crate's `src` tree, a crate's `tests` tree (integration binaries
/// share `common/`), or the root facade's `src`/`tests`.
fn unit_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 3 && parts[0] == "crates" && (parts[2] == "src" || parts[2] == "tests") {
        return parts[..3].join("/");
    }
    if !parts.is_empty() && (parts[0] == "src" || parts[0] == "tests") {
        return parts[0].to_string();
    }
    rel.to_string()
}

/// Lines `i..i+3` (stripped) contain any of `pats` — enough slack for a
/// rustfmt-wrapped `store(` call.
fn window_has(f: &FileIndex, i: usize, pats: &[&str]) -> bool {
    (i..(i + 3).min(f.stripped.lines.len()))
        .any(|j| pats.iter().any(|p| f.stripped.lines[j].contains(p)))
}

/// The trailing identifier of `s` (the receiver field/static before a
/// `.store(`/`.load(`), e.g. `self.generation` → `generation`.
fn trailing_ident(s: &str) -> &str {
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &s[start..end]
}

/// L008: the atomics audit.
///
/// * Every `store(…, Ordering::Release)` on a field/static must have a
///   matching `load(Acquire)` (or `SeqCst`) on the same receiver name
///   somewhere in its compilation unit — a one-sided publication protocol
///   is a bug (this pins the `ServeState` generation handshake).
/// * `Ordering::Relaxed` in test code is flagged (L003 covers non-test
///   code); counters that genuinely need no ordering get an
///   `// lint: allow(atomics, <reason>)`.
fn l008_atomics_audit(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let info = &RULES[7];

    // Pass 1: all acquire-load receivers, per unit.
    let mut acquires: Vec<(String, String)> = Vec::new();
    for f in &idx.files {
        let unit = unit_key(&f.rel);
        for (i, line) in f.stripped.lines.iter().enumerate() {
            let mut from = 0usize;
            while let Some(off) = line[from..].find(".load(") {
                let at = from + off;
                from = at + ".load(".len();
                if window_has(f, i, &["Ordering::Acquire", "Ordering::SeqCst"]) {
                    let recv = trailing_ident(&line[..at]);
                    if !recv.is_empty() {
                        acquires.push((unit.clone(), recv.to_string()));
                    }
                }
            }
        }
    }

    // Pass 2: flag unpaired release stores and relaxed atomics in tests.
    for f in &idx.files {
        let unit = unit_key(&f.rel);
        let test_path = rules::is_test_path(&f.rel);
        for (i, line) in f.stripped.lines.iter().enumerate() {
            let ln = i + 1;
            if test_path && line.contains("Ordering::Relaxed") {
                emit(
                    out,
                    f,
                    info,
                    ln,
                    "`Ordering::Relaxed` in test code; tests that probe concurrent behavior \
                     should use the ordering the production protocol uses"
                        .to_string(),
                );
            }
            let mut from = 0usize;
            while let Some(off) = line[from..].find(".store(") {
                let at = from + off;
                from = at + ".store(".len();
                if !window_has(f, i, &["Ordering::Release"]) {
                    continue;
                }
                let recv = trailing_ident(&line[..at]);
                if recv.is_empty() {
                    continue;
                }
                if !acquires.iter().any(|(u, r)| *u == unit && *r == recv) {
                    emit(
                        out,
                        f,
                        info,
                        ln,
                        format!(
                            "`store(…, Release)` on `{recv}` has no matching `load(Acquire)` \
                             anywhere in `{unit}`; one-sided publication means readers may \
                             never synchronize with this write"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L009

/// L009: every artifact kind tag (a `u16` const inside a `mod kind`) must
/// have encode (`Encoder::new(kind::X)`), decode (a `kind::X => …` match
/// arm or `Decoder::open(…, kind::X)`), and borrowed-view coverage (a
/// `kind::X` reference in a `view.rs`) — all in non-test code. A frame
/// kind that can be written but not read back, or read but never viewed
/// zero-copy, is a latent cache-corruption bug.
fn l009_codec_kinds(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    let info = &RULES[8];
    for f in &idx.files {
        for (mi, m) in f.items.iter().enumerate() {
            if m.kind != ItemKind::Mod || m.name != "kind" {
                continue;
            }
            for it in &f.items {
                if it.parent != Some(mi) || it.kind != ItemKind::Const || it.ty != "u16" {
                    continue;
                }
                let mut missing: Vec<&str> = Vec::new();
                if !kind_usage(idx, &it.name, KindUse::Encode) {
                    missing.push("encode (`Encoder::new(kind::…)`)");
                }
                if !kind_usage(idx, &it.name, KindUse::Decode) {
                    missing.push("decode (a `kind::… =>` match arm or `Decoder::open`)");
                }
                if !kind_usage(idx, &it.name, KindUse::View) {
                    missing.push("a borrowed view (reference from a `view.rs`)");
                }
                if !missing.is_empty() {
                    emit(
                        out,
                        f,
                        info,
                        it.line,
                        format!(
                            "artifact kind `{}` is missing {}; every frame kind needs \
                             encode, decode, and view coverage",
                            it.name,
                            missing.join(", ")
                        ),
                    );
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum KindUse {
    Encode,
    Decode,
    View,
}

/// Byte offsets of right-bounded `kind::TAG` references in `line`.
fn kind_refs(line: &str, tag: &str) -> Vec<usize> {
    let pat = format!("kind::{tag}");
    let mut found = Vec::new();
    let mut from = 0usize;
    while let Some(off) = line[from..].find(&pat) {
        let idx = from + off;
        let after = idx + pat.len();
        let boundary = !line[after..]
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
        if boundary {
            found.push(idx);
        }
        from = idx + 1;
    }
    found
}

fn kind_usage(idx: &WorkspaceIndex, tag: &str, usage: KindUse) -> bool {
    for f in &idx.files {
        if rules::is_test_path(&f.rel) {
            continue; // coverage must come from production code
        }
        if usage == KindUse::View && !f.rel.ends_with("view.rs") {
            continue;
        }
        for (i, line) in f.stripped.lines.iter().enumerate() {
            if f.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            for at in kind_refs(line, tag) {
                let hit = match usage {
                    KindUse::View => true,
                    KindUse::Encode => {
                        // `Encoder::new(` on this line or the one above
                        // (rustfmt may wrap the argument).
                        line.contains("Encoder::new")
                            || (i > 0 && f.stripped.lines[i - 1].contains("Encoder::new"))
                    }
                    KindUse::Decode => {
                        // A match arm with the tag on the *left* of `=>`
                        // (`"s1" => kind::X` in tag_for_stage is not a
                        // decode site), or a `Decoder::open` argument.
                        line[at..].contains("=>")
                            || line.contains("Decoder::open")
                            || (i > 0 && f.stripped.lines[i - 1].contains("Decoder::open"))
                    }
                };
                if hit {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_keys() {
        assert_eq!(unit_key("crates/serve/src/state.rs"), "crates/serve/src");
        assert_eq!(unit_key("crates/serve/tests/common/mod.rs"), "crates/serve/tests");
        assert_eq!(unit_key("src/lib.rs"), "src");
        assert_eq!(unit_key("tests/full_pipeline.rs"), "tests");
    }

    #[test]
    fn trailing_ident_extracts_receiver() {
        assert_eq!(trailing_ident("        self.generation"), "generation");
        assert_eq!(trailing_ident("stop"), "stop");
        assert_eq!(trailing_ident("    NEXT_GENERATION"), "NEXT_GENERATION");
        assert_eq!(trailing_ident("x)"), "");
    }

    #[test]
    fn field_reads_are_right_bounded() {
        assert!(reads_field("ctx.cfg.sanitize.ixp_asns", "cfg"));
        assert!(!reads_field("spec.cfg_fp(ctx)", "cfg"));
        assert!(reads_field("a.prefix_fp\n", "prefix_fp"));
    }

    #[test]
    fn kind_refs_are_right_bounded() {
        assert_eq!(kind_refs("Encoder::new(kind::CONE)", "CONE"), vec![13]);
        assert!(kind_refs("kind::CONE2 =>", "CONE").is_empty());
    }
}
