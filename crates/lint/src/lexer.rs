//! A minimal Rust lexer: just enough to blank out comments and string
//! literals so the rule engine can pattern-match on *code* without being
//! fooled by text inside `"..."` or `// ...`.
//!
//! The output preserves the byte-per-byte line structure of the input
//! (every blanked character becomes a space, newlines survive), so any
//! column computed on the stripped text maps directly back to the source.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`, `/** ... */`), string literals with escapes, byte
//! strings (`b"..."`), raw strings (`r"..."`, `r#"..."#`, `br##"..."##`),
//! char literals (`'x'`, `'\n'`, `b'x'`) vs lifetimes (`'a`, `'static`),
//! and raw identifiers (`r#fn`).

/// One `// lint: allow(rule, reason)` annotation parsed out of a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule slug being allowed, e.g. `nondeterministic-iter`.
    pub rule: String,
    /// Free-text justification. Empty when the author omitted it — the
    /// rule engine refuses to honour reason-less annotations.
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: usize,
}

/// Result of stripping one source file.
#[derive(Debug)]
pub struct Stripped {
    /// Code-only lines: comments and string/char contents replaced by
    /// spaces. Same number of lines as the input.
    pub lines: Vec<String>,
    /// `true` for lines that carry a doc comment (`///`, `//!`, `/** */`).
    pub doc: Vec<bool>,
    /// All allow-annotations found in comments.
    pub allows: Vec<Allow>,
}

impl Stripped {
    /// True when an allow-annotation for `slug` (with a non-empty reason)
    /// covers `line`: annotations apply to their own line (trailing
    /// comment) and to the line immediately below (comment above code).
    pub fn allowed(&self, slug: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == slug && !a.reason.is_empty() && (a.line == line || a.line + 1 == line))
    }

    /// True when an annotation for `slug` covers `line` but was written
    /// without a reason — reported so authors know why it was ignored.
    pub fn allowed_without_reason(&self, slug: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == slug && a.reason.is_empty() && (a.line == line || a.line + 1 == line))
    }
}

/// Strip `source` down to code-only text. Never fails: unterminated
/// constructs simply blank to end-of-file, which is the useful behaviour
/// for a linter that must not crash on the code it inspects.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut doc_marks: Vec<usize> = Vec::new(); // char indices inside doc comments
    let mut comments: Vec<(usize, String)> = Vec::new(); // (start idx, text)

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                // Line comment; classify doc-ness by the third char.
                let start = i;
                let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'))
                    // `////...` dividers are not doc comments.
                    && chars.get(i + 3) != Some(&'/');
                let mut text = String::new();
                while i < chars.len() && chars[i] != '\n' {
                    text.push(chars[i]);
                    blank(&mut out);
                    i += 1;
                }
                if is_doc {
                    doc_marks.push(start);
                }
                comments.push((start, text));
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                let start = i;
                let is_doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                    && chars.get(i + 3) != Some(&'/'); // `/**/` is empty, not doc
                let mut depth = 0usize;
                let mut text = String::new();
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        push2(&mut out, chars[i]);
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        push2(&mut out, chars[i]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(chars[i]);
                        if chars[i] == '\n' {
                            out.push('\n');
                        } else {
                            out.push(' ');
                        }
                        i += 1;
                    }
                }
                if is_doc {
                    doc_marks.push(start);
                    // Doc block comments can span lines; mark each.
                    for (off, ch) in text.char_indices() {
                        if ch == '\n' {
                            doc_marks.push(start + text[..off].chars().count());
                        }
                    }
                }
                comments.push((start, text));
            }
            '"' => {
                i = skip_string(&chars, i, &mut out);
            }
            'b' if !ident_before(&out)
                && matches!(chars.get(i + 1), Some('"') | Some('\'') | Some('r')) =>
            {
                match chars[i + 1] {
                    '"' => {
                        out.push('b');
                        i = skip_string(&chars, i + 1, &mut out);
                    }
                    '\'' => {
                        out.push('b');
                        i = skip_char_literal(&chars, i + 1, &mut out);
                    }
                    _ => {
                        // `br#"..."#` or plain identifier starting with `br`.
                        if let Some(end) = raw_string_end(&chars, i + 1) {
                            out.push('b');
                            blank_range(&chars, i + 1, end, &mut out);
                            i = end;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    }
                }
            }
            'r' if !ident_before(&out) => {
                if let Some(end) = raw_string_end(&chars, i) {
                    blank_range(&chars, i, end, &mut out);
                    i = end;
                } else {
                    // `r#ident` raw identifier or ordinary `r...` ident.
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime.
                if chars.get(i + 1) == Some(&'\\') {
                    i = skip_char_literal(&chars, i, &mut out);
                } else if chars.get(i + 2) == Some(&'\'')
                    && chars.get(i + 1).map(|c| *c != '\'').unwrap_or(false)
                {
                    i = skip_char_literal(&chars, i, &mut out);
                } else {
                    out.push('\''); // lifetime tick; identifier follows normally
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }

    let stripped_text: String = out.into_iter().collect();
    let lines: Vec<String> = split_keep_empty(&stripped_text);

    // Map char indices to line numbers for doc marks and comments.
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 0usize;
    for &ch in &chars {
        line_of.push(ln);
        if ch == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let mut doc = vec![false; lines.len()];
    for idx in doc_marks {
        if let Some(&l) = line_of.get(idx) {
            if l < doc.len() {
                doc[l] = true;
            }
        }
    }

    let mut allows = Vec::new();
    for (idx, text) in &comments {
        let line = line_of.get(*idx).copied().unwrap_or(0) + 1;
        parse_allows(text, line, &mut allows);
    }

    Stripped { lines, doc, allows }
}

fn blank(out: &mut Vec<char>) {
    out.push(' ');
}

fn push2(out: &mut Vec<char>, _c: char) {
    out.push(' ');
    out.push(' ');
}

fn ident_before(out: &[char]) -> bool {
    out.last()
        .map(|c| c.is_alphanumeric() || *c == '_')
        .unwrap_or(false)
}

/// Starting at a `"` at `chars[i]`, blank the literal (escapes honoured)
/// and return the index one past the closing quote.
fn skip_string(chars: &[char], mut i: usize, out: &mut Vec<char>) -> usize {
    out.push(' '); // opening quote
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(' ');
                if i + 1 < chars.len() {
                    if chars[i + 1] == '\n' {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                return i + 1;
            }
            '\n' => {
                out.push('\n');
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Starting at the opening `'` of a char literal, blank it and return the
/// index one past the closing `'`.
fn skip_char_literal(chars: &[char], mut i: usize, out: &mut Vec<char>) -> usize {
    out.push(' ');
    i += 1;
    if chars.get(i) == Some(&'\\') {
        out.push(' ');
        i += 1;
        if i < chars.len() {
            out.push(' ');
            i += 1;
            // \u{...} escapes
            if chars.get(i.wrapping_sub(1)) == Some(&'u') && chars.get(i) == Some(&'{') {
                while i < chars.len() && chars[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    } else if i < chars.len() {
        out.push(' ');
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        out.push(' ');
        i += 1;
    }
    i
}

/// If `chars[i..]` begins a raw string (`r"`, `r#"`, `r##"`, ...), return
/// the index one past its terminator; otherwise `None`.
fn raw_string_end(chars: &[char], i: usize) -> Option<usize> {
    if chars.get(i) != Some(&'r') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None; // raw identifier like `r#fn`
    }
    j += 1;
    // Find `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(j)
}

/// Blank `chars[from..to]` into `out`, preserving newlines.
fn blank_range(chars: &[char], from: usize, to: usize, out: &mut Vec<char>) {
    for &c in &chars[from..to.min(chars.len())] {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
}

fn split_keep_empty(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text.split('\n').map(|s| s.to_string()).collect();
    // `split` yields a trailing empty slice for text ending in '\n';
    // keep it so line counts match editors' 1-based expectations.
    if text.is_empty() {
        lines = vec![String::new()];
    }
    lines
}

/// Parse `lint: allow(rule)` / `lint: allow(rule, reason)` out of one
/// comment's text, appending to `allows`. Multiple annotations per
/// comment are honoured.
fn parse_allows(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + 5..];
        let trimmed = rest.trim_start();
        if let Some(body) = trimmed.strip_prefix("allow(") {
            if let Some(close) = body.find(')') {
                let inner = &body[..close];
                let (rule, reason) = match inner.find(',') {
                    Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
                    None => (inner.trim(), ""),
                };
                if !rule.is_empty() {
                    allows.push(Allow {
                        rule: rule.to_string(),
                        reason: reason.to_string(),
                        line,
                    });
                }
                rest = &body[close..];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_columns() {
        let s = strip("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(s.lines[0].starts_with("let x = 1; "));
        assert_eq!(s.lines[1], "let y = 2;");
    }

    #[test]
    fn strips_string_contents() {
        let s = strip("let s = \"HashMap.iter()\";\n");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(s.lines[0].contains("let s ="));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let s = strip("let a = r#\"unwrap() \"quoted\"\"#; let r#fn = 1;\n");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("r#fn"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = strip("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n");
        assert!(s.lines[0].contains("<'a>"));
        assert!(s.lines[0].contains("&'a str"));
        assert!(!s.lines[0].contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("a /* outer /* inner */ still comment */ b\n");
        assert!(s.lines[0].contains('a'));
        assert!(s.lines[0].contains('b'));
        assert!(!s.lines[0].contains("comment"));
    }

    #[test]
    fn doc_lines_marked() {
        let s = strip("/// docs\npub fn f() {}\n//! module\n// plain\n");
        assert!(s.doc[0]);
        assert!(!s.doc[1]);
        assert!(s.doc[2]);
        assert!(!s.doc[3]);
    }

    #[test]
    fn allow_annotations_parse() {
        let s = strip("// lint: allow(nondeterministic-iter, merge is order-free)\nfor k in m.keys() {}\n");
        assert!(s.allowed("nondeterministic-iter", 1));
        assert!(s.allowed("nondeterministic-iter", 2));
        assert!(!s.allowed("nondeterministic-iter", 3));
        assert!(!s.allowed("panics", 2));
    }

    #[test]
    fn allow_without_reason_is_ignored_but_detected() {
        let s = strip("let x = 1; // lint: allow(panics)\n");
        assert!(!s.allowed("panics", 1));
        assert!(s.allowed_without_reason("panics", 1));
    }

    #[test]
    fn multiline_string_preserves_line_count() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;\n";
        let s = strip(src);
        assert_eq!(s.lines.len(), src.split('\n').count());
        assert!(s.lines[3].contains("let t"));
    }
}
