//! A lightweight item-level Rust parser on top of [`crate::lexer`].
//!
//! This is deliberately **not** a full AST: it recovers just the item
//! skeleton the semantic rules need — which items exist (structs, enums,
//! fns, mods, traits, impls, consts), where each one starts and ends
//! (line spans), the named fields of structs (name + type text), and the
//! type text of consts. Function bodies stay opaque token spans; rules
//! that care about references inside a body slice the stripped lines by
//! the recorded span and pattern-match there.
//!
//! The input is the comment/string-stripped text from [`lexer::strip`],
//! so the parser never sees a brace or keyword inside a literal. It is
//! resilient by construction: anything it does not recognize is skipped
//! token by token, and unbalanced input simply truncates spans at
//! end-of-file — a linter must not crash on the code it inspects.

use crate::lexer;

/// What kind of item a [`Item`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct Name { .. }` / tuple / unit struct.
    Struct,
    /// `enum Name { .. }`.
    Enum,
    /// `union Name { .. }`.
    Union,
    /// `fn name(..) { .. }` (including `const fn`, `unsafe fn`, methods).
    Fn,
    /// `mod name { .. }` or `mod name;`.
    Mod,
    /// `trait Name { .. }`.
    Trait,
    /// `impl Type { .. }` / `impl Trait for Type { .. }`.
    Impl,
    /// `const NAME: Ty = ..;` (associated or free).
    Const,
    /// `static NAME: Ty = ..;`.
    Static,
    /// `extern "C" { .. }` foreign block.
    ExternBlock,
}

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Type text, tokens joined by single spaces (e.g. `Vec < Asn >`
    /// normalizes to `Vec<Asn>` via [`base_type_ident`] when needed).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name. For [`ItemKind::Impl`] this is the header text between
    /// `impl` and the body (`Trait for Type`); empty when unnamed.
    pub name: String,
    /// 1-based line of the declaring keyword.
    pub line: usize,
    /// 1-based first line of the body (the line of `{`), or `line` for
    /// bodiless items (`mod x;`, trait method declarations).
    pub body_start: usize,
    /// 1-based line of the closing `}` (or the `;`).
    pub body_end: usize,
    /// For consts/statics: the declared type text.
    pub ty: String,
    /// For structs with named fields: the fields in declaration order.
    pub fields: Vec<Field>,
    /// Index (into the flat item list) of the enclosing mod/impl/trait,
    /// or `None` at file level.
    pub parent: Option<usize>,
}

/// The leading identifier of a type's final path segment, with
/// references, lifetimes and generics stripped: `&'a mut Vec<Asn>` →
/// `Vec`, `config::SanitizeConfig` → `SanitizeConfig`, `fn(&X) -> u64` →
/// `fn`. Empty for types that do not start with a path.
pub fn base_type_ident(ty: &str) -> &str {
    let mut rest = ty.trim();
    loop {
        let trimmed = rest.trim_start();
        if let Some(r) = trimmed.strip_prefix('&') {
            rest = r;
        } else if trimmed.starts_with('\'') {
            // Lifetime: skip the tick and its identifier.
            let after = &trimmed[1..];
            let end = after
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(after.len());
            rest = &after[end..];
        } else if let Some(r) = trimmed.strip_prefix("mut ") {
            rest = r;
        } else if let Some(r) = trimmed.strip_prefix("dyn ") {
            rest = r;
        } else {
            rest = trimmed;
            break;
        }
    }
    // Path up to the first generic/terminator, then its last segment.
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(rest.len());
    let path = &rest[..end];
    path.rsplit("::").next().unwrap_or(path)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    /// 1-based line.
    line: usize,
}

fn tokenize(lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let ln = i + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut j = 0usize;
        while j < chars.len() {
            let c = chars[j];
            if c.is_whitespace() {
                j += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = j;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..j].iter().collect()),
                    line: ln,
                });
            } else {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line: ln,
                });
                j += 1;
            }
        }
    }
    out
}

/// Parse the items of one stripped source file (from
/// [`lexer::Stripped::lines`]). Items come back in source order,
/// children after their parent, with `parent` links for nesting.
pub fn parse_items(stripped_lines: &[String]) -> Vec<Item> {
    let tokens = tokenize(stripped_lines);
    let mut items = Vec::new();
    let mut pos = 0usize;
    parse_block(&tokens, &mut pos, None, &mut items);
    items
}

/// Convenience: strip + parse raw source.
pub fn parse_source(source: &str) -> Vec<Item> {
    parse_items(&lexer::strip(source).lines)
}

fn ident_at<'t>(tokens: &'t [Token], pos: usize) -> Option<&'t str> {
    match tokens.get(pos).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], pos: usize) -> Option<char> {
    match tokens.get(pos).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn line_at(tokens: &[Token], pos: usize) -> usize {
    tokens
        .get(pos.min(tokens.len().saturating_sub(1)))
        .map(|t| t.line)
        .unwrap_or(1)
}

/// Skip a balanced `open`..`close` region; `pos` must point at the
/// opening token. Leaves `pos` one past the closing token (or at EOF).
fn skip_balanced(tokens: &[Token], pos: &mut usize, open: char, close: char) {
    debug_assert_eq!(punct_at(tokens, *pos), Some(open));
    let mut depth = 0i32;
    while *pos < tokens.len() {
        match punct_at(tokens, *pos) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    return;
                }
            }
            _ => {}
        }
        *pos += 1;
    }
}

/// Skip to the `;` terminating a const/static/use item, tracking nesting
/// so a `;` inside an initializer block does not end the item early.
fn skip_to_semicolon(tokens: &[Token], pos: &mut usize) {
    let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
    while *pos < tokens.len() {
        match punct_at(tokens, *pos) {
            Some('{') => braces += 1,
            Some('}') => braces -= 1,
            Some('(') => parens += 1,
            Some(')') => parens -= 1,
            Some('[') => brackets += 1,
            Some(']') => brackets -= 1,
            Some(';') if braces <= 0 && parens <= 0 && brackets <= 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

/// Advance to the body `{` (or terminating `;`) of a fn/struct/trait
/// header, ignoring braces-free signature punctuation. Returns `true`
/// when a `{` was found (pos points at it), `false` on `;`/EOF (pos one
/// past the `;`).
fn scan_to_body(tokens: &[Token], pos: &mut usize) -> bool {
    let mut parens = 0i32;
    while *pos < tokens.len() {
        match punct_at(tokens, *pos) {
            Some('(') => parens += 1,
            Some(')') => parens -= 1,
            Some('{') if parens <= 0 => return true,
            Some(';') if parens <= 0 => {
                *pos += 1;
                return false;
            }
            _ => {}
        }
        *pos += 1;
    }
    false
}

/// Capture type text from `pos` until an `=`/`;`/`,` at zero nesting.
/// Angle brackets are tracked so `Iterator<Item = u32>` keeps its `=`.
fn capture_type(tokens: &[Token], pos: &mut usize, extra_stop: char) -> String {
    let (mut angles, mut parens, mut brackets) = (0i32, 0i32, 0i32);
    let mut prev_minus = false;
    let mut text = String::new();
    while *pos < tokens.len() {
        match &tokens[*pos].tok {
            Tok::Punct(c) => {
                let c = *c;
                let nested = angles > 0 || parens > 0 || brackets > 0;
                if (c == '=' || c == ';' || c == extra_stop) && !nested {
                    break;
                }
                match c {
                    '<' => angles += 1,
                    '>' if prev_minus => {} // `->` in fn-pointer types
                    '>' if angles > 0 => angles -= 1,
                    '(' => parens += 1,
                    ')' if parens > 0 => parens -= 1,
                    ')' => break, // closing an outer scope (tuple struct etc.)
                    '[' => brackets += 1,
                    ']' if brackets > 0 => brackets -= 1,
                    ']' => break,
                    '}' if !nested => break,
                    _ => {}
                }
                prev_minus = c == '-';
                text.push(c);
            }
            Tok::Ident(s) => {
                prev_minus = false;
                if !text.is_empty() && text.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    text.push(' ');
                }
                text.push_str(s);
            }
        }
        *pos += 1;
    }
    text
}

/// Parse the named fields of a struct body; `pos` points at the opening
/// `{`. Leaves `pos` one past the matching `}`.
fn parse_struct_fields(tokens: &[Token], pos: &mut usize, end_line: &mut usize) -> Vec<Field> {
    let mut fields = Vec::new();
    *pos += 1; // past `{`
    loop {
        match punct_at(tokens, *pos) {
            Some('}') => {
                *end_line = line_at(tokens, *pos);
                *pos += 1;
                return fields;
            }
            Some('#') => {
                *pos += 1;
                if punct_at(tokens, *pos) == Some('[') {
                    skip_balanced(tokens, pos, '[', ']');
                }
                continue;
            }
            Some(',') => {
                *pos += 1;
                continue;
            }
            None if *pos >= tokens.len() => return fields,
            _ => {}
        }
        match ident_at(tokens, *pos) {
            Some("pub") => {
                *pos += 1;
                if punct_at(tokens, *pos) == Some('(') {
                    skip_balanced(tokens, pos, '(', ')');
                }
            }
            Some(name) => {
                let name = name.to_string();
                let line = line_at(tokens, *pos);
                *pos += 1;
                if punct_at(tokens, *pos) == Some(':') {
                    *pos += 1;
                    let ty = capture_type(tokens, pos, ',');
                    fields.push(Field { name, ty, line });
                }
                // Not followed by `:` — stray token, already advanced.
            }
            None => {
                *pos += 1; // unexpected punctuation; resynchronize
            }
        }
    }
}

/// Item-body modifiers that may precede a declaring keyword.
const MODIFIERS: &[&str] = &["pub", "unsafe", "async", "default", "crate"];

#[allow(clippy::too_many_lines)]
fn parse_block(
    tokens: &[Token],
    pos: &mut usize,
    parent: Option<usize>,
    items: &mut Vec<Item>,
) -> usize {
    let mut last_line = line_at(tokens, *pos);
    while *pos < tokens.len() {
        last_line = tokens[*pos].line;
        match &tokens[*pos].tok {
            Tok::Punct('}') => return last_line, // caller consumes
            Tok::Punct('#') => {
                *pos += 1;
                if punct_at(tokens, *pos) == Some('!') {
                    *pos += 1;
                }
                if punct_at(tokens, *pos) == Some('[') {
                    skip_balanced(tokens, pos, '[', ']');
                }
            }
            Tok::Punct('{') => skip_balanced(tokens, pos, '{', '}'),
            Tok::Punct(_) => *pos += 1,
            Tok::Ident(word) => {
                let kw_line = tokens[*pos].line;
                match word.as_str() {
                    w if MODIFIERS.contains(&w) => {
                        *pos += 1;
                        if w == "pub" && punct_at(tokens, *pos) == Some('(') {
                            skip_balanced(tokens, pos, '(', ')');
                        }
                    }
                    "extern" => {
                        *pos += 1;
                        // `extern "C" { .. }` (string already stripped) vs
                        // `extern crate x;` vs `extern "C" fn`.
                        match (punct_at(tokens, *pos), ident_at(tokens, *pos)) {
                            (Some('{'), _) => {
                                let body_start = line_at(tokens, *pos);
                                let start = *pos;
                                skip_balanced(tokens, pos, '{', '}');
                                let _ = start;
                                items.push(Item {
                                    kind: ItemKind::ExternBlock,
                                    name: String::new(),
                                    line: kw_line,
                                    body_start,
                                    body_end: line_at(tokens, pos.saturating_sub(1)),
                                    ty: String::new(),
                                    fields: Vec::new(),
                                    parent,
                                });
                            }
                            (_, Some("crate")) => skip_to_semicolon(tokens, pos),
                            _ => {} // modifier position (`extern "C" fn`)
                        }
                    }
                    "struct" | "enum" | "union" => {
                        let kind = match word.as_str() {
                            "struct" => ItemKind::Struct,
                            "enum" => ItemKind::Enum,
                            _ => ItemKind::Union,
                        };
                        *pos += 1;
                        let name = ident_at(tokens, *pos).unwrap_or("").to_string();
                        if !name.is_empty() {
                            *pos += 1;
                        }
                        if punct_at(tokens, *pos) == Some('<') {
                            skip_balanced(tokens, pos, '<', '>');
                        }
                        // Skip a `where` clause up to the body.
                        let mut body_start = kw_line;
                        let mut body_end = kw_line;
                        let mut fields = Vec::new();
                        if punct_at(tokens, *pos) == Some('(') {
                            // Tuple struct: no named fields.
                            skip_balanced(tokens, pos, '(', ')');
                            skip_to_semicolon(tokens, pos);
                            body_end = line_at(tokens, pos.saturating_sub(1));
                        } else if scan_to_body(tokens, pos) {
                            body_start = line_at(tokens, *pos);
                            if kind == ItemKind::Struct {
                                fields = parse_struct_fields(tokens, pos, &mut body_end);
                            } else {
                                skip_balanced(tokens, pos, '{', '}');
                                body_end = line_at(tokens, pos.saturating_sub(1));
                            }
                        } else {
                            body_end = line_at(tokens, pos.saturating_sub(1));
                        }
                        items.push(Item {
                            kind,
                            name,
                            line: kw_line,
                            body_start,
                            body_end,
                            ty: String::new(),
                            fields,
                            parent,
                        });
                    }
                    "fn" => {
                        *pos += 1;
                        let name = ident_at(tokens, *pos).unwrap_or("").to_string();
                        if !name.is_empty() {
                            *pos += 1;
                        }
                        let mut body_start = kw_line;
                        if scan_to_body(tokens, pos) {
                            body_start = line_at(tokens, *pos);
                            skip_balanced(tokens, pos, '{', '}');
                        }
                        let body_end = line_at(tokens, pos.saturating_sub(1));
                        items.push(Item {
                            kind: ItemKind::Fn,
                            name,
                            line: kw_line,
                            body_start,
                            body_end,
                            ty: String::new(),
                            fields: Vec::new(),
                            parent,
                        });
                    }
                    "mod" | "trait" | "impl" => {
                        let kind = match word.as_str() {
                            "mod" => ItemKind::Mod,
                            "trait" => ItemKind::Trait,
                            _ => ItemKind::Impl,
                        };
                        *pos += 1;
                        let name = if kind == ItemKind::Impl {
                            // Header text between `impl` and the body.
                            capture_type(tokens, pos, '{')
                        } else {
                            let n = ident_at(tokens, *pos).unwrap_or("").to_string();
                            if !n.is_empty() {
                                *pos += 1;
                            }
                            n
                        };
                        // `impl` in return/argument type position is not an
                        // item; it never reaches here because those tokens
                        // are consumed inside fn signature scans.
                        let idx = items.len();
                        items.push(Item {
                            kind,
                            name,
                            line: kw_line,
                            body_start: kw_line,
                            body_end: kw_line,
                            ty: String::new(),
                            fields: Vec::new(),
                            parent,
                        });
                        if scan_to_body(tokens, pos) {
                            items[idx].body_start = line_at(tokens, *pos);
                            *pos += 1; // past `{`
                            let end_line = parse_block(tokens, pos, Some(idx), items);
                            if punct_at(tokens, *pos) == Some('}') {
                                *pos += 1;
                            }
                            items[idx].body_end = end_line;
                        } else {
                            items[idx].body_end = line_at(tokens, pos.saturating_sub(1));
                        }
                    }
                    "const" | "static" => {
                        let kind = if word == "const" {
                            ItemKind::Const
                        } else {
                            ItemKind::Static
                        };
                        *pos += 1;
                        if ident_at(tokens, *pos) == Some("fn") {
                            continue; // `const fn` — handled by the fn arm
                        }
                        if ident_at(tokens, *pos) == Some("mut") {
                            *pos += 1;
                        }
                        let name = ident_at(tokens, *pos).unwrap_or("").to_string();
                        if !name.is_empty() {
                            *pos += 1;
                        }
                        let mut ty = String::new();
                        if punct_at(tokens, *pos) == Some(':') {
                            *pos += 1;
                            ty = capture_type(tokens, pos, ',');
                        }
                        skip_to_semicolon(tokens, pos);
                        items.push(Item {
                            kind,
                            name,
                            line: kw_line,
                            body_start: kw_line,
                            body_end: line_at(tokens, pos.saturating_sub(1)),
                            ty,
                            fields: Vec::new(),
                            parent,
                        });
                    }
                    "use" | "type" => {
                        *pos += 1;
                        skip_to_semicolon(tokens, pos);
                    }
                    "macro_rules" => {
                        *pos += 1; // `!`, name, then a balanced body
                        while *pos < tokens.len() {
                            match punct_at(tokens, *pos) {
                                Some('{') => {
                                    skip_balanced(tokens, pos, '{', '}');
                                    break;
                                }
                                Some('(') => {
                                    skip_balanced(tokens, pos, '(', ')');
                                    break;
                                }
                                _ => *pos += 1,
                            }
                        }
                    }
                    _ => *pos += 1,
                }
            }
        }
    }
    last_line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse_source(src)
    }

    #[test]
    fn struct_fields_with_types() {
        let src = "\
pub struct Config {
    /// docs
    pub threshold: f64,
    pub table: HashMap<Asn, Vec<Ipv4Prefix>>,
    run: fn(&Env, &[Artifact]) -> Result<Artifact, EngineError>,
}
";
        let it = &items(src)[0];
        assert_eq!(it.kind, ItemKind::Struct);
        assert_eq!(it.name, "Config");
        let names: Vec<&str> = it.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["threshold", "table", "run"]);
        assert_eq!(it.fields[0].line, 3);
        assert_eq!(base_type_ident(&it.fields[1].ty), "HashMap");
        assert_eq!(base_type_ident(&it.fields[2].ty), "fn");
        assert_eq!(it.body_end, 6);
    }

    #[test]
    fn fn_body_spans() {
        let src = "\
fn a() -> u64 {
    let x = 1;
    x
}
pub const fn b() {}
";
        let its = items(src);
        assert_eq!(its[0].name, "a");
        assert_eq!((its[0].body_start, its[0].body_end), (1, 4));
        assert_eq!(its[1].name, "b");
        assert_eq!(its[1].kind, ItemKind::Fn);
    }

    #[test]
    fn nested_mod_and_consts() {
        let src = "\
pub mod kind {
    pub const SANITIZED: u16 = 1;
    pub const DEGREES: u16 = 2;
}
const TOP: usize = 3;
";
        let its = items(src);
        let m = its.iter().position(|i| i.kind == ItemKind::Mod).unwrap();
        assert_eq!(its[m].name, "kind");
        let consts: Vec<&Item> = its
            .iter()
            .filter(|i| i.kind == ItemKind::Const && i.parent == Some(m))
            .collect();
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].name, "SANITIZED");
        assert_eq!(consts[0].ty, "u16");
        assert_eq!(consts[0].line, 2);
        let top = its.iter().find(|i| i.name == "TOP").unwrap();
        assert_eq!(top.parent, None);
    }

    #[test]
    fn impl_methods_have_parent() {
        let src = "\
impl Mapping {
    pub fn new(file: &File, len: usize) -> Option<Mapping> {
        None
    }
}
unsafe impl Send for Mapping {}
";
        let its = items(src);
        let im = its.iter().position(|i| i.kind == ItemKind::Impl).unwrap();
        let new = its.iter().find(|i| i.name == "new").unwrap();
        assert_eq!(new.parent, Some(im));
        let send: Vec<&Item> = its.iter().filter(|i| i.kind == ItemKind::Impl).collect();
        assert_eq!(send.len(), 2);
        assert!(send[1].name.contains("Send"));
    }

    #[test]
    fn static_with_slice_initializer() {
        let src = "\
static STAGES: &[StageSpec] = &[
    StageSpec { name: \"s1\", cfg_fp: fp_one },
];
fn after() {}
";
        let its = items(src);
        assert_eq!(its[0].kind, ItemKind::Static);
        assert_eq!(its[0].name, "STAGES");
        assert_eq!(its[1].name, "after");
    }

    #[test]
    fn tuple_and_unit_structs() {
        let src = "pub struct Asn(pub u32);\npub struct Marker;\nfn f() {}\n";
        let its = items(src);
        assert_eq!(its[0].name, "Asn");
        assert!(its[0].fields.is_empty());
        assert_eq!(its[1].name, "Marker");
        assert_eq!(its[2].name, "f");
    }

    #[test]
    fn base_type_ident_strips_refs_and_paths() {
        assert_eq!(base_type_ident("&'c InferenceConfig"), "InferenceConfig");
        assert_eq!(base_type_ident("crate::clique::CliqueConfig"), "CliqueConfig");
        assert_eq!(base_type_ident("HashSet<Asn>"), "HashSet");
        assert_eq!(base_type_ident("f64"), "f64");
        assert_eq!(base_type_ident("&mut Vec<u8>"), "Vec");
    }

    #[test]
    fn enum_bodies_are_opaque_spans() {
        let src = "\
pub enum Artifact {
    Sanitized(Arc<SanitizedPaths>),
    Cone(Arc<CustomerCones>),
}
";
        let its = items(src);
        assert_eq!(its[0].kind, ItemKind::Enum);
        assert_eq!((its[0].body_start, its[0].body_end), (1, 4));
    }
}
