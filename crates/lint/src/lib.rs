//! `asrank-lint` — repo-specific static source checker for the asrank
//! workspace.
//!
//! Nine rules guard the properties the test suite cannot cheaply
//! observe. Five are file-local pattern checks: deterministic iteration
//! in ordered-output code (L001), panic-freedom of `crates/core` (L002),
//! confinement of relaxed atomics to the one audited module (L003), doc
//! coverage of the public API (L004), and checked narrowing on dense-id
//! arithmetic (L005). Four are cross-file semantic passes over a
//! whole-workspace item index ([`semantic::WorkspaceIndex`]): stage
//! fingerprint coverage of every config field (L006), `unsafe`/`SAFETY:`
//! contracts (L007), the release/acquire pairing of atomic publication
//! protocols (L008), and codec kind-tag exhaustiveness (L009). Strict
//! mode adds L000, a meta-check on the allow-annotations themselves. See
//! [`rules::RULES`] for the full table and `README.md` for the workflow.
//!
//! Zero dependencies by design: the linter must build and run even when
//! the rest of the workspace is broken, which is exactly when it is most
//! useful.

pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use rules::{check_file, Finding, RuleInfo, META_RULE, RULES};
pub use semantic::{check_workspace, WorkspaceIndex};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of linting a file tree.
#[derive(Debug)]
pub struct Report {
    /// All findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collect the workspace source files the linter covers: `src/` and
/// `tests/` of the root facade crate plus `crates/*/src` and
/// `crates/*/tests`. Vendored stubs, `target/`, benches, and any
/// directory named `fixtures` (seeded-violation test data) are
/// deliberately out of scope. Paths come back sorted for deterministic
/// reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        for name in names {
            roots.push(name.join("src"));
            roots.push(name.join("tests"));
        }
    }
    for src in roots {
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some((rel, p))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().map(|n| n == "fixtures").unwrap_or(false) {
                continue; // seeded-violation test data, not workspace code
            }
            collect_rs(&path, files)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`, restricted to `rule_filter`
/// when non-empty (rule ids like `L001`). `strict` additionally audits
/// the allow-annotations themselves (L000: unknown slugs, missing
/// reasons).
pub fn lint_workspace(root: &Path, rule_filter: &[String], strict: bool) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let files_scanned = files.len();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, path) in files {
        sources.push((rel, fs::read_to_string(&path)?));
    }

    let mut findings = Vec::new();
    for (rel, source) in &sources {
        findings.extend(check_file(rel, source));
    }
    let index = WorkspaceIndex::build(&sources);
    findings.extend(semantic::check_index(&index));
    if strict {
        findings.extend(semantic::annotation_findings(&index));
    }
    if !rule_filter.is_empty() {
        findings.retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// Render findings in the human, diff-style format:
///
/// ```text
/// crates/core/src/cone.rs:508: L001 [nondeterministic-iter] iteration over ...
///   |     let distinct: HashSet<&AsPath> = sanitized.paths().collect();
///   = help: sort the iterated result ...
/// ```
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n  |  {}\n",
            f.file, f.line, f.rule, f.slug, f.message, f.excerpt
        ));
        if let Some(info) = RULES
            .iter()
            .chain(std::iter::once(&META_RULE))
            .find(|r| r.id == f.rule)
        {
            out.push_str(&format!("  = help: {}\n", info.help));
        }
    }
    if report.findings.is_empty() {
        out.push_str(&format!(
            "asrank-lint: clean ({} files scanned)\n",
            report.files_scanned
        ));
    } else {
        out.push_str(&format!(
            "asrank-lint: {} violation(s) in {} file(s) ({} files scanned)\n",
            report.findings.len(),
            {
                let mut files: Vec<&str> = report.findings.iter().map(|f| f.file.as_str()).collect();
                files.dedup();
                files.len()
            },
            report.files_scanned
        ));
    }
    out
}

/// The lint-JSON schema version. Bump only when a key is renamed,
/// removed, or changes meaning; adding keys is backward-compatible and
/// does not bump it. Pinned by `tests/schema.rs` so downstream tooling
/// can rely on the shape.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Render findings as a single machine-readable JSON object.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"tool\":\"asrank-lint\",\"schema_version\":");
    out.push_str(&JSON_SCHEMA_VERSION.to_string());
    out.push_str(",\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"violations\":");
    out.push_str(&report.findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"slug\":{},\"file\":{},\"line\":{},\"message\":{},\"excerpt\":{}}}",
            json_str(f.rule),
            json_str(f.slug),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(&f.excerpt),
        ));
    }
    out.push_str("]}\n");
    out
}

/// Render the `--fix-annotations` dry run: for every finding, the exact
/// `// lint: allow(..)` line that would suppress it and where to put it.
/// Nothing is written — triage stays a human decision, but the reviewer
/// no longer needs to know each rule's slug by heart.
pub fn render_fix_annotations(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.rule == META_RULE.id {
            // L000 flags a broken annotation; the fix is editing it, not
            // adding another.
            out.push_str(&format!(
                "{}:{}: {} — rewrite the annotation on this line:\n  // lint: allow(<slug>, <reason>)\n",
                f.file, f.line, f.rule
            ));
            continue;
        }
        out.push_str(&format!(
            "{}:{}: {} [{}] — to suppress, insert above line {} (or append to it):\n  // lint: allow({}, <why this is sound>)\n",
            f.file, f.line, f.rule, f.slug, f.line, f.slug
        ));
    }
    if report.findings.is_empty() {
        out.push_str("asrank-lint: nothing to annotate (no findings)\n");
    } else {
        out.push_str(&format!(
            "asrank-lint: {} finding(s); prefer fixing over annotating — every allow needs a reason\n",
            report.findings.len()
        ));
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn human_render_mentions_rule_and_location() {
        let report = Report {
            findings: vec![Finding {
                rule: "L002",
                slug: "panics",
                file: "crates/core/src/x.rs".into(),
                line: 7,
                message: "boom".into(),
                excerpt: "x.unwrap()".into(),
            }],
            files_scanned: 3,
        };
        let text = render_human(&report);
        assert!(text.contains("crates/core/src/x.rs:7: L002 [panics] boom"));
        assert!(text.contains("1 violation(s)"));
    }
}
