//! CLI entry point for `asrank-lint`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error — so
//! `make lint` and CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
asrank-lint — repo-specific static checks for the asrank workspace

USAGE:
    asrank-lint [--root DIR] [--format human|json] [--rule L00N]...
                [--strict] [--fix-annotations]

OPTIONS:
    --root DIR         workspace root to scan (default: .)
    --format FMT       output format: human (default) or json
    --rule L00N        run only the named rule(s); repeatable
    --strict           also audit the annotations themselves (L000:
                       unknown slugs, missing reasons)
    --fix-annotations  dry run: print the exact allow-annotation line and
                       location for each finding (writes nothing)
    --list-rules       print the rule table and exit
    -h, --help         show this help

Rules L001-L005 are scoped per file; L006-L009 are cross-file semantic
passes over the whole workspace (see README.md). Suppress a single
finding with a trailing or preceding comment:
    // lint: allow(<slug>, <reason>)
The reason is mandatory; annotations without one are ignored.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut format = String::from("human");
    let mut rules: Vec<String> = Vec::new();
    let mut strict = false;
    let mut fix_annotations = false;

    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for r in &asrank_lint::RULES {
                    println!("{} [{}] {}", r.id, r.slug, r.summary);
                }
                let m = &asrank_lint::META_RULE;
                println!("{} [{}] {} (--strict only)", m.id, m.slug, m.summary);
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
                i += 1;
            }
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --format needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                if v != "human" && v != "json" {
                    eprintln!("error: unknown format `{v}` (human|json)");
                    return ExitCode::from(2);
                }
                format = v.clone();
                i += 1;
            }
            "--rule" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --rule needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                if !asrank_lint::RULES.iter().any(|r| r.id == v) && v != asrank_lint::META_RULE.id {
                    eprintln!("error: unknown rule `{v}` (try --list-rules)");
                    return ExitCode::from(2);
                }
                rules.push(v.clone());
                i += 1;
            }
            "--strict" => strict = true,
            "--fix-annotations" => fix_annotations = true,
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "error: {} does not look like a workspace root (no Cargo.toml); use --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match asrank_lint::lint_workspace(&root, &rules, strict) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_annotations {
        print!("{}", asrank_lint::render_fix_annotations(&report));
    } else if format == "json" {
        print!("{}", asrank_lint::render_json(&report));
    } else {
        print!("{}", asrank_lint::render_human(&report));
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
