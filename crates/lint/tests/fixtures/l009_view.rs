//! L009 fixture, view side: only `ALPHA` has a borrowed-view path.

pub fn view_alpha(bytes: &[u8]) -> View {
    let d = Decoder::open(bytes, kind::ALPHA);
    View::from(d)
}
