// Fixture for L003 (relaxed-ordering). Linted under a non-par.rs label.
use std::sync::atomic::{AtomicUsize, Ordering};

fn violations(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed); // line 5
    let v = c.load(std::sync::atomic::Ordering::Relaxed); // line 6
    drop(v);
}

fn seqcst_is_fine(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::SeqCst);
    let v = c.load(Ordering::Acquire);
    drop(v);
}

fn annotated(c: &AtomicUsize) {
    // lint: allow(relaxed-ordering, monotonic counter read only after join)
    c.fetch_add(1, Ordering::Relaxed);
}
