//! L006 fixture, engine side: `FpCtx`, a `cfg_fp:` stage registry, and
//! the fingerprint functions. The config structs live in
//! `l006_config.rs` — coverage is checked across the two files.

struct FpCtx<'c> {
    cfg: &'c InferenceConfig,
    prefix_fp: u64,
}

struct StageSpec {
    name: &'static str,
    cfg_fp: fn(&FpCtx) -> u64,
}

static STAGES: &[StageSpec] = &[
    StageSpec {
        name: "s1",
        cfg_fp: fp_alpha,
    },
    StageSpec {
        name: "s2",
        cfg_fp: fp_nested,
    },
];

fn fp_alpha(ctx: &FpCtx) -> u64 {
    ctx.cfg.alpha.to_bits() ^ ctx.prefix_fp
}

fn fp_nested(ctx: &FpCtx) -> u64 {
    helper(ctx)
}

/// Not registered itself; reachable from `fp_nested`, so the fields it
/// reads still count as covered.
fn helper(ctx: &FpCtx) -> u64 {
    u64::from(ctx.cfg.nested.knob)
}
