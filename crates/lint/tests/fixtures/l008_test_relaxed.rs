//! L008 fixture, test-tree side. Seeded violation:
//!   line 10 — bare Relaxed in test code
//! Line 15 is annotated with a reason and stays silent.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

pub fn bump_allowed() -> u64 {
    // lint: allow(atomics, unique ids only; ordering is irrelevant)
    COUNTER.fetch_add(1, Ordering::Relaxed)
}
