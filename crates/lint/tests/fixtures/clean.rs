// Clean fixture: linted under the most heavily scoped label
// (crates/core/src/pipeline/...) and must produce zero findings.
use std::collections::{HashMap, HashSet};

/// Deterministic drain of a hash map: collect then sort.
pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

/// Order-insensitive reduction over a hash set.
pub fn contains_even(s: &HashSet<u32>) -> bool {
    s.iter().any(|&x| x % 2 == 0)
}

/// Checked conversions only; errors surface as values, not panics.
pub fn safe_len(v: &[u32]) -> Result<u32, std::num::TryFromIntError> {
    u32::try_from(v.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anything_goes_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _k in m.keys() {}
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
