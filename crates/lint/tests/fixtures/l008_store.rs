//! L008 fixture, store side. Seeded violation:
//!   line 15 — Release store on `orphan` with no Acquire load anywhere
//!             in the unit (the `generation` load lives in
//!             `l008_load.rs`, proving cross-file pairing)

use std::sync::atomic::{AtomicU64, Ordering};

pub struct State {
    pub generation: AtomicU64,
    pub orphan: AtomicU64,
}

pub fn publish(s: &State, g: u64) {
    s.generation.store(g, Ordering::Release);
    s.orphan.store(g, Ordering::Release);
}
