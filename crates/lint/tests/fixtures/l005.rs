// Fixture for L005 (narrowing-cast). Linted under a crates/core/src label.

fn violations(ids: &[u32], pos: usize) -> (u8, u16, u32, u32) {
    let a = pos as u8; // line 4
    let b = pos as u16; // line 5
    let c = ids.len() as u32; // line 6
    let d = ids.iter().count() as u32; // line 7
    (a, b, c, d)
}

fn checked_or_widening_is_fine(ids: &[u32], x: u32) -> (u32, usize, u64) {
    let a = u32::try_from(ids.len()).unwrap_or(u32::MAX);
    let b = x as usize; // widening: fine
    let c = x as u64; // widening: fine
    (a, b, c)
}

fn plain_u32_cast_is_fine(pos: usize) -> u32 {
    // Not preceded by len()/count(): the heuristic stays quiet.
    pos as u32
}

fn annotated(ids: &[u32]) -> u32 {
    // lint: allow(narrowing-cast, bench-only path with <1k ids)
    ids.len() as u32
}
