//! L007 fixture. Under an allowlisted label the seeded violations are:
//!   line 11 — `unsafe impl Sync` with no SAFETY of its own (the walk
//!             up stops at the `unsafe impl Send` code line)
//!   line 19 — unsafe block with no SAFETY anywhere nearby
//! Under a non-allowlisted label every unsafe line is a finding.

pub struct Wrapper(*mut u8);

// SAFETY: the pointer is never dereferenced through a shared handle.
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}

pub fn read(w: &Wrapper) -> u8 {
    // SAFETY: valid for reads by construction of Wrapper.
    unsafe { *w.0 }
}

pub fn write(w: &Wrapper, v: u8) {
    unsafe {
        *w.0 = v;
    }
}

pub fn trailing(w: &Wrapper) -> u8 {
    unsafe { *w.0 } // SAFETY: a same-line marker also satisfies the rule
}
