// Fixture for L002 (panics). Linted under a crates/core/src label.
// Expected findings asserted by line in tests/selftest.rs.

fn violations(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // line 5
    let b = r.expect("should be ok"); // line 6
    if a > b {
        panic!("a exceeded b"); // line 8
    }
    match a {
        0 => unreachable!(), // line 11
        1 => todo!(), // line 12
        2 => unimplemented!(), // line 13
        _ => a + b,
    }
}

fn not_flagged(x: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else / expect_err are not panic sites.
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 1);
    let s = "panic! inside a string is fine";
    drop(s);
    a + b
}

fn annotated(x: Option<u32>) -> u32 {
    // lint: allow(panics, caller guarantees x is Some by construction)
    x.expect("always present")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
