// Fixture for L001 (nondeterministic-iter). Linted under a label inside
// a determinism-critical module; expected findings are asserted by line
// number in tests/selftest.rs — keep line positions stable.
use std::collections::{HashMap, HashSet};

fn sorted_is_fine(m: &HashMap<u32, u32>) {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
}

fn order_free_sink_is_fine(s2: &HashSet<u32>) {
    let any = s2.iter().any(|&x| x > 3);
    let n = s2.iter().count();
    drop((any, n));
}

fn annotated_is_fine(m: &HashMap<u32, u32>) {
    // lint: allow(nondeterministic-iter, feeds a commutative sum in the caller)
    for k in m.keys() {}
}

fn violations(m: &HashMap<u32, u32>) {
    for k in m.keys() {} // line 23: keys() iteration, no sort
    let s: HashSet<u32> = HashSet::new();
    let v: Vec<u32> = s.iter().copied().collect(); // line 25: unsorted collect
    drop(v);
    for (k, val) in m {} // line 27: bare for-in over the map
}

fn annotation_without_reason_still_flagged(m: &HashMap<u32, u32>) {
    // lint: allow(nondeterministic-iter)
    for k in m.keys() {} // line 32: reason-less annotation does not count
}

fn multiline_chain(s: HashSet<u32>) {
    let v: Vec<u32> = s // line 36: chain broken across lines
        .into_iter()
        .collect();
    drop(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    fn in_tests_is_fine(m: &HashMap<u32, u32>) {
        for k in m.keys() {} // test code: exempt
    }
}
