//! L008 fixture, load side: the Acquire half of the `generation`
//! handshake, in a different file of the same compilation unit.

use std::sync::atomic::Ordering;

pub fn observe(s: &super::State) -> u64 {
    s.generation.load(Ordering::Acquire)
}
