//! L009 fixture, codec side: encode sites and decode match arms for
//! `ALPHA` and `BETA` only. Note `tag_name` maps names to tags with the
//! tag on the *right* of `=>` — that must not count as decode coverage.

pub fn encode_alpha() -> Encoder {
    Encoder::new(kind::ALPHA)
}

pub fn encode_beta() -> Encoder {
    Encoder::new(kind::BETA)
}

pub fn decode(tag: u16) -> Artifact {
    match tag {
        kind::ALPHA => decode_alpha(),
        kind::BETA => decode_beta(),
        _ => Artifact::Unknown,
    }
}

pub fn tag_name(name: &str) -> u16 {
    match name {
        "orphan" => kind::ORPHAN,
        _ => 0,
    }
}
