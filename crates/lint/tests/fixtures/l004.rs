// Fixture for L004 (missing-doc). Linted under a crates/core/src label.

/// Documented: fine.
pub fn documented() {}

pub fn undocumented() {} // line 6

/// Documented through an attribute stack: fine.
#[inline]
#[must_use]
pub fn documented_behind_attrs() -> u32 {
    1
}

#[inline]
pub fn undocumented_behind_attr() {} // line 16

// A plain comment is not a doc comment.
pub fn undocumented_with_plain_comment() {} // line 19

#[doc = "attribute-style docs are accepted"]
pub fn documented_by_attribute() {}

pub(crate) fn crate_visible_needs_no_doc() {}

fn private_needs_no_doc() {}

/// Documented const fn: fine.
pub const fn documented_const() -> u32 {
    2
}

pub const fn undocumented_const() -> u32 {
    3 // header line 33 is the finding
}

struct S;

impl S {
    /// Documented method: fine.
    pub fn documented_method(&self) {}

    pub fn undocumented_method(&self) {} // line 43
}

#[cfg(test)]
mod tests {
    pub fn test_helpers_need_no_doc() {}
}
