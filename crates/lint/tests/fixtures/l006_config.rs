//! L006 fixture, config side: structs feeding the `FpCtx` defined in
//! `l006_engine.rs`. Seeded violations:
//!   line 12 — `fresh_knob` misses the fingerprint chain entirely
//!   line 16 — `reasonless` is annotated, but without a reason
//!   line 23 — `dead` in the nested struct is never fingerprinted

pub struct InferenceConfig {
    /// Mixed into `fp_alpha`.
    pub alpha: f64,
    /// Reached through the helper called by `fp_nested`.
    pub nested: NestedConfig,
    pub fresh_knob: bool,
    /// Deliberately excluded, with a reason: fine.
    // lint: allow(fp-excluded, display-only knob; it never changes stage outputs)
    pub verbosity: u8,
    pub reasonless: u8, // lint: allow(fp-excluded)
}

pub struct NestedConfig {
    /// Covered via `helper`.
    pub knob: u32,
    /// Never read by any fingerprint function.
    pub dead: u32,
}
