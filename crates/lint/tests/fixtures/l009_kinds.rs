//! L009 fixture, tag side. Seeded violations:
//!   line 9  — `BETA` has encode + decode but no view reference
//!   line 11 — `ORPHAN` has no coverage at all

pub mod kind {
    /// Fully covered: encode, decode, view.
    pub const ALPHA: u16 = 1;
    /// Encoded and decoded, never viewed.
    pub const BETA: u16 = 2;
    /// Dead tag.
    pub const ORPHAN: u16 = 3;
}
