//! Fixture tests for the cross-file semantic rules (L006–L009): exact
//! rule/file/line spans against seeded violations, with the fixtures
//! labelled as the workspace paths each rule scopes on.

use asrank_lint::{check_workspace, Finding};
use std::fs;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(rel, fx)| (rel.to_string(), fixture(fx)))
        .collect()
}

/// (rule, file, line) triples of all findings, in report order.
fn spans(findings: &[Finding]) -> Vec<(&'static str, String, usize)> {
    findings
        .iter()
        .map(|f| (f.rule, f.file.clone(), f.line))
        .collect()
}

// ---------------------------------------------------------------- L006

#[test]
fn l006_uncovered_fields_across_files() {
    let files = ws(&[
        ("crates/core/src/engine.rs", "l006_engine.rs"),
        ("crates/core/src/pipeline/mod.rs", "l006_config.rs"),
    ]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![
            ("L006", "crates/core/src/pipeline/mod.rs".to_string(), 12),
            ("L006", "crates/core/src/pipeline/mod.rs".to_string(), 16),
            ("L006", "crates/core/src/pipeline/mod.rs".to_string(), 23),
        ],
        "findings: {findings:#?}"
    );
    // The freshly added knob names the struct, the field, and the bug class.
    let fresh = findings.iter().find(|f| f.line == 12).unwrap();
    assert!(
        fresh.message.contains("InferenceConfig.fresh_knob") && fresh.message.contains("stale"),
        "{}",
        fresh.message
    );
    // The reason-less exclusion does not suppress, and says why.
    let reasonless = findings.iter().find(|f| f.line == 16).unwrap();
    assert!(reasonless.message.contains("no reason"), "{}", reasonless.message);
    // The nested struct is reached through a covered field's type.
    let nested = findings.iter().find(|f| f.line == 23).unwrap();
    assert!(nested.message.contains("NestedConfig.dead"), "{}", nested.message);
}

#[test]
fn l006_silent_without_fingerprint_machinery() {
    // No FpCtx anywhere: the rule does not apply (fixture workspaces,
    // downstream forks without the engine).
    let files = ws(&[("crates/core/src/pipeline/mod.rs", "l006_config.rs")]);
    let findings = check_workspace(&files);
    assert!(
        findings.iter().all(|f| f.rule != "L006"),
        "findings: {findings:#?}"
    );
}

#[test]
fn l006_registry_missing_is_itself_a_finding() {
    // FpCtx exists but the stage table registers nothing: one finding at
    // the struct, not silence.
    let engine = "struct FpCtx<'c> {\n    cfg: &'c Cfg,\n}\n";
    let files = vec![("crates/core/src/engine.rs".to_string(), engine.to_string())];
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![("L006", "crates/core/src/engine.rs".to_string(), 1)],
        "findings: {findings:#?}"
    );
    assert!(findings[0].message.contains("no `cfg_fp:`"), "{}", findings[0].message);
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_allowlisted_module_needs_safety_comments() {
    let files = ws(&[("crates/serve/src/mmap.rs", "l007.rs")]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![
            ("L007", "crates/serve/src/mmap.rs".to_string(), 11),
            ("L007", "crates/serve/src/mmap.rs".to_string(), 19),
        ],
        "findings: {findings:#?}"
    );
    assert!(findings[0].message.contains("SAFETY"), "{}", findings[0].message);
}

#[test]
fn l007_outside_allowlist_every_unsafe_is_flagged() {
    let files = ws(&[("crates/core/src/bad.rs", "l007.rs")]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![
            ("L007", "crates/core/src/bad.rs".to_string(), 10),
            ("L007", "crates/core/src/bad.rs".to_string(), 11),
            ("L007", "crates/core/src/bad.rs".to_string(), 15),
            ("L007", "crates/core/src/bad.rs".to_string(), 19),
            ("L007", "crates/core/src/bad.rs".to_string(), 25),
        ],
        "findings: {findings:#?}"
    );
    assert!(
        findings[0].message.contains("allowlisted"),
        "{}",
        findings[0].message
    );
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_unpaired_release_store_cross_file() {
    // The `generation` Acquire load lives in a *different file* of the
    // same unit, so only `orphan` is flagged.
    let files = ws(&[
        ("crates/serve/src/state.rs", "l008_store.rs"),
        ("crates/serve/src/reader.rs", "l008_load.rs"),
    ]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![("L008", "crates/serve/src/state.rs".to_string(), 15)],
        "findings: {findings:#?}"
    );
    assert!(findings[0].message.contains("orphan"), "{}", findings[0].message);
}

#[test]
fn l008_pairing_does_not_cross_unit_boundaries() {
    // Same files, but the load is in another crate: both stores now have
    // no in-unit reader — `generation` joins `orphan`.
    let files = ws(&[
        ("crates/serve/src/state.rs", "l008_store.rs"),
        ("crates/other/src/reader.rs", "l008_load.rs"),
    ]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![
            ("L008", "crates/serve/src/state.rs".to_string(), 14),
            ("L008", "crates/serve/src/state.rs".to_string(), 15),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn l008_relaxed_in_tests_flagged_unless_annotated() {
    let files = ws(&[("crates/serve/tests/counter.rs", "l008_test_relaxed.rs")]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![("L008", "crates/serve/tests/counter.rs".to_string(), 10)],
        "findings: {findings:#?}"
    );
}

#[test]
fn l008_relaxed_in_src_is_l003_territory() {
    // The same source under a src label: L008 stays quiet (L003 handles
    // non-test code; here the rule would double-report).
    let files = ws(&[("crates/serve/src/counter.rs", "l008_test_relaxed.rs")]);
    let findings = check_workspace(&files);
    assert!(
        findings.iter().all(|f| f.rule != "L008"),
        "findings: {findings:#?}"
    );
}

// ---------------------------------------------------------------- L009

#[test]
fn l009_missing_coverage_spans() {
    let files = ws(&[
        ("crates/core/src/persist/mod.rs", "l009_kinds.rs"),
        ("crates/core/src/persist/codec.rs", "l009_codec.rs"),
        ("crates/core/src/persist/view.rs", "l009_view.rs"),
    ]);
    let findings = check_workspace(&files);
    assert_eq!(
        spans(&findings),
        vec![
            ("L009", "crates/core/src/persist/mod.rs".to_string(), 9),
            ("L009", "crates/core/src/persist/mod.rs".to_string(), 11),
        ],
        "findings: {findings:#?}"
    );
    let beta = findings.iter().find(|f| f.line == 9).unwrap();
    assert!(
        beta.message.contains("BETA") && beta.message.contains("view"),
        "{}",
        beta.message
    );
    assert!(
        !beta.message.contains("encode ("),
        "BETA has encode coverage: {}",
        beta.message
    );
    let orphan = findings.iter().find(|f| f.line == 11).unwrap();
    assert!(
        orphan.message.contains("ORPHAN")
            && orphan.message.contains("encode")
            && orphan.message.contains("decode")
            && orphan.message.contains("view"),
        "{}",
        orphan.message
    );
}

#[test]
fn l009_right_of_arrow_reference_is_not_decode_coverage() {
    // `tag_name` maps `"orphan" => kind::ORPHAN` — the reference exists,
    // but on the wrong side of `=>`; ORPHAN must still be flagged for
    // missing decode.
    let files = ws(&[
        ("crates/core/src/persist/mod.rs", "l009_kinds.rs"),
        ("crates/core/src/persist/codec.rs", "l009_codec.rs"),
    ]);
    let findings = check_workspace(&files);
    let orphan = findings
        .iter()
        .find(|f| f.rule == "L009" && f.line == 11)
        .expect("ORPHAN finding");
    assert!(orphan.message.contains("decode"), "{}", orphan.message);
}
