//! The workspace lints itself: all nine rules plus the strict annotation
//! audit, pinned at zero findings. Any new in-tree violation — an
//! unfingerprinted config knob, a bare `unsafe`, an unpaired Release
//! store, a dead codec tag, a reason-less annotation — fails this test
//! before it fails a human reviewer.

use std::path::PathBuf;

#[test]
fn workspace_is_clean_under_strict() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "not a workspace root: {}",
        root.display()
    );
    let report = asrank_lint::lint_workspace(&root, &[], true).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean under --strict:\n{}",
        asrank_lint::render_human(&report)
    );
}
