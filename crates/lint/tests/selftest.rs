//! Linter self-tests: every rule is exercised against a fixture with
//! seeded violations, asserting exact rule ids and file:line spans, plus
//! clean-file silence and the CLI exit-code contract.

use asrank_lint::{check_file, Finding};
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// (rule, line) pairs of all findings, in report order.
fn spans(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn l001_fixture_spans() {
    // Labelled inside a determinism-critical module so L001 applies.
    let label = "crates/core/src/pipeline/l001_fixture.rs";
    let findings = check_file(label, &fixture("l001.rs"));
    assert!(findings.iter().all(|f| f.file == label));
    assert_eq!(
        spans(&findings),
        vec![
            ("L001", 23),
            ("L001", 25),
            ("L001", 27),
            ("L001", 32),
            ("L001", 36),
        ],
        "findings: {findings:#?}"
    );
    // The reason-less annotation is called out in the message.
    let f32 = findings.iter().find(|f| f.line == 32).unwrap();
    assert!(f32.message.contains("no reason"), "{}", f32.message);
}

#[test]
fn l001_out_of_scope_file_is_silent() {
    // Same source under a non-critical label: no L001 findings.
    let findings = check_file("crates/core/src/io_fixture.rs", &fixture("l001.rs"));
    assert!(
        findings.iter().all(|f| f.rule != "L001"),
        "findings: {findings:#?}"
    );
}

#[test]
fn l002_fixture_spans() {
    let findings = check_file("crates/core/src/l002_fixture.rs", &fixture("l002.rs"));
    assert_eq!(
        spans(&findings),
        vec![
            ("L002", 5),
            ("L002", 6),
            ("L002", 8),
            ("L002", 11),
            ("L002", 12),
            ("L002", 13),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn l002_does_not_apply_outside_core() {
    let findings = check_file("crates/cli/src/l002_fixture.rs", &fixture("l002.rs"));
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn l003_fixture_spans() {
    let findings = check_file("crates/cli/src/l003_fixture.rs", &fixture("l003.rs"));
    assert_eq!(
        spans(&findings),
        vec![("L003", 5), ("L003", 6)],
        "findings: {findings:#?}"
    );
}

#[test]
fn l003_allowlisted_in_par() {
    let findings = check_file("crates/core/src/par.rs", &fixture("l003.rs"));
    assert!(
        findings.iter().all(|f| f.rule != "L003"),
        "findings: {findings:#?}"
    );
}

#[test]
fn l004_fixture_spans() {
    let findings = check_file("crates/types/src/l004_fixture.rs", &fixture("l004.rs"));
    assert_eq!(
        spans(&findings),
        vec![
            ("L004", 6),
            ("L004", 16),
            ("L004", 19),
            ("L004", 33),
            ("L004", 43),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn l005_fixture_spans() {
    let findings = check_file("crates/core/src/l005_fixture.rs", &fixture("l005.rs"));
    assert_eq!(
        spans(&findings),
        vec![("L005", 4), ("L005", 5), ("L005", 6), ("L005", 7)],
        "findings: {findings:#?}"
    );
}

#[test]
fn clean_fixture_is_silent_under_strictest_scope() {
    let findings = check_file("crates/core/src/pipeline/clean_fixture.rs", &fixture("clean.rs"));
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

// ------------------------------------------------------------- CLI

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_asrank-lint"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asrank-lint-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    dir
}

#[test]
fn cli_exit_zero_on_clean_tree() {
    let dir = tmp("clean");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "/// Docs.\npub fn ok() {}\n",
    )
    .unwrap();
    let out = bin().args(["--root", dir.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clean"), "{text}");
}

#[test]
fn cli_exit_one_with_findings_and_json_output() {
    let dir = tmp("dirty");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "/// Docs.\npub fn boom(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    let out = bin()
        .args(["--root", dir.to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\":\"L002\""), "{text}");
    assert!(text.contains("\"line\":2"), "{text}");
    assert!(text.contains("\"violations\":1"), "{text}");
}

#[test]
fn cli_rule_filter_restricts_output() {
    let dir = tmp("filter");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "pub fn undoc(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    // Both L002 and L004 fire without a filter; with --rule L004 only one.
    let out = bin()
        .args(["--root", dir.to_str().unwrap(), "--rule", "L004", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"violations\":1"), "{text}");
    assert!(text.contains("L004"), "{text}");
    assert!(!text.contains("L002"), "{text}");
}

#[test]
fn cli_usage_errors_exit_two() {
    let out = bin().arg("--no-such-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = bin().args(["--root", "/no/such/dir"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = bin().args(["--rule", "L999"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn cli_list_rules() {
    let out = bin().arg("--list-rules").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L000",
    ] {
        assert!(text.contains(id), "{text}");
    }
}

#[test]
fn cli_strict_audits_annotations() {
    let dir = tmp("strict");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "/// Docs.\npub fn f() -> u32 {\n    // lint: allow(panics)\n    1\n}\n",
    )
    .unwrap();
    // Default mode tolerates the reason-less annotation (it just doesn't
    // suppress anything, and nothing here needs suppressing).
    let out = bin().args(["--root", dir.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    // Strict mode flags it as L000.
    let out = bin()
        .args(["--root", dir.to_str().unwrap(), "--strict"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L000"), "{text}");
    assert!(text.contains("no reason"), "{text}");
}

#[test]
fn cli_strict_flags_unknown_slug() {
    let dir = tmp("strict-slug");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "/// Docs.\npub fn f() -> u32 {\n    // lint: allow(nosuchrule, because)\n    1\n}\n",
    )
    .unwrap();
    let out = bin()
        .args(["--root", dir.to_str().unwrap(), "--strict"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("unknown rule slug `nosuchrule`"), "{text}");
}

#[test]
fn cli_fix_annotations_is_a_dry_run() {
    let dir = tmp("fixann");
    let src_path = dir.join("crates/core/src/lib.rs");
    fs::write(
        &src_path,
        "/// Docs.\npub fn boom(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    let out = bin()
        .args(["--root", dir.to_str().unwrap(), "--fix-annotations"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    // Exact location and the exact annotation line to paste.
    assert!(text.contains("crates/core/src/lib.rs:2: L002 [panics]"), "{text}");
    assert!(text.contains("// lint: allow(panics, "), "{text}");
    // Nothing was written.
    let src = fs::read_to_string(&src_path).unwrap();
    assert!(!src.contains("lint: allow"), "{src}");
}
