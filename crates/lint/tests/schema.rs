//! Lint-JSON schema stability: downstream tooling parses `--format json`
//! output, so the exact key set, key order, and `schema_version` are
//! pinned here. Adding a key is a compatible change (update the golden
//! string); renaming or removing one must bump
//! [`asrank_lint::JSON_SCHEMA_VERSION`].

use asrank_lint::{render_json, Finding, Report, JSON_SCHEMA_VERSION};

fn sample_report() -> Report {
    Report {
        findings: vec![Finding {
            rule: "L002",
            slug: "panics",
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "a \"quoted\" message".into(),
            excerpt: "x.unwrap()".into(),
        }],
        files_scanned: 3,
    }
}

#[test]
fn schema_version_is_one() {
    assert_eq!(JSON_SCHEMA_VERSION, 1);
}

#[test]
fn golden_json_shape() {
    let expected = concat!(
        "{\"tool\":\"asrank-lint\",\"schema_version\":1,\"files_scanned\":3,",
        "\"violations\":1,\"findings\":[",
        "{\"rule\":\"L002\",\"slug\":\"panics\",\"file\":\"crates/core/src/x.rs\",",
        "\"line\":7,\"message\":\"a \\\"quoted\\\" message\",\"excerpt\":\"x.unwrap()\"}",
        "]}\n"
    );
    assert_eq!(render_json(&sample_report()), expected);
}

#[test]
fn golden_json_empty_report() {
    let report = Report {
        findings: vec![],
        files_scanned: 12,
    };
    assert_eq!(
        render_json(&report),
        "{\"tool\":\"asrank-lint\",\"schema_version\":1,\"files_scanned\":12,\
         \"violations\":0,\"findings\":[]}\n"
    );
}

#[test]
fn json_parses_as_object_with_expected_keys() {
    // No JSON dependency by design; a bracket/quote audit keeps the
    // output structurally valid without one.
    let text = render_json(&sample_report());
    let (mut depth_obj, mut depth_arr, mut in_str, mut esc) = (0i32, 0i32, false, false);
    for c in text.trim_end().chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced at `{c}`");
    }
    assert_eq!((depth_obj, depth_arr, in_str), (0, 0, false));
    for key in [
        "\"tool\":",
        "\"schema_version\":",
        "\"files_scanned\":",
        "\"violations\":",
        "\"findings\":",
        "\"rule\":",
        "\"slug\":",
        "\"file\":",
        "\"line\":",
        "\"message\":",
        "\"excerpt\":",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
}
