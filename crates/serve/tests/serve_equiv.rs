//! The serve tier must be answer-for-answer identical to the engine it
//! fronts: every query kind, over every observed AS (plus misses),
//! against the owned structures the pipeline produced.

mod common;

use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::rank_ases;
use asrank_serve::{Answer, ConeFlavor, Query, ServeError, ServeSnapshot, SourceSpec};
use asrank_types::Asn;
use common::{sample_paths, scratch, warm_cache};

fn probes(ps: &asrank_types::PathSet) -> Vec<Asn> {
    let mut seen: Vec<Asn> = ps.iter().flat_map(|s| s.path.iter()).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.extend([Asn(0), Asn(7_777), Asn(u32::MAX)]);
    seen
}

#[test]
fn serve_answers_match_engine() {
    let root = scratch("equiv");
    let ps = sample_paths();
    let spec = warm_cache(&root, b"equiv-rib-bytes-v1", &ps);
    let serve = ServeSnapshot::load(&spec, 1).expect("load snapshot");

    let mut snap = Snapshot::new(&ps, InferenceConfig::default());
    let inf = snap.inference().expect("engine inference");
    let (recursive, bgp, pp) = snap.cones().expect("engine cones");
    let ranked = rank_ases(&recursive, &inf.degrees);

    let probes = probes(&ps);
    for &x in &probes {
        // degree + rank
        let (t, n) = serve.degree(x);
        assert_eq!(t as usize, inf.degrees.transit_degree(x), "transit {x:?}");
        assert_eq!(n as usize, inf.degrees.node_degree(x), "node {x:?}");
        let want_rank = ranked.iter().find(|r| r.asn == x).map(|r| r.rank as u64);
        assert_eq!(serve.rank(x), want_rank, "rank {x:?}");

        // cone sizes, every flavor
        for (flavor, cones) in [
            (ConeFlavor::Recursive, &recursive),
            (ConeFlavor::BgpObserved, &bgp),
            (ConeFlavor::ProviderPeer, &pp),
        ] {
            assert_eq!(serve.cone_size(flavor, x), cones.size(x), "{flavor} size {x:?}");
        }

        for &y in &probes {
            assert_eq!(
                serve.rel(x, y),
                inf.relationships.get(x, y),
                "rel {x:?} {y:?}"
            );
            assert_eq!(
                serve.orientation(x, y),
                inf.relationships.orientation(x, y),
                "orientation {x:?} {y:?}"
            );
            for (flavor, cones) in [
                (ConeFlavor::Recursive, &recursive),
                (ConeFlavor::BgpObserved, &bgp),
                (ConeFlavor::ProviderPeer, &pp),
            ] {
                assert_eq!(
                    serve.cone_contains(flavor, x, y),
                    cones.contains(x, y),
                    "{flavor} contains {x:?} {y:?}"
                );
            }
        }
    }
    assert_eq!(serve.ranked_len(), ranked.len());
    assert_eq!(serve.report(), &inf.report);
}

#[test]
fn batch_answers_match_single_answers() {
    let root = scratch("batch");
    let ps = sample_paths();
    let spec = warm_cache(&root, b"batch-rib-bytes-v1", &ps);
    let serve = ServeSnapshot::load(&spec, 1).expect("load snapshot");

    let queries: Vec<Query> = probes(&ps)
        .iter()
        .flat_map(|&x| {
            vec![
                Query::Rel(x, Asn(1)),
                Query::ConeContains(ConeFlavor::Recursive, Asn(1), x),
                Query::ConeSize(ConeFlavor::BgpObserved, x),
                Query::Degree(x),
                Query::Rank(x),
            ]
        })
        .collect();
    let mut batch: Vec<Answer> = Vec::new();
    serve.answer_batch(&queries, &mut batch);
    assert_eq!(batch.len(), queries.len());
    for (q, a) in queries.iter().zip(batch.iter()) {
        assert_eq!(serve.answer(*q), *a, "{q:?}");
    }
}

#[test]
fn missing_frames_are_reported_with_paths() {
    let root = scratch("missing");
    let rib = root.join("cold.mrt");
    std::fs::write(&rib, b"cold-rib").unwrap();
    let spec = SourceSpec {
        rib,
        cache_root: root.join("empty-cache"),
        cfg: InferenceConfig::default(),
        prefixes: None,
    };
    match ServeSnapshot::load(&spec, 1) {
        Err(ServeError::MissingFrame { stage, .. }) => assert_eq!(stage, "rib_ingest"),
        other => panic!("expected MissingFrame, got {other:?}"),
    }
}

#[test]
fn stale_config_misses_cleanly() {
    // A cache warmed under the default config must not resolve for a
    // different config — the keys shift, and serve reports the miss
    // instead of serving wrong-config artifacts.
    let root = scratch("cfgmiss");
    let ps = sample_paths();
    let mut spec = warm_cache(&root, b"cfg-rib-bytes-v1", &ps);
    spec.cfg = {
        let mut cfg = InferenceConfig::default();
        cfg.vp_provider_threshold *= 2.0;
        cfg
    };
    match ServeSnapshot::load(&spec, 1) {
        Err(ServeError::MissingFrame { .. }) => {}
        other => panic!("expected MissingFrame under changed config, got {other:?}"),
    }
}
