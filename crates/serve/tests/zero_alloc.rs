//! The zero-copy claim, pinned: after warmup, point queries against a
//! [`ServeSnapshot`] perform **no heap allocation at all**. A counting
//! global allocator wraps `System`; the hot loop runs every query kind
//! and the allocation counter must not move.
//!
//! (This is an integration test so the custom `#[global_allocator]`
//! stays confined to one binary.)

mod common;

use asrank_serve::{Answer, ConeFlavor, Query, ServeSnapshot};
use asrank_types::Asn;
use common::{sample_paths, scratch, warm_cache};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates every operation verbatim to `System`; the only
// addition is a relaxed counter bump on the allocating paths.
unsafe impl GlobalAlloc for Counting {
    // SAFETY: same contract as `System::alloc` — the layout is passed
    // through unchanged and the result is returned as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // lint: allow(atomics, the counter is only compared before/after a single-threaded loop; no ordering is needed)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: same contract as `System::alloc_zeroed`; pure delegation.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // lint: allow(atomics, the counter is only compared before/after a single-threaded loop; no ordering is needed)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: same contract as `System::realloc`; ptr/layout/new_size
    // are forwarded untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // lint: allow(atomics, the counter is only compared before/after a single-threaded loop; no ordering is needed)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same contract as `System::dealloc`; pure delegation (the
    // counter only tracks allocating paths).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

fn query_round(serve: &ServeSnapshot, probes: &[Asn], sink: &mut u64) {
    for &x in probes {
        for &y in probes {
            if serve.rel(x, y).is_some() {
                *sink += 1;
            }
            if serve.cone_contains(ConeFlavor::Recursive, x, y) {
                *sink += 1;
            }
            if serve.cone_contains(ConeFlavor::BgpObserved, x, y) {
                *sink += 1;
            }
            if serve.cone_contains(ConeFlavor::ProviderPeer, x, y) {
                *sink += 1;
            }
        }
        let size = serve.cone_size(ConeFlavor::Recursive, x);
        *sink += size.ases as u64;
        let (t, n) = serve.degree(x);
        *sink += t + n;
        *sink += serve.rank(x).unwrap_or(0);
    }
}

#[test]
fn warm_queries_allocate_nothing() {
    let root = scratch("zeroalloc");
    let ps = sample_paths();
    let spec = warm_cache(&root, b"zero-alloc-rib-v1", &ps);
    let serve = ServeSnapshot::load(&spec, 1).expect("load snapshot");

    let mut probes: Vec<Asn> = ps.iter().flat_map(|s| s.path.iter()).collect();
    probes.sort_unstable();
    probes.dedup();
    probes.push(Asn(123_456));

    // Batch buffers are reused; reserve happens during warmup.
    let queries: Vec<Query> = probes
        .iter()
        .map(|&x| Query::ConeSize(ConeFlavor::ProviderPeer, x))
        .collect();
    let mut batch: Vec<Answer> = Vec::new();

    // Warmup: fault in mapped pages, size the batch buffer.
    let mut sink = 0u64;
    query_round(&serve, &probes, &mut sink);
    serve.answer_batch(&queries, &mut batch);

    // lint: allow(atomics, same-thread read of a counter this thread bumps; no cross-thread ordering involved)
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..16 {
        query_round(&serve, &probes, &mut sink);
        serve.answer_batch(&queries, &mut batch);
    }
    // lint: allow(atomics, same-thread read of a counter this thread bumps; no cross-thread ordering involved)
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(sink != 0, "queries actually answered");
    assert_eq!(
        after - before,
        0,
        "warm read path must not allocate (got {} allocations)",
        after - before
    );
}
