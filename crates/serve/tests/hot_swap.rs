//! Hot-swap correctness: concurrent readers must never observe a torn
//! snapshot — every answer a reader gets between two `snapshot()` calls
//! comes from exactly one generation's dataset — and the TCP server's
//! watcher must converge to a re-warmed cache without dropping
//! connections.

mod common;

use asrank_serve::{ConeFlavor, Server, ServeSnapshot, ServeState, SourceSpec};
use asrank_types::Asn;
use common::{alternate_paths, sample_paths, scratch, warm_cache, warm_cache_frames};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Dataset A observes AS 1 (a clique member); dataset B shares no ASNs
/// with A and observes AS 901 instead. Each generation serves exactly
/// one of them, so these sentinels tell generations apart.
fn looks_like_a(snapshot: &ServeSnapshot) -> bool {
    snapshot.degree(Asn(1)).1 > 0
}

fn looks_like_b(snapshot: &ServeSnapshot) -> bool {
    snapshot.degree(Asn(901)).1 > 0
}

#[test]
fn concurrent_readers_never_see_torn_snapshots() {
    let root = scratch("swap");
    let ps_a = sample_paths();
    let ps_b = alternate_paths();
    let spec_a = warm_cache(&root.join("a"), b"swap-rib-a", &ps_a);
    let spec_b = warm_cache(&root.join("b"), b"swap-rib-b", &ps_b);

    let state = Arc::new(ServeState::new(
        ServeSnapshot::load(&spec_a, 1).expect("load A"),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handle = state.reader();
                let mut swaps_seen = 0u64;
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = handle.snapshot();
                    let gen = snap.generation();
                    // Odd generations serve A, even serve B (publisher's
                    // alternation). Every sentinel must agree with the
                    // generation under which it is answered — a torn
                    // snapshot (new generation, old bytes, or a mix of
                    // frames) fails here.
                    let (a, b) = (looks_like_a(snap), looks_like_b(snap));
                    if gen % 2 == 1 {
                        assert!(a && !b, "gen {gen} must answer dataset A");
                        assert!(snap.rel(Asn(1), Asn(2)).is_some());
                        assert!(snap.rank(Asn(901)).is_none());
                    } else {
                        assert!(b && !a, "gen {gen} must answer dataset B");
                        assert!(snap.rel(Asn(901), Asn(902)).is_some());
                        assert!(snap.rank(Asn(1)).is_none());
                    }
                    assert!(snap.cone_size(ConeFlavor::Recursive, Asn(1)).ases >= 1);
                    if gen != last_gen {
                        swaps_seen += 1;
                        last_gen = gen;
                    }
                }
                swaps_seen
            })
        })
        .collect();

    // Publisher: alternate A/B under increasing generations.
    for generation in 2..=25u64 {
        let spec = if generation % 2 == 1 { &spec_a } else { &spec_b };
        let snapshot = ServeSnapshot::load(spec, generation).expect("reload");
        state.publish(snapshot);
        std::thread::sleep(Duration::from_millis(4));
    }
    stop.store(true, Ordering::Release);

    for r in readers {
        let swaps = r.join().expect("reader thread");
        assert!(swaps >= 2, "reader observed swaps (saw {swaps})");
    }
    assert_eq!(state.generation(), 25);
}

fn send(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> String {
    writeln!(writer, "{line}").expect("write request");
    let mut out = String::new();
    reader.read_line(&mut out).expect("read answer");
    out.trim().to_string()
}

#[test]
fn tcp_server_hot_swaps_when_cache_rewarms() {
    let root = scratch("tcp");
    let ps_a = sample_paths();
    let ps_b = alternate_paths();
    let spec = warm_cache(&root, b"tcp-rib-a", &ps_a);

    let server = Server::start(spec.clone(), 0, Some(Duration::from_millis(20)))
        .expect("start server");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    assert_eq!(send(&mut reader, &mut writer, "gen"), "1");
    let rel_a = send(&mut reader, &mut writer, "rel 1 2");
    assert_ne!(rel_a, "none", "dataset A classifies the 1-2 link");
    assert_eq!(send(&mut reader, &mut writer, "rel 901 902"), "none");
    assert_eq!(
        send(&mut reader, &mut writer, "cone recursive 1 1"),
        "true"
    );
    assert!(send(&mut reader, &mut writer, "bogus 1").starts_with("err "));

    // Re-warm the cache with dataset B and swap the RIB file contents —
    // exactly what a fresh `asrank infer --cache-dir` over a new RIB
    // does. The watcher must notice and publish a new generation.
    warm_cache_frames(&root.join("cache"), b"tcp-rib-b", &ps_b);
    std::fs::write(&spec.rib, b"tcp-rib-b").unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let gen = send(&mut reader, &mut writer, "gen");
        if gen != "1" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never swapped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Same connection, new dataset.
    assert_eq!(send(&mut reader, &mut writer, "rel 1 2"), "none");
    assert_ne!(send(&mut reader, &mut writer, "rel 901 902"), "none");
    let _ = send(&mut reader, &mut writer, "degree 901");
    writeln!(writer, "quit").unwrap();

    drop(server);
}
