//! Shared test support: build a warm artifact cache the way the CLI
//! would, so serve tests exercise the real resolution chain (RIB
//! checksum → PATHSET frame → content fingerprint → stage keys).
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use asrank_core::engine::Snapshot;
use asrank_core::pipeline::InferenceConfig;
use asrank_core::CacheDir;
use asrank_serve::SourceSpec;
use asrank_types::{checksum64, Asn, AsPath, Ipv4Prefix, PathSample, PathSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh unique scratch directory under the system temp dir.
pub fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "asrank_serve_{tag}_{}_{}",
        std::process::id(),
        // lint: allow(atomics, the sequence only needs unique values for scratch-dir names, not ordering)
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a path set from raw hop lists (first hop doubles as the VP).
pub fn path_set(paths: Vec<Vec<u32>>) -> PathSet {
    paths
        .into_iter()
        .enumerate()
        .map(|(i, raw)| PathSample {
            vp: Asn(raw[0]),
            prefix: Ipv4Prefix::new((i as u32) << 12, 20).unwrap(),
            path: AsPath::from_u32s(raw),
        })
        .collect()
}

/// A small but non-trivial topology: a 3-AS clique, transit layers below
/// it, and stubs — enough structure that relationships, cones, degrees,
/// and ranks are all non-degenerate.
pub fn sample_paths() -> PathSet {
    path_set(vec![
        vec![10, 1, 2, 20],
        vec![10, 1, 3, 30],
        vec![20, 2, 1, 10],
        vec![20, 2, 3, 30],
        vec![30, 3, 1, 10],
        vec![30, 3, 2, 20],
        vec![10, 1, 2, 21, 41],
        vec![10, 1, 3, 31, 51],
        vec![20, 2, 3, 31, 52],
        vec![30, 3, 1, 11, 42],
        vec![20, 2, 1, 11, 43],
        vec![30, 3, 2, 21, 44],
        vec![10, 1, 11, 43],
        vec![41, 21, 2, 1, 10],
        vec![51, 31, 3, 2, 20],
    ])
}

/// A second topology sharing no ASNs with [`sample_paths`], so every
/// sentinel query distinguishes the two datasets.
pub fn alternate_paths() -> PathSet {
    path_set(vec![
        vec![910, 901, 902, 920],
        vec![920, 902, 901, 910],
        vec![910, 901, 902, 921, 941],
        vec![920, 902, 901, 911, 942],
        vec![941, 921, 902, 901, 910],
    ])
}

/// Write `rib_bytes` as the fake RIB file, store the decoded path set
/// under the ingest key (exactly what `asrank infer --cache-dir` does),
/// and materialize the inference + cone frames through the engine.
/// Returns a [`SourceSpec`] ready for `ServeSnapshot::load`.
pub fn warm_cache(root: &Path, rib_bytes: &[u8], ps: &PathSet) -> SourceSpec {
    std::fs::create_dir_all(root).unwrap();
    let rib = root.join("test.mrt");
    std::fs::write(&rib, rib_bytes).unwrap();
    let cache_root = root.join("cache");
    warm_cache_frames(&cache_root, rib_bytes, ps);
    SourceSpec {
        rib,
        cache_root,
        cfg: InferenceConfig::default(),
        prefixes: None,
    }
}

/// Warm only the cache frames for (`rib_bytes`, `ps`) into `cache_root`
/// without touching any RIB file — used by hot-swap tests that re-point
/// an existing RIB path at new bytes.
pub fn warm_cache_frames(cache_root: &Path, rib_bytes: &[u8], ps: &PathSet) {
    std::fs::create_dir_all(cache_root).unwrap();
    let cache = CacheDir::new(cache_root);
    assert!(
        cache.store_paths("rib_ingest", checksum64(rib_bytes), ps),
        "storing ingest frame"
    );
    let mut snap =
        Snapshot::new(ps, InferenceConfig::default()).with_cache_dir(cache_root);
    snap.inference().expect("materialize inference");
    snap.cones().expect("materialize cones");
}
