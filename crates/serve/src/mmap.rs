//! Read-only memory mapping without external crates.
//!
//! The serve tier wants frame bytes that (a) are shared between
//! processes by the page cache, (b) cost no resident memory until
//! touched, and (c) outlive any `File` handle. On unix targets that is
//! `mmap(PROT_READ, MAP_PRIVATE)` — declared here directly against the
//! C library `std` already links, since the vendored-only build has no
//! `libc`/`memmap2` crate. Everywhere else (and on any mapping failure)
//! [`MappedBytes`] degrades to an owned heap read of the same file: the
//! view layer reads with explicit little-endian loads either way, so the
//! two representations are indistinguishable above this module.
//!
//! This is the only `unsafe` in the serve library; the invariants are local:
//! a successful `mmap` of `len > 0` bytes with `PROT_READ`/`MAP_PRIVATE`
//! yields a pointer valid for `len` reads for the life of the mapping,
//! and `munmap` is called exactly once, with the original pointer and
//! length, on drop. The mapping is private and read-only, so no aliasing
//! rule can be violated by other code in this process.

use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::unix::io::AsRawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A live read-only file mapping.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ) and private; moving
    // the raw pointer to another thread cannot race any write.
    unsafe impl Send for Mapping {}
    // SAFETY: all access goes through `&self` reads of read-only pages,
    // so concurrent shared use from multiple threads is sound.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map `len` bytes of `file` read-only, or `None` when the
        /// kernel refuses (caller falls back to a heap read).
        pub fn new(file: &std::fs::File, len: usize) -> Option<Mapping> {
            if len == 0 {
                return None;
            }
            // SAFETY: fd is valid for the duration of the call; a
            // MAP_FAILED (-1) return is checked before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mapping { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr is a live PROT_READ mapping of exactly len
            // bytes (established in `new`, released only in `drop`).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values returned by mmap and
            // this is the only munmap call for them.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Immutable file bytes: a real memory mapping when the platform
/// provides one, an owned heap buffer otherwise. Dereferences to `[u8]`
/// either way.
#[derive(Debug)]
pub enum MappedBytes {
    /// Kernel-backed read-only mapping (unix).
    #[cfg(unix)]
    Mapped(sys::Mapping),
    /// Heap fallback: the whole file read into memory.
    Owned(Vec<u8>),
}

impl MappedBytes {
    /// Map (or read) the whole file at `path`.
    pub fn open(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        #[cfg(unix)]
        if let Some(mapping) = sys::Mapping::new(&file, len) {
            return Ok(MappedBytes::Mapped(mapping));
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedBytes::Owned(buf))
    }

    /// The file bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MappedBytes::Mapped(m) => m.bytes(),
            MappedBytes::Owned(v) => v,
        }
    }

    /// True when the bytes are a kernel mapping rather than a heap copy.
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            MappedBytes::Mapped(_) => true,
            MappedBytes::Owned(_) => false,
        }
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("asrank_mmap_test_{}", std::process::id()));
        let content: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &content).unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        assert_eq!(&mapped[..], &content[..]);
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "unix target should really mmap");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = std::env::temp_dir().join(format!("asrank_mmap_empty_{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(!mapped.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedBytes::open(Path::new("/nonexistent/asrank")).is_err());
    }
}
