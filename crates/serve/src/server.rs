//! The TCP front end: thread-per-connection line protocol plus the
//! cache-watcher thread that hot-swaps snapshots.
//!
//! [`Server::start`] binds `127.0.0.1:<port>` (port 0 lets the OS pick —
//! tests use this), spawns an accept loop, and optionally a watcher that
//! polls the [`SourceStamp`](crate::source::SourceStamp) every
//! `poll_interval`. When the RIB or any resolved frame changes on disk,
//! the watcher re-resolves and re-loads a snapshot at the next
//! generation and publishes it; connections converge via their
//! [`ReaderHandle`](crate::state::ReaderHandle)s while in-flight queries
//! finish on the old pinned snapshot. A half-written cache (frames
//! mid-rewrite) simply fails validation and leaves the old snapshot
//! serving; the watcher retries on the next tick.

use crate::proto::{format_answer, parse_request, Request};
use crate::snapshot::ServeSnapshot;
use crate::source::{ServeError, SourceSpec};
use crate::state::ServeState;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running serve instance. Dropping it (or calling [`Server::stop`])
/// shuts down the accept loop and watcher.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Load the initial snapshot from `spec`, bind `127.0.0.1:port`, and
    /// start serving. `poll_interval = None` disables hot-swap watching
    /// (one-shot test servers).
    pub fn start(
        spec: SourceSpec,
        port: u16,
        poll_interval: Option<Duration>,
    ) -> Result<Server, ServeError> {
        let snapshot = ServeSnapshot::load(&spec, 1)?;
        let state = Arc::new(ServeState::new(snapshot));
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| ServeError::Io {
            path: std::path::PathBuf::from(format!("127.0.0.1:{port}")),
            detail: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServeError::Io {
            path: std::path::PathBuf::from("local addr"),
            detail: e.to_string(),
        })?;
        listener.set_nonblocking(true).map_err(|e| ServeError::Io {
            path: std::path::PathBuf::from(format!("{addr}")),
            detail: e.to_string(),
        })?;

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &state, &stop);
            }));
        }
        if let Some(interval) = poll_interval {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                watch_loop(&spec, &state, &stop, interval);
            }));
        }

        Ok(Server {
            addr,
            state,
            stop,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests publish through this directly).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Signal every loop to exit and join the threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServeState>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                // Connection threads are detached: they exit when the
                // client closes or sends `quit`, and the process exits
                // with outstanding connections on shutdown.
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &state);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Run one connection's request loop (exposed for the CLI's stdio mode).
pub fn serve_connection(stream: TcpStream, state: &Arc<ServeState>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut handle = state.reader();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match parse_request(text) {
            Ok(Request::Quit) => return Ok(()),
            Ok(Request::Gen) => {
                writeln!(writer, "{}", handle.snapshot().generation())?;
            }
            Ok(Request::Query(q)) => {
                let answer = handle.snapshot().answer(q);
                writeln!(writer, "{}", format_answer(&answer))?;
            }
            Err(e) => {
                writeln!(writer, "err {e}")?;
            }
        }
    }
}

/// Monotone generation source for hot-swap loads.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(2);

fn watch_loop(
    spec: &SourceSpec,
    state: &Arc<ServeState>,
    stop: &Arc<AtomicBool>,
    interval: Duration,
) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        if stop.load(Ordering::Acquire) {
            return;
        }
        let current = state.current();
        let fresh = spec.stamp(current.frames());
        if &fresh == current.stamp() {
            continue;
        }
        // lint: allow(relaxed-ordering, the counter only needs unique monotone values; publication ordering is ServeState::publish's)
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        match ServeSnapshot::load(spec, generation) {
            Ok(snapshot) => {
                state.publish(snapshot);
            }
            Err(_) => {
                // Cache mid-rewrite or temporarily invalid: keep serving
                // the pinned snapshot and retry next tick.
            }
        }
    }
}
