//! # asrank-serve
//!
//! Zero-copy query tier over the engine's persisted artifact cache.
//!
//! `asrank infer --cache-dir DIR` leaves behind checksummed frames for
//! every pipeline stage. This crate turns that cache into a query
//! service without re-running anything and without decoding anything on
//! the read path:
//!
//! * [`SourceSpec::resolve`] derives the exact frame paths from the RIB
//!   checksum + [`asrank_core::engine::stage_disk_key`];
//! * [`ServeSnapshot::load`] memory-maps the INFERENCE and three CONE
//!   frames ([`mmap::MappedBytes`]), validates each **once**, and keeps
//!   only `Copy` section layouts + two small ASN-sorted indexes;
//! * queries (relationship, cone membership, cone size, degree, rank)
//!   are in-place binary searches over the mapped bytes — the warm path
//!   allocates nothing (pinned by the `zero_alloc` integration test);
//! * [`ServeState`] / [`ReaderHandle`] give many threads a lock-free
//!   warm read path with atomic hot-swap to a re-warmed cache;
//! * [`Server`] wraps it all in a line-protocol TCP front
//!   ([`proto`]) with a watcher thread that detects cache changes.
//!
//! The CLI exposes this as `asrank serve` (daemon) and `asrank query`
//! (one-shot over the same cache, or client mode against a daemon).

pub mod mmap;
pub mod proto;
pub mod server;
pub mod snapshot;
pub mod source;
pub mod state;

pub use mmap::MappedBytes;
pub use proto::{format_answer, parse_request, Request};
pub use server::Server;
pub use snapshot::{Answer, Query, ServeSnapshot};
pub use source::{
    ConeFlavor, ResolvedFrames, ServeError, SourceSpec, SourceStamp, INFERENCE_STAGE,
    RIB_INGEST_STAGE,
};
pub use state::{ReaderHandle, ServeState};
