//! The line protocol shared by `asrank serve` (TCP) and `asrank query`
//! (one-shot / client mode).
//!
//! One request per line, one answer line per request:
//!
//! ```text
//! rel <x> <y>              -> provider|customer|peer|sibling|none
//! cone <flavor> <x> <y>    -> true|false
//! cone-size <flavor> <x>   -> ases=A prefixes=P addresses=B
//! degree <x>               -> transit=T node=N
//! rank <x>                 -> <n>|none
//! gen                      -> <generation>
//! quit                     -> (closes the connection)
//! ```
//!
//! `<flavor>` is `recursive` (alias `rec`), `bgp` (alias `bgp-observed`,
//! `observed`), or `pp` (alias `provider-peer`). `rel` answers from
//! `x`'s point of view: `provider` means *y is x's provider*. Errors
//! answer `err <detail>` and keep the connection open.

use crate::snapshot::{Answer, Query};
use crate::source::{ConeFlavor, ServeError};
use asrank_types::{Asn, Orientation};

/// One parsed protocol line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// A snapshot query.
    Query(Query),
    /// Report the published snapshot generation.
    Gen,
    /// Close the connection.
    Quit,
}

fn asn(tok: Option<&str>, line: &str) -> Result<Asn, ServeError> {
    tok.and_then(|t| t.parse::<u32>().ok())
        .map(Asn)
        .ok_or_else(|| ServeError::BadQuery(line.to_string()))
}

fn flavor(tok: Option<&str>, line: &str) -> Result<ConeFlavor, ServeError> {
    tok.and_then(ConeFlavor::parse)
        .ok_or_else(|| ServeError::BadQuery(line.to_string()))
}

/// Parse one protocol line. Unknown verbs, bad ASNs, bad flavors, and
/// trailing junk are all [`ServeError::BadQuery`].
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or_else(|| ServeError::BadQuery(line.into()))?;
    let req = match verb {
        "rel" => Request::Query(Query::Rel(asn(toks.next(), line)?, asn(toks.next(), line)?)),
        "cone" => Request::Query(Query::ConeContains(
            flavor(toks.next(), line)?,
            asn(toks.next(), line)?,
            asn(toks.next(), line)?,
        )),
        "cone-size" => Request::Query(Query::ConeSize(
            flavor(toks.next(), line)?,
            asn(toks.next(), line)?,
        )),
        "degree" => Request::Query(Query::Degree(asn(toks.next(), line)?)),
        "rank" => Request::Query(Query::Rank(asn(toks.next(), line)?)),
        "gen" => Request::Gen,
        "quit" => Request::Quit,
        _ => return Err(ServeError::BadQuery(line.into())),
    };
    if toks.next().is_some() {
        return Err(ServeError::BadQuery(line.into()));
    }
    Ok(req)
}

/// Render one answer as its protocol line (no trailing newline).
pub fn format_answer(a: &Answer) -> String {
    match a {
        Answer::Rel(o) => match o {
            Some(Orientation::Provider) => "provider".into(),
            Some(Orientation::Customer) => "customer".into(),
            Some(Orientation::Peer) => "peer".into(),
            Some(Orientation::Sibling) => "sibling".into(),
            None => "none".into(),
        },
        Answer::ConeContains(b) => b.to_string(),
        Answer::ConeSize(s) => format!(
            "ases={} prefixes={} addresses={}",
            s.ases, s.prefixes, s.addresses
        ),
        Answer::Degree(t, n) => format!("transit={t} node={n}"),
        Answer::Rank(Some(r)) => r.to_string(),
        Answer::Rank(None) => "none".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("rel 10 20").unwrap(),
            Request::Query(Query::Rel(Asn(10), Asn(20)))
        );
        assert_eq!(
            parse_request("cone pp 1 2").unwrap(),
            Request::Query(Query::ConeContains(ConeFlavor::ProviderPeer, Asn(1), Asn(2)))
        );
        assert_eq!(
            parse_request("cone-size recursive 7").unwrap(),
            Request::Query(Query::ConeSize(ConeFlavor::Recursive, Asn(7)))
        );
        assert_eq!(
            parse_request("degree 7").unwrap(),
            Request::Query(Query::Degree(Asn(7)))
        );
        assert_eq!(
            parse_request("rank 7").unwrap(),
            Request::Query(Query::Rank(Asn(7)))
        );
        assert_eq!(parse_request("gen").unwrap(), Request::Gen);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "bogus",
            "rel 1",
            "rel 1 2 3",
            "rel x y",
            "cone nope 1 2",
            "cone-size recursive",
            "rank",
            "gen extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn formats_answers() {
        assert_eq!(
            format_answer(&Answer::Rel(Some(Orientation::Provider))),
            "provider"
        );
        assert_eq!(format_answer(&Answer::Rel(None)), "none");
        assert_eq!(format_answer(&Answer::ConeContains(true)), "true");
        assert_eq!(
            format_answer(&Answer::ConeSize(asrank_core::ConeSize {
                ases: 3,
                prefixes: 2,
                addresses: 512,
            })),
            "ases=3 prefixes=2 addresses=512"
        );
        assert_eq!(format_answer(&Answer::Degree(4, 9)), "transit=4 node=9");
        assert_eq!(format_answer(&Answer::Rank(Some(1))), "1");
        assert_eq!(format_answer(&Answer::Rank(None)), "none");
    }
}
