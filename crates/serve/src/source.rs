//! Resolving persisted artifact frames from a RIB file + cache directory.
//!
//! `asrank serve` never runs the pipeline. It derives the exact on-disk
//! cache keys the engine would use and maps the frames the engine already
//! wrote:
//!
//! 1. checksum the raw RIB bytes — the key the CLI ingest tier stores the
//!    decoded [`PathSet`](asrank_types::PathSet) frame under (`rib_ingest`);
//! 2. stream-hash that PATHSET frame
//!    ([`pathset_fingerprint_from_frame`]) to recover the engine's
//!    `content_fp` without materializing a path set;
//! 3. feed `content_fp` + the inference config to
//!    [`stage_disk_key`] for each served stage, yielding the exact frame
//!    paths `Snapshot` persisted.
//!
//! A missing frame is a hard error (with the path it looked for), not a
//! silent recompute: the serve tier is read-only by design and the fix is
//! to warm the cache with `asrank infer --cache-dir ...` first.
//!
//! [`SourceStamp`] captures `(len, mtime)` of the RIB and every resolved
//! frame; the server's watcher thread polls it to detect a re-warmed
//! cache and hot-swap to the new snapshot.

use crate::mmap::MappedBytes;
use asrank_core::engine::stage_disk_key;
use asrank_core::{pathset_fingerprint_from_frame, CacheDir, InferenceConfig};
use asrank_types::{checksum64, Asn, Ipv4Prefix};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Stage name the CLI ingest tier caches decoded RIBs under (keyed by the
/// checksum of the raw MRT bytes) — must match `cli::snapshot`.
pub const RIB_INGEST_STAGE: &str = "rib_ingest";

/// Stage whose frame carries relationships, clique, and degrees.
pub const INFERENCE_STAGE: &str = "s11_inference";

/// The three customer-cone definitions a serve snapshot answers for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConeFlavor {
    /// Paper §5.1: transitive closure over inferred c2p links.
    Recursive,
    /// Paper §5.2: ASes seen behind the AS on observed BGP paths.
    BgpObserved,
    /// Paper §5.3: BGP-observed restricted to provider/peer-observed paths.
    ProviderPeer,
}

impl ConeFlavor {
    /// All flavors, in stage order.
    pub const ALL: [ConeFlavor; 3] = [
        ConeFlavor::Recursive,
        ConeFlavor::BgpObserved,
        ConeFlavor::ProviderPeer,
    ];

    /// The engine stage name whose CONE frame this flavor reads.
    pub fn stage(self) -> &'static str {
        match self {
            ConeFlavor::Recursive => "cone_recursive",
            ConeFlavor::BgpObserved => "cone_bgp_observed",
            ConeFlavor::ProviderPeer => "cone_provider_peer",
        }
    }

    /// Index into per-flavor arrays ([`ConeFlavor::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            ConeFlavor::Recursive => 0,
            ConeFlavor::BgpObserved => 1,
            ConeFlavor::ProviderPeer => 2,
        }
    }

    /// Parse the wire/CLI spelling (`recursive`, `bgp`, `pp`, plus the
    /// full stage-ish aliases).
    pub fn parse(s: &str) -> Option<ConeFlavor> {
        Some(match s {
            "recursive" | "rec" => ConeFlavor::Recursive,
            "bgp" | "bgp-observed" | "observed" => ConeFlavor::BgpObserved,
            "pp" | "provider-peer" => ConeFlavor::ProviderPeer,
            _ => return None,
        })
    }
}

impl fmt::Display for ConeFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConeFlavor::Recursive => "recursive",
            ConeFlavor::BgpObserved => "bgp-observed",
            ConeFlavor::ProviderPeer => "provider-peer",
        })
    }
}

/// Everything needed to locate (and re-locate, on hot-swap) the served
/// frames: the RIB whose checksum anchors the cache keys, the cache
/// directory, and the inference config + prefix table the warm run used.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Raw MRT RIB file — only checksummed, never decoded, by serve.
    pub rib: PathBuf,
    /// Cache directory the engine persisted frames into.
    pub cache_root: PathBuf,
    /// Config of the warm run; keys depend on it.
    pub cfg: InferenceConfig,
    /// Prefix table of the warm run (cone keys depend on it).
    pub prefixes: Option<HashMap<Asn, Vec<Ipv4Prefix>>>,
}

/// Why a snapshot could not be resolved or loaded.
#[derive(Debug)]
pub enum ServeError {
    /// Reading the RIB or a frame file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error text.
        detail: String,
    },
    /// A required frame is absent from the cache.
    MissingFrame {
        /// Stage whose frame was expected.
        stage: String,
        /// Exact path probed.
        path: PathBuf,
    },
    /// A frame exists but failed validation.
    BadFrame {
        /// Stage whose frame was rejected.
        stage: String,
        /// Decoder/view error text.
        detail: String,
    },
    /// A query named a stage/flavor the server does not know.
    BadQuery(
        /// The offending query text.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, detail } => {
                write!(f, "serve: io error on {}: {detail}", path.display())
            }
            ServeError::MissingFrame { stage, path } => write!(
                f,
                "serve: no cached {stage} frame at {} — warm the cache with \
                 `asrank infer --rib ... --cache-dir ...` first",
                path.display()
            ),
            ServeError::BadFrame { stage, detail } => {
                write!(f, "serve: cached {stage} frame rejected: {detail}")
            }
            ServeError::BadQuery(q) => write!(f, "serve: bad query: {q}"),
        }
    }
}

impl std::error::Error for ServeError {}

fn io_err(path: &Path, e: impl fmt::Display) -> ServeError {
    ServeError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// The frame paths one snapshot is built from, in resolution order:
/// pathset, inference, then one CONE frame per [`ConeFlavor::ALL`] entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedFrames {
    /// The `rib_ingest` PATHSET frame (hashed for `content_fp`, not mapped
    /// by the snapshot).
    pub pathset: PathBuf,
    /// The `s11_inference` frame.
    pub inference: PathBuf,
    /// CONE frames in [`ConeFlavor::ALL`] order.
    pub cones: [PathBuf; 3],
    /// The engine content fingerprint the keys were derived from.
    pub content_fp: u64,
}

/// `(len, mtime)` of one file, `None` when it cannot be statted.
type FileSig = Option<(u64, Option<SystemTime>)>;

fn sig(path: &Path) -> FileSig {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.len(), meta.modified().ok()))
}

/// Snapshot-freshness token: the `(len, mtime)` signature of the RIB and
/// every resolved frame. Two equal stamps mean the mapped bytes are still
/// the live cache state; any difference tells the watcher to re-resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStamp {
    rib: FileSig,
    frames: Vec<(PathBuf, FileSig)>,
}

impl SourceStamp {
    /// Stamp the RIB plus the given frame paths as they are on disk now.
    pub fn capture(rib: &Path, frames: &ResolvedFrames) -> SourceStamp {
        let paths = [
            &frames.pathset,
            &frames.inference,
            &frames.cones[0],
            &frames.cones[1],
            &frames.cones[2],
        ];
        SourceStamp {
            rib: sig(rib),
            frames: paths.iter().map(|p| (p.to_path_buf(), sig(p))).collect(),
        }
    }
}

impl SourceSpec {
    fn cache(&self) -> CacheDir {
        CacheDir::new(&self.cache_root)
    }

    /// Recover the engine's content fingerprint from the current on-disk
    /// state: checksum the RIB bytes, find the ingest PATHSET frame, and
    /// stream-hash it. Returns the frame path too (it enters the
    /// hot-swap stamp). No frame payload is decoded.
    pub fn content_fp(&self) -> Result<(PathBuf, u64), ServeError> {
        let rib_bytes = std::fs::read(&self.rib).map_err(|e| io_err(&self.rib, e))?;
        let rib_key = checksum64(&rib_bytes);
        drop(rib_bytes);

        let pathset = self.cache().entry_path(RIB_INGEST_STAGE, rib_key);
        if !pathset.is_file() {
            return Err(ServeError::MissingFrame {
                stage: RIB_INGEST_STAGE.into(),
                path: pathset,
            });
        }
        let frame = MappedBytes::open(&pathset).map_err(|e| io_err(&pathset, e))?;
        let content_fp =
            pathset_fingerprint_from_frame(&frame).map_err(|e| ServeError::BadFrame {
                stage: RIB_INGEST_STAGE.into(),
                detail: e.to_string(),
            })?;
        Ok((pathset, content_fp))
    }

    /// The on-disk frame path for one stage under this spec's config and
    /// `content_fp` — error (with the probed path) when absent.
    pub fn locate(&self, stage: &str, content_fp: u64) -> Result<PathBuf, ServeError> {
        let key = stage_disk_key(stage, &self.cfg, self.prefixes.as_ref(), content_fp)
            .ok_or_else(|| ServeError::BadQuery(format!("unknown stage {stage}")))?;
        let path = self.cache().entry_path(stage, key);
        if path.is_file() {
            Ok(path)
        } else {
            Err(ServeError::MissingFrame {
                stage: stage.into(),
                path,
            })
        }
    }

    /// Resolve every served frame path from the current on-disk state —
    /// the cold path (startup and hot-swap).
    pub fn resolve(&self) -> Result<ResolvedFrames, ServeError> {
        let (pathset, content_fp) = self.content_fp()?;
        Ok(ResolvedFrames {
            inference: self.locate(INFERENCE_STAGE, content_fp)?,
            cones: [
                self.locate(ConeFlavor::Recursive.stage(), content_fp)?,
                self.locate(ConeFlavor::BgpObserved.stage(), content_fp)?,
                self.locate(ConeFlavor::ProviderPeer.stage(), content_fp)?,
            ],
            pathset,
            content_fp,
        })
    }

    /// Stamp the current on-disk state of `frames` (plus the RIB).
    pub fn stamp(&self, frames: &ResolvedFrames) -> SourceStamp {
        SourceStamp::capture(&self.rib, frames)
    }
}
