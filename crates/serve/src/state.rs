//! Hot-swappable snapshot state shared by every connection thread.
//!
//! The design goal is an allocation-free, contention-free warm read
//! path without an external `arc-swap` crate. The trick is a generation
//! counter published with release/acquire ordering:
//!
//! * [`ServeState`] holds the current `Arc<ServeSnapshot>` behind a
//!   `Mutex` **plus** an `AtomicU64` generation. The mutex is only ever
//!   locked on publish and on the first read after a publish.
//! * Each connection owns a [`ReaderHandle`] pinning one `Arc` clone and
//!   remembering the generation it saw. The warm path is a single
//!   `Acquire` load of the counter: equal generation means the pinned
//!   snapshot is current and queries proceed on it directly — no lock,
//!   no refcount traffic, no allocation.
//! * [`ServeState::publish`] installs the new `Arc` and bumps the
//!   counter (store inside the mutex, `Release` ordering), so a reader
//!   observing the new generation also observes the new pointer on its
//!   next mutex acquisition. Readers mid-query keep their pinned `Arc`:
//!   old snapshots stay fully valid (mapping and all) until the last
//!   pinned clone drops — hot swap never tears an in-flight query.

use crate::snapshot::ServeSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared server state: the current snapshot + its generation.
#[derive(Debug)]
pub struct ServeState {
    current: Mutex<Arc<ServeSnapshot>>,
    generation: AtomicU64,
}

impl ServeState {
    /// Start serving `snapshot` as generation `snapshot.generation()`.
    pub fn new(snapshot: ServeSnapshot) -> ServeState {
        let generation = AtomicU64::new(snapshot.generation());
        ServeState {
            current: Mutex::new(Arc::new(snapshot)),
            generation,
        }
    }

    /// The published generation (one `Acquire` load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clone the current snapshot pointer (locks briefly).
    pub fn current(&self) -> Arc<ServeSnapshot> {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Atomically install `snapshot` as the new current generation.
    /// In-flight readers keep answering on their pinned snapshots and
    /// converge on the new one at their next query batch.
    pub fn publish(&self, snapshot: ServeSnapshot) {
        let generation = snapshot.generation();
        let next = Arc::new(snapshot);
        let mut guard = self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = next;
        // Inside the lock so a reader that sees the new generation and
        // then takes the lock is guaranteed the new pointer.
        self.generation.store(generation, Ordering::Release);
    }

    /// Create a reader pinned to the current snapshot.
    pub fn reader(self: &Arc<Self>) -> ReaderHandle {
        let pinned = self.current();
        let seen = pinned.generation();
        ReaderHandle {
            state: Arc::clone(self),
            pinned,
            seen,
        }
    }
}

/// One connection's pinned view of the state. Cheap to create, `Send`;
/// each thread owns its own.
#[derive(Debug)]
pub struct ReaderHandle {
    state: Arc<ServeState>,
    pinned: Arc<ServeSnapshot>,
    seen: u64,
}

impl ReaderHandle {
    /// The current snapshot. Warm path (no swap since last call): one
    /// atomic load, zero allocation, returns the pinned snapshot.
    /// After a publish: re-pins under the state mutex, once.
    pub fn snapshot(&mut self) -> &ServeSnapshot {
        let live = self.state.generation.load(Ordering::Acquire);
        if live != self.seen {
            self.pinned = self.state.current();
            self.seen = self.pinned.generation();
        }
        &self.pinned
    }

    /// The generation this reader is pinned to.
    pub fn pinned_generation(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    // ServeState construction needs a real ServeSnapshot (mapped
    // frames), so behavioral coverage lives in the crate's integration
    // tests (`hot_swap.rs`), which build real cache directories.
}
