//! One loaded serve snapshot: mapped frames + query answering.
//!
//! A [`ServeSnapshot`] owns the memory-mapped INFERENCE and CONE frames
//! plus their validated [`InferenceLayout`]/[`ConeLayout`] section
//! tables. Checksums and structural invariants are verified exactly once
//! at load ([`ServeSnapshot::load`]); every query after that rebuilds a
//! `Copy` view over the mapped bytes (`from_layout` — a few offset
//! additions) and answers with in-place binary searches. The warm path
//! performs **zero heap allocation** — pinned by the crate's
//! `zero_alloc` integration test.
//!
//! Two small owned indexes are built once at load, because the on-disk
//! order of their sections is not the query key's order:
//!
//! * **degree index** — DEGREES entries are stored ranked (transit desc),
//!   so ASN point lookups get an ASN-sorted permutation into the section;
//! * **rank index** — replicates [`asrank_core::rank_ases`] (recursive
//!   cone size desc, transit degree desc, ASN asc; 1-based) over the
//!   mapped views, stored ASN-sorted for lookup.

use crate::mmap::MappedBytes;
use crate::source::{ConeFlavor, ResolvedFrames, ServeError, SourceSpec, SourceStamp};
use asrank_core::{ConeLayout, ConeSize, ConeView, InferenceLayout, InferenceView};
use asrank_core::pipeline::InferenceReport;
use asrank_types::{Asn, LinkRel, Orientation};

/// One query against a snapshot. `Cone*` queries carry the flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Relationship between two ASes, from the first AS's point of view.
    Rel(Asn, Asn),
    /// Is the second AS inside the first AS's cone?
    ConeContains(ConeFlavor, Asn, Asn),
    /// Cone size triple of an AS.
    ConeSize(ConeFlavor, Asn),
    /// `(transit, node)` degree of an AS (0, 0) when unobserved.
    Degree(Asn),
    /// 1-based AS rank by recursive cone, `None` when unranked.
    Rank(Asn),
}

/// The answer to one [`Query`], same arm order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// Orientation of the second AS relative to the first, if classified.
    Rel(Option<Orientation>),
    /// Cone membership verdict.
    ConeContains(bool),
    /// Cone size triple (`{ases: 1, ..}` fallback for unknown ASes).
    ConeSize(ConeSize),
    /// `(transit degree, node degree)`.
    Degree(u64, u64),
    /// 1-based rank, `None` for ASes outside the ranking.
    Rank(Option<u64>),
}

/// Packed `(asn, value)` row of the ASN-sorted side indexes.
#[derive(Debug, Clone, Copy)]
struct IndexRow {
    asn: u32,
    val: u32,
}

fn index_lookup(rows: &[IndexRow], asn: Asn) -> Option<u32> {
    let mut lo = 0usize;
    let mut hi = rows.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let row = rows[mid];
        if row.asn < asn.0 {
            lo = mid + 1;
        } else if row.asn > asn.0 {
            hi = mid;
        } else {
            return Some(row.val);
        }
    }
    None
}

/// A fully loaded, immutable, query-ready snapshot of the cache state.
#[derive(Debug)]
pub struct ServeSnapshot {
    inference_map: MappedBytes,
    cone_maps: [MappedBytes; 3],
    inference_layout: InferenceLayout,
    cone_layouts: [ConeLayout; 3],
    report: InferenceReport,
    /// ASN-sorted permutation into the ranked DEGREES section.
    degree_index: Vec<IndexRow>,
    /// ASN-sorted 1-based ranks (recursive cone).
    rank_index: Vec<IndexRow>,
    frames: ResolvedFrames,
    stamp: SourceStamp,
    generation: u64,
}

impl ServeSnapshot {
    /// Resolve frame paths from `spec`, map them, validate every frame
    /// once, and build the side indexes. `generation` tags the snapshot
    /// for the hot-swap protocol.
    pub fn load(spec: &SourceSpec, generation: u64) -> Result<ServeSnapshot, ServeError> {
        let frames = spec.resolve()?;
        let snap = Self::load_resolved(spec, frames, generation)?;
        Ok(snap)
    }

    fn load_resolved(
        spec: &SourceSpec,
        frames: ResolvedFrames,
        generation: u64,
    ) -> Result<ServeSnapshot, ServeError> {
        let stamp = spec.stamp(&frames);
        let open = |path: &std::path::Path| -> Result<MappedBytes, ServeError> {
            MappedBytes::open(path).map_err(|e| ServeError::Io {
                path: path.to_path_buf(),
                detail: e.to_string(),
            })
        };
        let inference_map = open(&frames.inference)?;
        let cone_maps = [
            open(&frames.cones[0])?,
            open(&frames.cones[1])?,
            open(&frames.cones[2])?,
        ];

        let (_, inference_layout, report) =
            InferenceView::open(&inference_map).map_err(|e| ServeError::BadFrame {
                stage: crate::source::INFERENCE_STAGE.into(),
                detail: e.to_string(),
            })?;
        let mut cone_layouts = [ConeLayout::default(); 3];
        for flavor in ConeFlavor::ALL {
            let i = flavor.index();
            let (_, layout) = ConeView::open(&cone_maps[i]).map_err(|e| ServeError::BadFrame {
                stage: flavor.stage().into(),
                detail: e.to_string(),
            })?;
            cone_layouts[i] = layout;
        }

        let inference = InferenceView::from_layout(&inference_map, &inference_layout);
        let degree_index = build_degree_index(&inference);
        let recursive = ConeView::from_layout(
            &cone_maps[ConeFlavor::Recursive.index()],
            &cone_layouts[ConeFlavor::Recursive.index()],
        );
        let rank_index = build_rank_index(&recursive, &inference, &degree_index);

        Ok(ServeSnapshot {
            inference_map,
            cone_maps,
            inference_layout,
            cone_layouts,
            report,
            degree_index,
            rank_index,
            frames,
            stamp,
            generation,
        })
    }

    /// The snapshot's generation tag (monotone across hot-swaps).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The inference report persisted with the frame.
    pub fn report(&self) -> &InferenceReport {
        &self.report
    }

    /// The frames this snapshot was built from.
    pub fn frames(&self) -> &ResolvedFrames {
        &self.frames
    }

    /// The on-disk signatures captured at load; the watcher compares a
    /// fresh capture against this to detect a re-warmed cache.
    pub fn stamp(&self) -> &SourceStamp {
        &self.stamp
    }

    /// Borrow the relationship/clique/degree view over the mapped frame.
    /// Construction is a handful of offset additions — no allocation.
    pub fn inference(&self) -> InferenceView<'_> {
        InferenceView::from_layout(&self.inference_map, &self.inference_layout)
    }

    /// Borrow the cone view for `flavor` over its mapped frame.
    pub fn cone(&self, flavor: ConeFlavor) -> ConeView<'_> {
        let i = flavor.index();
        ConeView::from_layout(&self.cone_maps[i], &self.cone_layouts[i])
    }

    /// Relationship on the `x`–`y` link in canonical orientation.
    pub fn rel(&self, x: Asn, y: Asn) -> Option<LinkRel> {
        self.inference().rels.get(x, y)
    }

    /// Relationship from `x`'s point of view (`Provider` = `y` is `x`'s
    /// provider), `None` when the link is unclassified.
    pub fn orientation(&self, x: Asn, y: Asn) -> Option<Orientation> {
        self.inference().rels.orientation(x, y)
    }

    /// Is `y` inside `x`'s `flavor` cone?
    pub fn cone_contains(&self, flavor: ConeFlavor, x: Asn, y: Asn) -> bool {
        self.cone(flavor).contains(x, y)
    }

    /// Cone size of `x` under `flavor` (engine fallback semantics:
    /// `{ases: 1, ..}` for ASes without a computed cone).
    pub fn cone_size(&self, flavor: ConeFlavor, x: Asn) -> ConeSize {
        self.cone(flavor).size(x)
    }

    /// `(transit, node)` degree of `x`; `(0, 0)` when unobserved —
    /// mirror of `DegreeTable::transit_degree`/`node_degree`.
    pub fn degree(&self, x: Asn) -> (u64, u64) {
        index_lookup(&self.degree_index, x)
            .and_then(|pos| self.inference().degrees.entry(pos as usize))
            .map_or((0, 0), |(_, transit, node)| (transit, node))
    }

    /// 1-based AS rank by recursive customer cone (`rank_ases` order),
    /// `None` for ASes outside the ranking.
    pub fn rank(&self, x: Asn) -> Option<u64> {
        index_lookup(&self.rank_index, x).map(u64::from)
    }

    /// Number of ranked ASes.
    pub fn ranked_len(&self) -> usize {
        self.rank_index.len()
    }

    /// Answer one query.
    pub fn answer(&self, q: Query) -> Answer {
        match q {
            Query::Rel(x, y) => Answer::Rel(self.orientation(x, y)),
            Query::ConeContains(f, x, y) => Answer::ConeContains(self.cone_contains(f, x, y)),
            Query::ConeSize(f, x) => Answer::ConeSize(self.cone_size(f, x)),
            Query::Degree(x) => {
                let (t, n) = self.degree(x);
                Answer::Degree(t, n)
            }
            Query::Rank(x) => Answer::Rank(self.rank(x)),
        }
    }

    /// Answer a batch into `out` (cleared first). Reuse the same `out`
    /// buffer across batches to keep the warm path allocation-free.
    pub fn answer_batch(&self, queries: &[Query], out: &mut Vec<Answer>) {
        out.clear();
        out.reserve(queries.len());
        for &q in queries {
            out.push(self.answer(q));
        }
    }
}

/// ASN-sorted permutation into the ranked DEGREES section.
fn build_degree_index(inference: &InferenceView<'_>) -> Vec<IndexRow> {
    let mut rows: Vec<IndexRow> = inference
        .degrees
        .iter()
        .enumerate()
        .map(|(pos, (asn, _, _))| IndexRow {
            asn: asn.0,
            val: u32::try_from(pos).unwrap_or(u32::MAX),
        })
        .collect();
    rows.sort_unstable_by_key(|r| r.asn);
    rows
}

/// Replicate `rank_ases` over the mapped views: every AS covered by the
/// recursive cone, ordered by (cone ASes desc, transit degree desc, ASN
/// asc), rank 1-based — then re-sorted by ASN for point lookup.
fn build_rank_index(
    recursive: &ConeView<'_>,
    inference: &InferenceView<'_>,
    degree_index: &[IndexRow],
) -> Vec<IndexRow> {
    let transit = |asn: Asn| -> u64 {
        index_lookup(degree_index, asn)
            .and_then(|pos| inference.degrees.entry(pos as usize))
            .map_or(0, |(_, t, _)| t)
    };
    let mut rows: Vec<(u64, u64, u32)> = recursive
        .iter_sizes()
        .map(|(asn, size)| (u64::try_from(size.ases).unwrap_or(u64::MAX), transit(asn), asn.0))
        .collect();
    rows.sort_unstable_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    let mut index: Vec<IndexRow> = rows
        .iter()
        .enumerate()
        .map(|(i, &(_, _, asn))| IndexRow {
            asn,
            val: u32::try_from(i + 1).unwrap_or(u32::MAX),
        })
        .collect();
    index.sort_unstable_by_key(|r| r.asn);
    index
}
