//! Step S3 — Tier-1 clique inference.
//!
//! The top of the transit hierarchy is a set of networks that peer with
//! one another and buy transit from nobody — the Tier-1 clique. The paper
//! infers it by taking the ASes with the largest transit degrees and
//! finding the largest clique (via Bron-Kerbosch) in their observed
//! adjacency graph, seeded to contain the AS with the largest transit
//! degree. Everything downstream leans on this anchor: clique-to-clique
//! links are p2p by construction and the top-down c2p propagation starts
//! from the clique.

use crate::degree::DegreeTable;
use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Clique inference parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CliqueConfig {
    /// How many top-transit-degree ASes to consider as clique candidates.
    pub candidates: usize,
    /// Require the seed (largest transit degree AS) to be in the clique.
    pub require_seed: bool,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        CliqueConfig {
            candidates: 25,
            require_seed: true,
        }
    }
}

/// Infer the Tier-1 clique. Returns members sorted by ASN.
///
/// Among all maximal cliques of the candidate adjacency graph (restricted
/// to links actually observed in paths), the one with the largest total
/// transit degree wins — size alone would favor accidental dense pockets
/// of mid-size ASes over the true top of the hierarchy.
pub fn infer_clique(paths: &SanitizedPaths, degrees: &DegreeTable, cfg: &CliqueConfig) -> Vec<Asn> {
    let candidates = clique_candidates(degrees, cfg);
    if candidates.is_empty() {
        return Vec::new();
    }
    let index: HashMap<Asn, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i))
        .collect();

    // Observed adjacency restricted to the candidates.
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); candidates.len()];
    for path in paths.paths() {
        for (a, b) in path.links() {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                adj[ia].insert(ib);
                adj[ib].insert(ia);
            }
        }
    }

    clique_from_adjacency(&candidates, &adj, degrees, cfg)
}

/// Candidate list shared by [`infer_clique`] and the incremental engine:
/// the `cfg.candidates` highest-ranked ASes with nonzero transit degree.
pub(crate) fn clique_candidates(degrees: &DegreeTable, cfg: &CliqueConfig) -> Vec<Asn> {
    degrees
        .ranked()
        .iter()
        .copied()
        .filter(|&a| degrees.transit_degree(a) > 0)
        .take(cfg.candidates)
        .collect()
}

/// The adjacency-independent core of [`infer_clique`]: given the
/// candidate list and their observed adjacency (however it was built —
/// a full path scan here, maintained link refcounts on the incremental
/// path), run the deterministic Bron-Kerbosch search and tie-breaks.
/// Splitting here keeps both callers byte-identical by construction.
pub(crate) fn clique_from_adjacency(
    candidates: &[Asn],
    adj: &[HashSet<usize>],
    degrees: &DegreeTable,
    cfg: &CliqueConfig,
) -> Vec<Asn> {
    if candidates.is_empty() {
        return Vec::new();
    }
    // Bron-Kerbosch with pivoting, collecting maximal cliques.
    let mut best: Vec<usize> = Vec::new();
    let mut best_score: (usize, usize) = (0, 0); // (total transit degree, size)
    let score = |clique: &[usize]| -> (usize, usize) {
        (
            clique
                .iter()
                .map(|&i| degrees.transit_degree(candidates[i]))
                .sum(),
            clique.len(),
        )
    };

    let mut r: Vec<usize> = Vec::new();
    let p: HashSet<usize> = (0..candidates.len()).collect();
    let x: HashSet<usize> = HashSet::new();
    bron_kerbosch(adj, &mut r, p, x, &mut |clique: &[usize]| {
        if cfg.require_seed && !clique.contains(&0) {
            return;
        }
        let s = score(clique);
        // Equal-score ties go to the lexicographically smallest sorted
        // index set, so the winner is independent of the order
        // Bron-Kerbosch happens to enumerate maximal cliques in.
        let mut members = clique.to_vec();
        members.sort_unstable();
        if s > best_score || (s == best_score && !best.is_empty() && members < best) {
            best_score = s;
            best = members;
        }
    });

    // Fall back to the seed alone if nothing qualified (e.g. the seed is
    // isolated among candidates — degenerate but must not return empty).
    if best.is_empty() && cfg.require_seed {
        best.push(0);
    }

    let mut out: Vec<Asn> = best.into_iter().map(|i| candidates[i]).collect();
    out.sort();
    out
}

/// Classic Bron-Kerbosch with pivot selection by maximum degree in `p ∪ x`.
fn bron_kerbosch(
    adj: &[HashSet<usize>],
    r: &mut Vec<usize>,
    p: HashSet<usize>,
    x: HashSet<usize>,
    report: &mut impl FnMut(&[usize]),
) {
    if p.is_empty() && x.is_empty() {
        report(r);
        return;
    }
    // Pivot: vertex in P ∪ X with the most neighbors in P; ties broken
    // toward the smallest vertex so the recursion shape never depends on
    // hash-set iteration order.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| (adj[u].intersection(&p).count(), std::cmp::Reverse(u)));
    let expand: Vec<usize> = match pivot {
        Some(u) => p.iter().copied().filter(|v| !adj[u].contains(v)).collect(),
        None => p.iter().copied().collect(),
    };
    let mut p = p;
    let mut x = x;
    let mut expand = expand;
    expand.sort_unstable(); // deterministic recursion order
    for v in expand {
        let np: HashSet<usize> = p.intersection(&adj[v]).copied().collect();
        let nx: HashSet<usize> = x.intersection(&adj[v]).copied().collect();
        r.push(v);
        bron_kerbosch(adj, r, np, nx, report);
        r.pop();
        p.remove(&v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    /// Build a path set where ASes 1, 2, 3 form a fully-meshed top (each
    /// pair adjacent in some path, each with high transit degree) and
    /// 4, 5 are mid-tier.
    fn clique_paths() -> SanitizedPaths {
        let raw: Vec<&[u32]> = vec![
            // Clique adjacencies with transit positions for 1, 2, 3.
            &[40, 1, 2, 50],
            &[41, 2, 3, 51],
            &[42, 1, 3, 52],
            &[43, 3, 1, 53],
            &[44, 2, 1, 54],
            // Give 1, 2, 3 more transit neighbors than anyone else.
            &[45, 1, 55],
            &[46, 1, 56],
            &[47, 2, 57],
            &[48, 2, 58],
            &[49, 3, 59],
            &[60, 3, 61],
            // Mid-tier 4 and 5: some transit, attached below the clique.
            &[62, 4, 1, 63],
            &[64, 5, 2, 65],
        ];
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn finds_planted_clique() {
        let paths = clique_paths();
        let degrees = DegreeTable::compute(&paths);
        let clique = infer_clique(&paths, &degrees, &CliqueConfig::default());
        assert_eq!(clique, vec![Asn(1), Asn(2), Asn(3)]);
    }

    #[test]
    fn candidate_cap_respected() {
        let paths = clique_paths();
        let degrees = DegreeTable::compute(&paths);
        let cfg = CliqueConfig {
            candidates: 1,
            require_seed: true,
        };
        let clique = infer_clique(&paths, &degrees, &cfg);
        assert_eq!(clique.len(), 1, "only the seed fits in one candidate");
    }

    #[test]
    fn empty_input_gives_empty_clique() {
        let paths = SanitizedPaths::default();
        let degrees = DegreeTable::compute(&paths);
        assert!(infer_clique(&paths, &degrees, &CliqueConfig::default()).is_empty());
    }

    #[test]
    fn clique_members_are_pairwise_adjacent_in_paths() {
        let paths = clique_paths();
        let degrees = DegreeTable::compute(&paths);
        let clique = infer_clique(&paths, &degrees, &CliqueConfig::default());
        let links = paths.links();
        for (i, &a) in clique.iter().enumerate() {
            for &b in &clique[i + 1..] {
                assert!(
                    links.contains(&AsLink::new(a, b)),
                    "{a} and {b} inferred as clique but never adjacent"
                );
            }
        }
    }

    #[test]
    fn isolated_seed_falls_back_to_singleton() {
        // One path gives AS 2 transit degree but no candidate adjacency
        // (1 and 3 are endpoints with transit degree 0 → not candidates…
        // they are candidates only if transit degree > 0).
        let ps: PathSet = [PathSample {
            vp: Asn(1),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: AsPath::from_u32s([1, 2, 3]),
        }]
        .into_iter()
        .collect();
        let paths = sanitize(&ps, &SanitizeConfig::default());
        let degrees = DegreeTable::compute(&paths);
        let clique = infer_clique(&paths, &degrees, &CliqueConfig::default());
        assert_eq!(clique, vec![Asn(2)]);
    }
}
