//! Iterative Tarjan strongly-connected components.
//!
//! The inferred c2p digraph *should* be acyclic, but inference errors can
//! produce cycles; both the cone computation (which must collapse them to
//! make the transitive closure well-defined) and the S11 audit (which
//! must count them) need exact SCCs. The implementation is iterative —
//! recursion would overflow on the deep customer chains of a 40k-AS
//! topology.

/// Strongly-connected components of a digraph given as adjacency lists.
#[derive(Debug, Clone)]
pub struct Scc {
    /// Component id of each node (dense, arbitrary order).
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component.
    pub sizes: Vec<u32>,
}

impl Scc {
    /// True when `v` lies on a cycle (its component has ≥ 2 nodes, or it
    /// has a self-loop — self-loops cannot occur in c2p graphs, so size
    /// alone suffices here).
    pub fn on_cycle(&self, v: usize) -> bool {
        self.sizes[self.comp[v] as usize] >= 2
    }
}

/// Compute SCCs with an iterative Tarjan.
///
/// `adj` is any [`Adjacency`] — a [`Csr`](crate::csr::Csr) in production
/// code, a plain `Vec<Vec<u32>>` in tests.
pub fn tarjan<A: crate::csr::Adjacency>(n: usize, adj: A) -> Scc {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut comp_count: u32 = 0;
    let mut sizes: Vec<u32> = Vec::new();

    // Explicit DFS frames: (node, next edge offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let edges = adj.neighbors(v);
            if *ei < edges.len() {
                let w = edges[*ei];
                *ei += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots a component.
                    let mut size = 0u32;
                    loop {
                        // lint: allow(panics, Tarjan invariant — v is on the stack whenever it roots a component)
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    sizes.push(size);
                    comp_count += 1;
                }
            }
        }
    }

    Scc {
        comp,
        count: comp_count as usize,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u as usize].push(v);
        }
        a
    }

    #[test]
    fn dag_has_singleton_components() {
        let a = adj(4, &[(0, 1), (1, 2), (0, 3)]);
        let s = tarjan(4, &a);
        assert_eq!(s.count, 4);
        assert!((0..4).all(|v| !s.on_cycle(v)));
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let a = adj(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let s = tarjan(4, &a);
        assert_eq!(s.count, 2);
        assert_eq!(s.comp[0], s.comp[1]);
        assert_eq!(s.comp[1], s.comp[2]);
        assert_ne!(s.comp[3], s.comp[0]);
        assert!(s.on_cycle(0) && s.on_cycle(1) && s.on_cycle(2));
        assert!(!s.on_cycle(3));
    }

    #[test]
    fn two_cycles_with_bridge_stay_separate() {
        // 0↔1 and 3↔4 with a bridge 1→2→3: three components {0,1}, {2},
        // {3,4}; node 2 is not on a cycle.
        let a = adj(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3)]);
        let s = tarjan(5, &a);
        assert_eq!(s.comp[0], s.comp[1]);
        assert_eq!(s.comp[3], s.comp[4]);
        assert_ne!(s.comp[0], s.comp[3]);
        assert!(!s.on_cycle(2));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node chain — a recursive Tarjan would blow the stack.
        let n = 100_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let a = adj(n, &edges);
        let s = tarjan(n, &a);
        assert_eq!(s.count, n);
    }

    #[test]
    fn empty_graph() {
        let s = tarjan(0, Vec::<Vec<u32>>::new());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        // A self-loop keeps its node in a size-1 component; `on_cycle`
        // is size-based and therefore stays false. Relationship graphs
        // cannot contain self-loops (links join distinct ASes), so this
        // documents rather than guards the behavior.
        let a = adj(3, &[(0, 0), (0, 1), (1, 2)]);
        let s = tarjan(3, &a);
        assert_eq!(s.count, 3);
        assert!(!s.on_cycle(0));
        assert_eq!(s.sizes[s.comp[0] as usize], 1);
    }

    #[test]
    fn two_cycle_is_one_component_of_size_two() {
        let a = adj(3, &[(0, 1), (1, 0), (1, 2)]);
        let s = tarjan(3, &a);
        assert_eq!(s.count, 2);
        assert_eq!(s.comp[0], s.comp[1]);
        assert!(s.on_cycle(0) && s.on_cycle(1));
        assert!(!s.on_cycle(2));
        assert_eq!(s.sizes[s.comp[0] as usize], 2);
    }

    #[test]
    fn full_cycle_collapses_to_one_component() {
        // Ring through every node: the whole graph is a single SCC.
        let n = 64;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let a = adj(n, &edges);
        let s = tarjan(n, &a);
        assert_eq!(s.count, 1);
        assert!((0..n).all(|v| s.on_cycle(v)));
        assert_eq!(s.sizes, vec![n as u32]);
    }
}
