//! Step S2 — transit degree and AS ranking.
//!
//! The pipeline's visiting order is governed by **transit degree**: the
//! number of distinct neighbors an AS is observed *providing transit
//! between* — i.e., neighbors adjacent to the AS at path positions where
//! the AS is in the middle. Transit degree is a far better proxy for
//! position in the hierarchy than plain node degree, because a stub with
//! many peers still has transit degree zero. Ties break by node degree,
//! then by lower ASN (the paper's ordering).

use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-AS degree information derived from sanitized paths.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeTable {
    transit: HashMap<Asn, usize>,
    node: HashMap<Asn, usize>,
    /// ASes sorted by (transit degree desc, node degree desc, ASN asc).
    ranked: Vec<Asn>,
}

impl DegreeTable {
    /// Compute degrees over a sanitized dataset.
    pub fn compute(paths: &SanitizedPaths) -> Self {
        let mut transit_sets: HashMap<Asn, HashSet<Asn>> = HashMap::new();
        let mut node_sets: HashMap<Asn, HashSet<Asn>> = HashMap::new();

        for path in paths.paths() {
            let hops = &path.0;
            for (i, &asn) in hops.iter().enumerate() {
                if i > 0 {
                    node_sets.entry(asn).or_default().insert(hops[i - 1]);
                }
                if i + 1 < hops.len() {
                    node_sets.entry(asn).or_default().insert(hops[i + 1]);
                }
                if i > 0 && i + 1 < hops.len() {
                    let set = transit_sets.entry(asn).or_default();
                    set.insert(hops[i - 1]);
                    set.insert(hops[i + 1]);
                }
            }
        }

        let transit: HashMap<Asn, usize> = node_sets
            .keys()
            .map(|&a| (a, transit_sets.get(&a).map(HashSet::len).unwrap_or(0)))
            .collect();
        let node: HashMap<Asn, usize> = node_sets.iter().map(|(&a, s)| (a, s.len())).collect();

        let mut ranked: Vec<Asn> = node.keys().copied().collect();
        ranked.sort_by(|a, b| {
            let ta = transit[a];
            let tb = transit[b];
            tb.cmp(&ta)
                .then_with(|| node[b].cmp(&node[a]))
                .then_with(|| a.cmp(b))
        });

        DegreeTable {
            transit,
            node,
            ranked,
        }
    }

    /// Rebuild a table from its canonical serialized form: one
    /// `(asn, transit degree, node degree)` entry per observed AS, in
    /// `ranked` order. The three internal collections share one key set
    /// by construction, so this is a lossless inverse of walking
    /// [`DegreeTable::ranked`] with the degree accessors — the persistent
    /// artifact codec's decode path. The caller owns the ordering
    /// invariant; only [`DegreeTable::compute`] establishes it from
    /// scratch.
    pub fn from_ranked_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Asn, usize, usize)>,
    {
        let mut transit = HashMap::new();
        let mut node = HashMap::new();
        let mut ranked = Vec::new();
        for (asn, t, n) in entries {
            transit.insert(asn, t);
            node.insert(asn, n);
            ranked.push(asn);
        }
        DegreeTable {
            transit,
            node,
            ranked,
        }
    }

    /// Transit degree of `asn` (0 for unknown ASes).
    pub fn transit_degree(&self, asn: Asn) -> usize {
        self.transit.get(&asn).copied().unwrap_or(0)
    }

    /// Node degree of `asn` (0 for unknown ASes).
    pub fn node_degree(&self, asn: Asn) -> usize {
        self.node.get(&asn).copied().unwrap_or(0)
    }

    /// ASes in visiting order (highest transit degree first).
    pub fn ranked(&self) -> &[Asn] {
        &self.ranked
    }

    /// Rank position of `asn` (0 = highest), if observed.
    pub fn position(&self, asn: Asn) -> Option<usize> {
        // Linear scan is fine for tests/reports; hot paths use `ranked()`.
        self.ranked.iter().position(|&a| a == asn)
    }

    /// Number of ASes observed.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when no AS was observed.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// ASes with zero transit degree (the edge of the Internet).
    pub fn stubs(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ranked
            .iter()
            .copied()
            .filter(move |&a| self.transit_degree(a) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    fn table(paths: &[&[u32]]) -> DegreeTable {
        let ps: PathSet = paths
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        DegreeTable::compute(&sanitize(&ps, &SanitizeConfig::default()))
    }

    #[test]
    fn transit_degree_counts_middle_positions_only() {
        // 2 transits between 1 and 3; 1 and 3 are endpoints everywhere.
        let t = table(&[&[1, 2, 3]]);
        assert_eq!(t.transit_degree(Asn(2)), 2);
        assert_eq!(t.transit_degree(Asn(1)), 0);
        assert_eq!(t.transit_degree(Asn(3)), 0);
        assert_eq!(t.node_degree(Asn(2)), 2);
        assert_eq!(t.node_degree(Asn(1)), 1);
    }

    #[test]
    fn transit_neighbors_accumulate_across_paths() {
        let t = table(&[&[1, 2, 3], &[4, 2, 5], &[1, 2, 5]]);
        // 2's transit neighbors: 1, 3, 4, 5.
        assert_eq!(t.transit_degree(Asn(2)), 4);
    }

    #[test]
    fn ranking_prefers_transit_then_node_then_asn() {
        // 5 has transit degree 2; 9 and 7 have 0.
        // 9 has node degree 1; 7 has node degree 1 → tie broken by ASN.
        let t = table(&[&[9, 5, 7]]);
        assert_eq!(t.ranked()[0], Asn(5));
        assert_eq!(t.ranked()[1], Asn(7));
        assert_eq!(t.ranked()[2], Asn(9));
        assert_eq!(t.position(Asn(5)), Some(0));
    }

    #[test]
    fn stub_detection() {
        let t = table(&[&[1, 2, 3]]);
        let stubs: Vec<Asn> = t.stubs().collect();
        assert_eq!(stubs, vec![Asn(1), Asn(3)]);
    }

    #[test]
    fn endpoint_of_one_path_middle_of_another() {
        let t = table(&[&[1, 2], &[3, 1, 4]]);
        // 1 is an endpoint in path 0 but transits in path 1.
        assert_eq!(t.transit_degree(Asn(1)), 2);
        assert_eq!(t.node_degree(Asn(1)), 3);
    }

    #[test]
    fn empty_input() {
        let t = table(&[]);
        assert!(t.is_empty());
        assert_eq!(t.transit_degree(Asn(1)), 0);
    }
}
