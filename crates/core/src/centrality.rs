//! Transit centrality — a path-based importance measure.
//!
//! The cone-based ranking this paper introduced was later complemented by
//! path-centrality measures (e.g. AS hegemony) that ask a different
//! question: *what fraction of observed routes actually traverse this
//! AS?* A network can have a large customer cone yet carry little of the
//! observable traffic mix, and vice versa. This module implements the
//! straightforward observable variant: for each AS, the fraction of
//! distinct (VP, origin) paths that include it as a transit hop, with
//! the endpoints themselves excluded (an AS is not "transit" for its own
//! routes).

use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-AS transit centrality.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Centrality {
    scores: HashMap<Asn, f64>,
    /// Number of distinct paths the scores are normalized by.
    pub paths: usize,
}

impl Centrality {
    /// Centrality of `asn` in `[0, 1]` (0 for unobserved ASes).
    pub fn score(&self, asn: Asn) -> f64 {
        self.scores.get(&asn).copied().unwrap_or(0.0)
    }

    /// ASes ranked by centrality (descending), ties by ASN.
    pub fn ranked(&self) -> Vec<(Asn, f64)> {
        let mut v: Vec<(Asn, f64)> = self.scores.iter().map(|(&a, &s)| (a, s)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    /// Number of ASes with a nonzero score.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no path contributed.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Compute transit centrality over sanitized paths.
///
/// Each distinct path contributes once; every *interior* hop of the path
/// gets credit. VPs see the world from their own corner, so like the
/// paper's cones this is an *observable* measure, shaped by where the
/// collectors sit.
pub fn transit_centrality(paths: &SanitizedPaths) -> Centrality {
    let distinct: HashSet<&AsPath> = paths.paths().collect();
    let total = distinct.len();
    let mut counts: HashMap<Asn, usize> = HashMap::new();
    for p in &distinct {
        let hops = &p.0;
        // Interior hops only — each AS at most once per path.
        let mut seen: HashSet<Asn> = HashSet::new();
        for &a in &hops[1..hops.len().saturating_sub(1)] {
            if seen.insert(a) {
                *counts.entry(a).or_default() += 1;
            }
        }
    }
    Centrality {
        scores: counts
            .into_iter()
            .map(|(a, c)| (a, c as f64 / total.max(1) as f64))
            .collect(),
        paths: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    fn sanitized(raw: &[&[u32]]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn interior_hops_get_credit() {
        let c = transit_centrality(&sanitized(&[&[1, 2, 3], &[4, 2, 5]]));
        assert_eq!(c.paths, 2);
        assert!((c.score(Asn(2)) - 1.0).abs() < 1e-12, "2 transits both");
        assert_eq!(c.score(Asn(1)), 0.0, "endpoints are not transit");
        assert_eq!(c.score(Asn(3)), 0.0);
        assert_eq!(c.score(Asn(99)), 0.0);
    }

    #[test]
    fn ranking_is_descending_and_tie_broken() {
        let c = transit_centrality(&sanitized(&[&[1, 2, 3, 9], &[1, 2, 8], &[7, 3, 8]]));
        let ranked = c.ranked();
        assert_eq!(ranked[0].0, Asn(2)); // in 2 of 3 paths
                                         // 3 is interior in paths 1 and 3 → 2/3 as well: tie on score,
                                         // broken by ASN → 2 before 3.
        assert_eq!(ranked[1].0, Asn(3));
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn cone_and_centrality_can_disagree() {
        // 5 has a large "cone" (many customers below) but all VPs sit
        // inside its subtree, so it never appears interior; 6 transits
        // everything.
        let c = transit_centrality(&sanitized(&[&[10, 6, 20], &[11, 6, 21], &[12, 6, 22]]));
        assert!(c.score(Asn(6)) > 0.99);
        assert_eq!(c.score(Asn(5)), 0.0);
    }

    #[test]
    fn empty_input() {
        let c = transit_centrality(&SanitizedPaths::default());
        assert!(c.is_empty());
        assert_eq!(c.paths, 0);
    }
}
