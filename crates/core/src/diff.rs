//! Relationship-map diffing.
//!
//! CAIDA publishes as-rel snapshots monthly; the interesting signal is
//! often the *delta* — new links, vanished links, and relationship
//! changes (a customer upgraded to peer is a business event worth
//! noticing). [`diff_relationships`] computes exactly that, and is also
//! the tool for comparing two inference runs (different VP sets,
//! different algorithm versions) over the same topology.

use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};

/// One changed link: classification before and after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangedLink {
    /// The link.
    pub link: AsLink,
    /// Classification in the old map.
    pub before: LinkRel,
    /// Classification in the new map.
    pub after: LinkRel,
}

/// The delta between two relationship maps.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelDiff {
    /// Links present only in the new map, sorted.
    pub added: Vec<(AsLink, LinkRel)>,
    /// Links present only in the old map, sorted.
    pub removed: Vec<(AsLink, LinkRel)>,
    /// Links present in both with a different classification, sorted.
    pub changed: Vec<ChangedLink>,
    /// Links present and identical in both.
    pub unchanged: usize,
}

impl RelDiff {
    /// Total number of differences.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// True when the maps are identical.
    pub fn is_empty(&self) -> bool {
        self.churn() == 0
    }

    /// Fraction of the union of links that is unchanged.
    pub fn stability(&self) -> f64 {
        let total = self.unchanged + self.churn();
        if total == 0 {
            1.0
        } else {
            self.unchanged as f64 / total as f64
        }
    }
}

/// Compute the delta from `old` to `new`.
pub fn diff_relationships(old: &RelationshipMap, new: &RelationshipMap) -> RelDiff {
    let mut diff = RelDiff::default();
    for (link, before) in old.iter() {
        match new.get(link.a, link.b) {
            None => diff.removed.push((link, before)),
            Some(after) if after != before => diff.changed.push(ChangedLink {
                link,
                before,
                after,
            }),
            Some(_) => diff.unchanged += 1,
        }
    }
    for (link, after) in new.iter() {
        if old.get(link.a, link.b).is_none() {
            diff.added.push((link, after));
        }
    }
    diff.added.sort_by_key(|(l, _)| (l.a, l.b));
    diff.removed.sort_by_key(|(l, _)| (l.a, l.b));
    diff.changed.sort_by_key(|c| (c.link.a, c.link.b));
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_maps_have_empty_diff() {
        let mut m = RelationshipMap::new();
        m.insert_c2p(Asn(1), Asn(2));
        m.insert_p2p(Asn(2), Asn(3));
        let d = diff_relationships(&m, &m.clone());
        assert!(d.is_empty());
        assert_eq!(d.unchanged, 2);
        assert!((d.stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_all_change_kinds() {
        let mut old = RelationshipMap::new();
        old.insert_c2p(Asn(1), Asn(2)); // will flip to p2p
        old.insert_p2p(Asn(3), Asn(4)); // will vanish
        old.insert_c2p(Asn(5), Asn(6)); // unchanged

        let mut new = RelationshipMap::new();
        new.insert_p2p(Asn(1), Asn(2));
        new.insert_c2p(Asn(5), Asn(6));
        new.insert_s2s(Asn(7), Asn(8)); // appears

        let d = diff_relationships(&old, &new);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].0, AsLink::new(Asn(7), Asn(8)));
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.removed[0].0, AsLink::new(Asn(3), Asn(4)));
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].link, AsLink::new(Asn(1), Asn(2)));
        assert_eq!(d.changed[0].before.kind(), RelationshipKind::C2p);
        assert_eq!(d.changed[0].after.kind(), RelationshipKind::P2p);
        assert_eq!(d.unchanged, 1);
        assert_eq!(d.churn(), 3);
        assert!((d.stability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn orientation_flip_counts_as_change() {
        let mut old = RelationshipMap::new();
        old.insert_c2p(Asn(1), Asn(2));
        let mut new = RelationshipMap::new();
        new.insert_c2p(Asn(2), Asn(1)); // reversed roles
        let d = diff_relationships(&old, &new);
        assert_eq!(d.changed.len(), 1);
    }

    #[test]
    fn empty_maps() {
        let d = diff_relationships(&RelationshipMap::new(), &RelationshipMap::new());
        assert!(d.is_empty());
        assert!((d.stability() - 1.0).abs() < 1e-12);
    }
}
