//! CAIDA `as-rel` interchange format.
//!
//! The paper's public artifact ships relationship inferences as
//! pipe-separated text (the "serial-1" format still published monthly):
//!
//! ```text
//! # comment lines start with '#'
//! <provider-as>|<customer-as>|-1
//! <peer-as>|<peer-as>|0
//! <sibling-as>|<sibling-as>|2      (serial-2 extension)
//! ```
//!
//! This module reads and writes that format so the reproduction's output
//! is drop-in compatible with tooling built around CAIDA's files.

use asrank_types::prelude::*;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing as-rel text.
#[derive(Debug)]
pub enum AsRelError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// Line number.
        line: usize,
        /// Line content.
        content: String,
    },
}

impl fmt::Display for AsRelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsRelError::Io(e) => write!(f, "I/O error: {e}"),
            AsRelError::Malformed { line, content } => {
                write!(f, "malformed as-rel line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for AsRelError {}

impl From<std::io::Error> for AsRelError {
    fn from(e: std::io::Error) -> Self {
        AsRelError::Io(e)
    }
}

/// Write a relationship map in as-rel format, sorted for reproducible
/// output. Returns the number of data lines written.
pub fn write_as_rel<W: Write>(rels: &RelationshipMap, mut out: W) -> Result<usize, AsRelError> {
    writeln!(
        out,
        "# asrank reproduction | format: provider|customer|-1, peer|peer|0, sibling|sibling|2"
    )?;
    let mut lines: Vec<(u32, u32, i8)> = Vec::with_capacity(rels.len());
    for (link, rel) in rels.iter() {
        let (a, b, code) = match rel {
            // provider first for c2p lines, as CAIDA does.
            LinkRel::AC2pB => (link.b.0, link.a.0, -1),
            LinkRel::AP2cB => (link.a.0, link.b.0, -1),
            LinkRel::P2p => (link.a.0, link.b.0, 0),
            LinkRel::S2s => (link.a.0, link.b.0, 2),
        };
        lines.push((a, b, code));
    }
    lines.sort_unstable();
    let n = lines.len();
    for (a, b, code) in lines {
        writeln!(out, "{a}|{b}|{code}")?;
    }
    Ok(n)
}

/// Read an as-rel file into a relationship map. Comment lines (`#`) and
/// blank lines are skipped; anything else malformed is an error.
pub fn read_as_rel<R: BufRead>(input: R) -> Result<RelationshipMap, AsRelError> {
    let mut rels = RelationshipMap::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let malformed = || AsRelError::Malformed {
            line: i + 1,
            content: line.clone(),
        };
        let mut parts = trimmed.split('|');
        let a: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(malformed)?;
        let b: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(malformed)?;
        let code: i8 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(malformed)?;
        if a == b {
            return Err(malformed());
        }
        match code {
            -1 => rels.insert_c2p(Asn(b), Asn(a)), // a is the provider
            0 => rels.insert_p2p(Asn(a), Asn(b)),
            2 => rels.insert_s2s(Asn(a), Asn(b)),
            _ => return Err(malformed()),
        }
    }
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelationshipMap {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(10), Asn(1)); // 1 is provider
        r.insert_c2p(Asn(1), Asn(99)); // 99 is provider, tests AP2cB path
        r.insert_p2p(Asn(1), Asn(2));
        r.insert_s2s(Asn(5), Asn(6));
        r
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let mut buf = Vec::new();
        let n = write_as_rel(&r, &mut buf).unwrap();
        assert_eq!(n, 4);
        let back = read_as_rel(&buf[..]).unwrap();
        assert!(back.is_c2p(Asn(10), Asn(1)));
        assert!(back.is_c2p(Asn(1), Asn(99)));
        assert!(back.is_p2p(Asn(1), Asn(2)));
        assert_eq!(
            back.get(Asn(5), Asn(6)).map(|x| x.kind()),
            Some(RelationshipKind::S2s)
        );
        assert_eq!(back.len(), r.len());
    }

    #[test]
    fn provider_is_first_on_c2p_lines() {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(64000), Asn(3356));
        let mut buf = Vec::new();
        write_as_rel(&r, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3356|64000|-1"), "{text}");
    }

    #[test]
    fn output_is_sorted_and_commented() {
        let mut buf = Vec::new();
        write_as_rel(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('#'));
        // Numerically sorted by (first ASN, second ASN).
        let data: Vec<(u32, u32)> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| {
                let mut it = l.split('|');
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        let mut sorted = data.clone();
        sorted.sort();
        assert_eq!(data, sorted);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1|2|0\n# trailing\n";
        let r = read_as_rel(text.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.is_p2p(Asn(1), Asn(2)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["1|2", "1|2|9", "x|2|0", "1|1|0", "1|2|0|extra-is-fine"] {
            let res = read_as_rel(bad.as_bytes());
            if bad == "1|2|0|extra-is-fine" {
                // Extra fields are tolerated (serial-2 carries a source
                // column); the first three must parse.
                assert!(res.is_ok(), "{bad}");
            } else {
                assert!(matches!(res, Err(AsRelError::Malformed { .. })), "{bad}");
            }
        }
    }
}
