//! Valley-free checking.
//!
//! Under the Gao-Rexford model, every legitimate AS path read from the
//! vantage point toward the origin has the shape *uphill\* peer? downhill\**
//! (sibling hops are transparent). A path that violates this against a
//! relationship assignment indicates either a route leak or — when the
//! assignment is an inference — an inference error. The checker is used
//! by the simulator's tests, the pipeline's audit, and downstream
//! consumers who want to grade paths against an inference.

use crate::par;
use crate::patharena::PathArena;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};

/// The verdict for one path against one relationship assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValleyVerdict {
    /// The path conforms to valley-free export rules.
    ValleyFree,
    /// A hop used a link the assignment does not classify.
    UnknownLink {
        /// Index of the offending hop (link from `i` to `i+1`).
        position: usize,
    },
    /// The path climbs (c2p) after having descended or peered.
    AscentAfterDescent {
        /// Index of the offending hop.
        position: usize,
    },
    /// The path crosses more than one peering link.
    SecondPeering {
        /// Index of the offending hop.
        position: usize,
    },
}

/// Check one path (VP first, origin last) against a relationship map.
///
/// ```
/// use asrank_core::valley::{check_valley_free, ValleyVerdict};
/// use asrank_types::{AsPath, Asn, RelationshipMap};
///
/// let mut rels = RelationshipMap::new();
/// rels.insert_c2p(Asn(10), Asn(1));
/// rels.insert_p2p(Asn(1), Asn(2));
/// rels.insert_c2p(Asn(20), Asn(2));
///
/// // VP 10 → provider 1 → peer 2 → customer 20: valley-free.
/// let ok = AsPath::from_u32s([10, 1, 2, 20]);
/// assert_eq!(check_valley_free(&ok, &rels), ValleyVerdict::ValleyFree);
///
/// // 1 → 2 (peer) → 20 (descend) → … climbing again would be a valley:
/// let leak = AsPath::from_u32s([2, 1, 10]); // wait — this one is fine too
/// assert_eq!(check_valley_free(&leak, &rels), ValleyVerdict::ValleyFree);
///
/// // 20 → 2 → 1 → 10: up to 2? no — 2 is 20's provider (up), 2–1 peer,
/// // 1–10 down: valley-free. A genuine valley needs up after down:
/// let valley = AsPath::from_u32s([10, 1, 2, 20, 2]);
/// assert_ne!(check_valley_free(&valley, &rels), ValleyVerdict::ValleyFree);
/// ```
pub fn check_valley_free(path: &AsPath, rels: &RelationshipMap) -> ValleyVerdict {
    // Phase 0: ascending. Phase 1: after the peak (peered or descended).
    let mut phase = 0u8;
    let mut peered = false;
    let hops = &path.compress_prepending().0;
    for (i, w) in hops.windows(2).enumerate() {
        let Some(orientation) = rels.orientation(w[0], w[1]) else {
            return ValleyVerdict::UnknownLink { position: i };
        };
        match orientation {
            Orientation::Sibling => {} // transparent
            Orientation::Provider => {
                // w[1] is w[0]'s provider: ascending.
                if phase == 1 {
                    return ValleyVerdict::AscentAfterDescent { position: i };
                }
            }
            Orientation::Peer => {
                if peered {
                    return ValleyVerdict::SecondPeering { position: i };
                }
                if phase == 1 {
                    return ValleyVerdict::AscentAfterDescent { position: i };
                }
                peered = true;
                phase = 1;
            }
            Orientation::Customer => {
                phase = 1;
            }
        }
    }
    ValleyVerdict::ValleyFree
}

/// Aggregated valley grades over every distinct path of a [`PathArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValleyStats {
    /// Distinct paths graded.
    pub total: usize,
    /// Paths crossing at least one link the assignment does not classify.
    pub unknown: usize,
    /// Paths violating valley-free export (ascent-after-descent or a
    /// second peering).
    pub valleys: usize,
    /// First `(path index, hop)` crossing an unknown link, in arena order.
    pub first_unknown: Option<(usize, usize)>,
    /// First `(path index, hop)` violating the valley rule, in arena order.
    pub first_valley: Option<(usize, usize)>,
}

/// Grade every distinct path of the arena against `rels` in one
/// parallel sweep. Worker shards grade contiguous path ranges and the
/// per-shard stats merge in shard order, so the totals *and* the
/// first-offender positions are identical for every thread count.
/// Arena paths are prepending-free by construction (the sanitizer
/// compresses before the arena dedups), so no recompression happens.
pub fn grade_arena(arena: &PathArena, rels: &RelationshipMap, par_cfg: Parallelism) -> ValleyStats {
    let interner = arena.interner();
    let chunked = par::map_ranges(par_cfg, 64, arena.len(), |range| {
        let mut s = ValleyStats::default();
        for p in range {
            s.total += 1;
            match check_valley_ids(arena.path(p), interner, rels) {
                ValleyVerdict::ValleyFree => {}
                ValleyVerdict::UnknownLink { position } => {
                    s.unknown += 1;
                    if s.first_unknown.is_none() {
                        s.first_unknown = Some((p, position));
                    }
                }
                ValleyVerdict::AscentAfterDescent { position }
                | ValleyVerdict::SecondPeering { position } => {
                    s.valleys += 1;
                    if s.first_valley.is_none() {
                        s.first_valley = Some((p, position));
                    }
                }
            }
        }
        s
    });
    let mut out = ValleyStats::default();
    for s in chunked {
        out.total += s.total;
        out.unknown += s.unknown;
        out.valleys += s.valleys;
        if out.first_unknown.is_none() {
            out.first_unknown = s.first_unknown;
        }
        if out.first_valley.is_none() {
            out.first_valley = s.first_valley;
        }
    }
    out
}

/// [`check_valley_free`] over dense-id hops (already prepending-free).
fn check_valley_ids(hops: &[u32], interner: &AsnInterner, rels: &RelationshipMap) -> ValleyVerdict {
    let mut phase = 0u8;
    let mut peered = false;
    for (i, w) in hops.windows(2).enumerate() {
        let (x, y) = (interner.resolve(w[0]), interner.resolve(w[1]));
        let Some(orientation) = rels.orientation(x, y) else {
            return ValleyVerdict::UnknownLink { position: i };
        };
        match orientation {
            Orientation::Sibling => {} // transparent
            Orientation::Provider => {
                if phase == 1 {
                    return ValleyVerdict::AscentAfterDescent { position: i };
                }
            }
            Orientation::Peer => {
                if peered {
                    return ValleyVerdict::SecondPeering { position: i };
                }
                if phase == 1 {
                    return ValleyVerdict::AscentAfterDescent { position: i };
                }
                peered = true;
                phase = 1;
            }
            Orientation::Customer => {
                phase = 1;
            }
        }
    }
    ValleyVerdict::ValleyFree
}

/// Fraction of paths in a set that are valley-free under `rels`
/// (unknown-link paths count as violations).
pub fn valley_free_fraction<'a, I>(paths: I, rels: &RelationshipMap) -> f64
where
    I: IntoIterator<Item = &'a AsPath>,
{
    let (mut ok, mut total) = (0usize, 0usize);
    for p in paths {
        total += 1;
        if check_valley_free(p, rels) == ValleyVerdict::ValleyFree {
            ok += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        ok as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels() -> RelationshipMap {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(10), Asn(1));
        r.insert_c2p(Asn(20), Asn(2));
        r.insert_p2p(Asn(1), Asn(2));
        r.insert_c2p(Asn(100), Asn(10));
        r.insert_s2s(Asn(10), Asn(11));
        r
    }

    #[test]
    fn classic_shapes() {
        let r = rels();
        // up, peer, down.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 10, 1, 2, 20]), &r),
            ValleyVerdict::ValleyFree
        );
        // pure descent.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([1, 10, 100]), &r),
            ValleyVerdict::ValleyFree
        );
        // pure ascent.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 10, 1]), &r),
            ValleyVerdict::ValleyFree
        );
    }

    #[test]
    fn violations_detected() {
        let r = rels();
        // Descend then ascend: 1 → 10 (down) → 1? loop; use 2 → 20 → ...
        // build: 1 → 10 → 100 is down;  100 has no further link up other
        // than 10. Use peer-after-descent: 1 → 10 (down), 10 → 11 sibling
        // (ok), then 11 has no links. Simplest: down then up on same pair
        // family: [2, 20] down? 20 is 2's customer → down; then 20 has no
        // other links. Add one:
        let mut r2 = r.clone();
        r2.insert_c2p(Asn(20), Asn(3));
        let verdict = check_valley_free(&AsPath::from_u32s([2, 20, 3]), &r2);
        assert_eq!(verdict, ValleyVerdict::AscentAfterDescent { position: 1 });

        // Two peering links.
        let mut r3 = r.clone();
        r3.insert_p2p(Asn(2), Asn(3));
        let verdict = check_valley_free(&AsPath::from_u32s([1, 2, 3]), &r3);
        assert_eq!(verdict, ValleyVerdict::SecondPeering { position: 1 });

        // Unknown link.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([1, 999]), &r),
            ValleyVerdict::UnknownLink { position: 0 }
        );
    }

    #[test]
    fn siblings_are_transparent() {
        let r = rels();
        // descend 1 → 10, sibling 10 → 11: fine in phase 1.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([1, 10, 11]), &r),
            ValleyVerdict::ValleyFree
        );
    }

    #[test]
    fn prepending_ignored() {
        let r = rels();
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 10, 10, 1]), &r),
            ValleyVerdict::ValleyFree
        );
    }

    #[test]
    fn degenerate_lengths_are_valley_free() {
        let r = rels();
        // Length-1 (origin only) and empty paths have no links to grade.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100]), &r),
            ValleyVerdict::ValleyFree
        );
        assert_eq!(
            check_valley_free(&AsPath(Vec::new()), &r),
            ValleyVerdict::ValleyFree
        );
        // Length-2 paths grade the single link on its own.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 10]), &r),
            ValleyVerdict::ValleyFree
        );
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([1, 2]), &r),
            ValleyVerdict::ValleyFree
        );
        // A length-1 path of full prepending compresses to length 1.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 100, 100]), &r),
            ValleyVerdict::ValleyFree
        );
    }

    #[test]
    fn poisoned_paths_grade_on_link_shape_only() {
        // Loop poisoning (an AS appearing twice, non-adjacent) is the
        // sanitizer's job to remove; the valley checker only grades link
        // orientations. A poisoned path that climbs back up after
        // descending is still flagged as a valley…
        let r = rels();
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([1, 10, 1]), &r),
            ValleyVerdict::AscentAfterDescent { position: 1 }
        );
        // …while a looped path whose links are all legitimate passes,
        // documenting that loop detection must happen upstream.
        assert_eq!(
            check_valley_free(&AsPath::from_u32s([100, 10, 11, 10]), &r),
            ValleyVerdict::ValleyFree
        );
    }

    #[test]
    fn arena_grading_matches_per_path_checks() {
        use crate::sanitize::{sanitize, SanitizeConfig};
        let mut r = rels();
        r.insert_p2p(Asn(2), Asn(3));
        // A mix: valley-free, unknown-link, and a second-peering valley.
        let raw: Vec<&[u32]> = vec![
            &[100, 10, 1, 2, 20],
            &[1, 999],
            &[100, 10, 1],
            &[1, 2, 3],
        ];
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        let clean = sanitize(&ps, &SanitizeConfig::default());
        let arena = PathArena::build(&clean);

        let stats = grade_arena(&arena, &r, Parallelism::sequential());
        assert_eq!(stats, grade_arena(&arena, &r, Parallelism::threads(4)));

        let mut expect = ValleyStats::default();
        for (p, path) in arena.distinct_aspaths().iter().enumerate() {
            expect.total += 1;
            match check_valley_free(path, &r) {
                ValleyVerdict::ValleyFree => {}
                ValleyVerdict::UnknownLink { position } => {
                    expect.unknown += 1;
                    if expect.first_unknown.is_none() {
                        expect.first_unknown = Some((p, position));
                    }
                }
                ValleyVerdict::AscentAfterDescent { position }
                | ValleyVerdict::SecondPeering { position } => {
                    expect.valleys += 1;
                    if expect.first_valley.is_none() {
                        expect.first_valley = Some((p, position));
                    }
                }
            }
        }
        assert_eq!(stats, expect);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.unknown, 1);
        assert_eq!(stats.valleys, 1);
    }

    #[test]
    fn fraction() {
        let r = rels();
        let good = AsPath::from_u32s([100, 10, 1]);
        let bad = AsPath::from_u32s([1, 999]);
        let f = valley_free_fraction([&good, &bad], &r);
        assert!((f - 0.5).abs() < 1e-12);
        assert!((valley_free_fraction(std::iter::empty(), &r) - 1.0).abs() < 1e-12);
    }
}
