//! # asrank-core
//!
//! The primary contribution of *"AS Relationships, Customer Cones, and
//! Validation"* (IMC 2013): CAIDA's **ASRank** algorithm for inferring AS
//! business relationships from public BGP paths, the three **customer
//! cone** definitions, and AS ranking by cone size.
//!
//! ## Pipeline
//!
//! [`pipeline::infer`] drives the multi-step pipeline over a set of
//! observed AS paths ([`asrank_types::PathSet`]):
//!
//! | step | what | module |
//! |------|------|--------|
//! | S1  | sanitize paths (loops, reserved ASNs, prepending, IXP ASNs) | [`mod@sanitize`] |
//! | S2  | rank ASes by transit degree | [`degree`] |
//! | S3  | infer the Tier-1 clique (Bron-Kerbosch over top candidates) | [`clique`] |
//! | S4  | discard poisoned paths (non-clique AS between clique ASes) | [`pipeline`] |
//! | S5  | top-down c2p inference in rank order | [`pipeline`] |
//! | S6  | VP-side c2p inference from table-share evidence | [`pipeline`] |
//! | S7  | repair provider-smaller-than-customer anomalies | [`pipeline`] |
//! | S8  | stub-to-clique links are c2p | [`pipeline`] |
//! | S9  | providers for otherwise provider-less transit ASes | [`pipeline`] |
//! | S10 | everything else observed is p2p | [`pipeline`] |
//! | S11 | consistency audit (cycles, conflicts) | [`pipeline`] |
//!
//! ## Customer cones
//!
//! [`cone`] implements the paper's three cone definitions — recursive,
//! BGP-observed, and provider/peer-observed — each measured in ASes,
//! prefixes, and address space; [`rank`] orders ASes by cone size
//! (the "AS Rank" of the title).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod centrality;
pub mod clique;
pub mod cone;
pub mod csr;
pub mod degree;
pub mod delta;
pub mod diff;
pub mod engine;
pub mod io;
pub mod par;
pub mod patharena;
pub mod persist;
pub mod pipeline;
pub mod rank;
pub mod sanitize;
pub mod scc;
pub mod stability;
pub mod valley;
pub mod visibility;

pub use centrality::{transit_centrality, Centrality};
pub use clique::{infer_clique, CliqueConfig};
pub use cone::{ConeSets, ConeSize, CustomerCones};
pub use csr::{Adjacency, Csr};
pub use degree::DegreeTable;
pub use delta::{DeltaOutcome, DeltaSession};
pub use diff::{diff_relationships, ChangedLink, RelDiff};
pub use engine::{stage_disk_key, Artifact, Snapshot, StageReport, StageStats};
pub use io::{read_as_rel, write_as_rel, AsRelError};
pub use patharena::PathArena;
pub use persist::{
    decode_artifact, encode_artifact, pathset_fingerprint, process_cache_dir,
    set_process_cache_dir, CacheDir,
};
pub use persist::view::{
    pathset_fingerprint_from_frame, ConeLayout, ConeView, InferenceLayout, InferenceView,
};
pub use pipeline::{infer, infer_monolithic, try_infer, Inference, InferenceConfig, InferenceReport};
pub use rank::{rank_ases, RankedAs};
pub use sanitize::{sanitize, SanitizeConfig, SanitizeReport, SanitizedPaths};
pub use stability::{jackknife, LinkStability, StabilityReport};
pub use valley::{check_valley_free, grade_arena, valley_free_fraction, ValleyStats, ValleyVerdict};
pub use visibility::{LinkVisibility, VisibilityTable};
