//! AS Rank — ordering ASes by customer cone size.
//!
//! The paper's public artifact (as-rank.caida.org) orders ASes by the
//! size of their customer cone: the AS whose cone contains the most ASes
//! is rank 1. Ties break by transit degree, then by lower ASN, matching
//! the published ranking's behavior of preferring the structurally larger
//! network.

use crate::cone::{ConeSize, CustomerCones};
use crate::degree::DegreeTable;
use asrank_types::Asn;
use serde::{Deserialize, Serialize};

/// One row of the AS ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedAs {
    /// 1-based rank (1 = largest cone).
    pub rank: usize,
    /// The AS.
    pub asn: Asn,
    /// Its customer cone size.
    pub cone: ConeSize,
    /// Its transit degree.
    pub transit_degree: usize,
}

/// Rank every AS by customer cone size (descending), tie-breaking by
/// transit degree (descending) then ASN (ascending).
pub fn rank_ases(cones: &CustomerCones, degrees: &DegreeTable) -> Vec<RankedAs> {
    let mut rows: Vec<RankedAs> = cones
        .iter_sizes()
        .map(|(asn, cone)| RankedAs {
            rank: 0,
            asn,
            cone,
            transit_degree: degrees.transit_degree(asn),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.cone
            .ases
            .cmp(&a.cone.ases)
            .then_with(|| b.transit_degree.cmp(&a.transit_degree))
            .then_with(|| a.asn.cmp(&b.asn))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    rows
}

/// Spearman rank correlation between two orderings of the same ASes.
///
/// Used by the transit-degree-vs-cone experiment: the paper observes the
/// two are strongly but not perfectly correlated.
pub fn spearman(xs: &[(Asn, f64)], ys: &[(Asn, f64)]) -> Option<f64> {
    use std::collections::HashMap;
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rank_map = |vals: &[(Asn, f64)]| -> HashMap<Asn, f64> {
        let mut sorted: Vec<&(Asn, f64)> = vals.iter().collect();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        // Average ranks for ties.
        let mut out = HashMap::new();
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1].1 == sorted[i].1 {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for item in &sorted[i..=j] {
                out.insert(item.0, avg);
            }
            i = j + 1;
        }
        out
    };
    let rx = rank_map(xs);
    let ry = rank_map(ys);
    let n = xs.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for (asn, _) in xs {
        let a = rx[asn] - mean;
        let b = *ry.get(asn)? - mean;
        cov += a * b;
        vx += a * a;
        vy += b * b;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrank_types::RelationshipMap;

    fn setup() -> (CustomerCones, DegreeTable) {
        let mut r = RelationshipMap::new();
        r.insert_c2p(Asn(10), Asn(1));
        r.insert_c2p(Asn(11), Asn(1));
        r.insert_c2p(Asn(20), Asn(2));
        let cones = CustomerCones::recursive(&r, None);
        (cones, DegreeTable::default())
    }

    #[test]
    fn ranks_by_cone_size() {
        let (cones, degrees) = setup();
        let rows = rank_ases(&cones, &degrees);
        assert_eq!(rows[0].asn, Asn(1));
        assert_eq!(rows[0].rank, 1);
        assert_eq!(rows[0].cone.ases, 3);
        assert_eq!(rows[1].asn, Asn(2));
        // Stub ties (cone size 1) broken by ASN.
        let stub_order: Vec<Asn> = rows[2..].iter().map(|r| r.asn).collect();
        assert_eq!(stub_order, vec![Asn(10), Asn(11), Asn(20)]);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let xs: Vec<(Asn, f64)> = (1..=5).map(|i| (Asn(i), i as f64)).collect();
        let ys = xs.clone();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-9);
        let inv: Vec<(Asn, f64)> = (1..=5).map(|i| (Asn(i), -(i as f64))).collect();
        assert!((spearman(&xs, &inv).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate() {
        let xs: Vec<(Asn, f64)> = vec![(Asn(1), 1.0), (Asn(2), 1.0), (Asn(3), 2.0)];
        let ys: Vec<(Asn, f64)> = vec![(Asn(1), 5.0), (Asn(2), 5.0), (Asn(3), 9.0)];
        let rho = spearman(&xs, &ys).unwrap();
        assert!(
            (rho - 1.0).abs() < 1e-9,
            "tied pairs, same order: rho={rho}"
        );
        // All-equal values have zero variance → undefined.
        let flat: Vec<(Asn, f64)> = vec![(Asn(1), 1.0), (Asn(2), 1.0)];
        assert!(spearman(&flat, &flat).is_none());
        assert!(spearman(&xs[..1], &ys[..1]).is_none());
    }
}
