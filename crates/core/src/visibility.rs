//! Per-link visibility analysis.
//!
//! The paper's error analysis turns on *visibility*: a link seen from a
//! single vantage point — typically near the path peaks or at the far
//! edge — carries far weaker evidence than one crossed by hundreds of
//! VPs' paths. This module computes, for every observed link, how many
//! VPs observed it, how many distinct paths crossed it, and whether it
//! was ever observed in a descending position (the evidence the S5
//! top-down step consumes).

use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Visibility statistics for one link.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkVisibility {
    /// Distinct VPs whose paths crossed the link.
    pub vps: usize,
    /// Distinct paths crossing the link.
    pub paths: usize,
    /// True when the link was observed at the very first hop of a path
    /// (VP-side links, classified by S6 rather than S5).
    pub vp_adjacent: bool,
}

/// Visibility table over all observed links.
#[derive(Debug, Clone, Default)]
pub struct VisibilityTable {
    links: HashMap<AsLink, LinkVisibility>,
}

impl VisibilityTable {
    /// Compute visibility over a sanitized dataset.
    pub fn compute(sanitized: &SanitizedPaths) -> Self {
        let mut vps: HashMap<AsLink, HashSet<Asn>> = HashMap::new();
        let mut paths: HashMap<AsLink, HashSet<&AsPath>> = HashMap::new();
        let mut vp_adjacent: HashSet<AsLink> = HashSet::new();
        for s in &sanitized.samples {
            for (i, (a, b)) in s.path.links().enumerate() {
                let link = AsLink::new(a, b);
                vps.entry(link).or_default().insert(s.vp);
                paths.entry(link).or_default().insert(&s.path);
                if i == 0 {
                    vp_adjacent.insert(link);
                }
            }
        }
        let links = vps
            .into_iter()
            .map(|(link, v)| {
                (
                    link,
                    LinkVisibility {
                        vps: v.len(),
                        paths: paths.get(&link).map(HashSet::len).unwrap_or(0),
                        vp_adjacent: vp_adjacent.contains(&link),
                    },
                )
            })
            .collect();
        VisibilityTable { links }
    }

    /// Visibility of one link, if observed.
    pub fn get(&self, a: Asn, b: Asn) -> Option<&LinkVisibility> {
        self.links.get(&AsLink::new(a, b))
    }

    /// Number of observed links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (AsLink, &LinkVisibility)> {
        self.links.iter().map(|(&l, v)| (l, v))
    }

    /// Links observed by at most `k` VPs — the weak-evidence tail where
    /// the paper expects most inference errors to live.
    pub fn weakly_observed(&self, k: usize) -> Vec<AsLink> {
        let mut v: Vec<AsLink> = self
            .links
            .iter()
            .filter(|(_, vis)| vis.vps <= k)
            .map(|(&l, _)| l)
            .collect();
        v.sort();
        v
    }

    /// Histogram of links by VP-count buckets `(1, 2-5, 6-20, >20)`.
    pub fn vp_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for vis in self.links.values() {
            let idx = match vis.vps {
                0 | 1 => 0,
                2..=5 => 1,
                6..=20 => 2,
                _ => 3,
            };
            h[idx] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};

    fn sanitized(raw: &[(u32, &[u32])]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, (vp, p))| PathSample {
                vp: Asn(*vp),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn counts_vps_and_paths() {
        let s = sanitized(&[(9, &[9, 1, 2]), (9, &[9, 1, 3]), (8, &[8, 1, 2])]);
        let t = VisibilityTable::compute(&s);
        let v12 = t.get(Asn(1), Asn(2)).unwrap();
        assert_eq!(v12.vps, 2);
        assert_eq!(v12.paths, 2);
        assert!(!v12.vp_adjacent);
        let v91 = t.get(Asn(9), Asn(1)).unwrap();
        assert_eq!(v91.vps, 1);
        assert!(v91.vp_adjacent);
        assert!(t.get(Asn(1), Asn(9)).is_some(), "order-insensitive lookup");
        assert!(t.get(Asn(5), Asn(6)).is_none());
    }

    #[test]
    fn weak_tail_and_histogram() {
        let s = sanitized(&[(9, &[9, 1, 2]), (8, &[8, 1, 2]), (7, &[7, 1, 2])]);
        let t = VisibilityTable::compute(&s);
        // 1-2 seen by 3 VPs; each VP link by 1.
        let weak = t.weakly_observed(1);
        assert_eq!(weak.len(), 3);
        assert!(!weak.contains(&AsLink::new(Asn(1), Asn(2))));
        let h = t.vp_histogram();
        assert_eq!(h[0], 3);
        assert_eq!(h[1], 1);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn empty_input() {
        let t = VisibilityTable::compute(&SanitizedPaths::default());
        assert!(t.is_empty());
        assert_eq!(t.vp_histogram(), [0, 0, 0, 0]);
    }
}
