//! The staged inference engine: a memoized DAG over the paper's pipeline.
//!
//! The ASRank algorithm is naturally a DAG of stages — sanitize (S1),
//! transit-degree rank (S2), clique (S3), the relationship steps S4–S10,
//! the S11 cycle audit, and the three customer-cone flavors — but the
//! original `pipeline::infer` ran it as one monolithic batch call that
//! every consumer repeated from scratch. This module splits the pipeline
//! into declared [`StageSpec`] nodes executed by a [`Snapshot`]: one
//! dataset, one [`ArtifactStore`] memoizing every stage output under a
//! config fingerprint, so a second query over the same snapshot pulls
//! artifacts instead of recomputing them.
//!
//! **Fingerprint rules.** Each stage's cache key is
//! `fp(stage) = mix(stage name, own config subset, fp(inputs)...)`:
//!
//! * only the config fields a stage actually reads enter its subset hash
//!   (S1 hashes the IXP list, S3 the clique parameters, S6 the VP
//!   threshold + its ablation flag, S7 the flip ratio + its flag, …);
//! * input fingerprints chain, so editing the S7 ratio invalidates S7
//!   and everything downstream while S1–S6 artifacts keep their keys —
//!   incremental recomputation falls out of the keying, with no
//!   explicit invalidation walk;
//! * [`Parallelism`] is deliberately **excluded** from every subset:
//!   results are identical for every thread budget, so a thread-count
//!   change must (and does) hit the cache;
//! * the optional per-AS prefix table is snapshot-level environment,
//!   hashed once (sorted) into the cone stages only.
//!
//! Ablation switches are stage-level skips: an ablated stage returns its
//! input relationship state unchanged, and because the flag is part of
//! the stage's subset hash, toggling it invalidates exactly that stage
//! and its downstream.
//!
//! Every stage run is instrumented (wall time, cache hits/misses, item
//! count, approximate artifact bytes) and exposed as a [`StageReport`]
//! with a deterministic JSON rendering for the bench tooling.
//!
//! Failures surface as [`EngineError`] values naming the stage — the
//! engine path never panics on malformed input.

use crate::clique::infer_clique;
use crate::cone::CustomerCones;
use crate::degree::DegreeTable;
use crate::patharena::PathArena;
use crate::pipeline::{steps, Inference, InferenceConfig, InferenceReport};
use crate::sanitize::{sanitize_with, SanitizedPaths};
use asrank_types::prelude::*;
use asrank_types::{EngineError, FxHashMap, FxHasher};
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::sync::Arc;
use std::time::Instant;

/// S4 output: the poison-filter verdict over the arena's distinct paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeptPaths {
    /// `kept[p]` is false when distinct path `p` was discarded as
    /// poisoned. Always `arena.len()` entries.
    pub kept: Vec<bool>,
    /// Number of discarded paths (the S4 report counter).
    pub discarded: usize,
}

/// Intermediate relationship state threaded through stages S5–S10: the
/// working map plus the per-step counters accumulated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct StepState {
    /// Relationship assignments inferred so far.
    pub rels: RelationshipMap,
    /// Step counters accumulated so far (sanitize totals are filled in
    /// by the S11 assembly stage).
    pub report: InferenceReport,
}

/// A memoized stage output. Payloads are `Arc`-shared: cloning an
/// artifact (out of the store, or into a stage's input list) is a
/// refcount bump, never a data copy.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// S1 output: cleaned samples + sanitize counters.
    Sanitized(Arc<SanitizedPaths>),
    /// S2 output: transit/node degrees and the visiting order.
    Degrees(Arc<DegreeTable>),
    /// S3 output: the Tier-1 clique, sorted by ASN.
    Clique(Arc<Vec<Asn>>),
    /// The interned path arena shared by S4–S10 and the observed cones.
    Arena(Arc<PathArena>),
    /// S4 output: kept-mask over the arena's distinct paths.
    Kept(Arc<KeptPaths>),
    /// Distinct observed links of the kept paths (shared by S8/S10).
    Links(Arc<Vec<AsLink>>),
    /// Relationship state after one of S5–S10.
    Steps(Arc<StepState>),
    /// S11 output: the assembled [`Inference`].
    Inference(Arc<Inference>),
    /// One customer-cone flavor.
    Cone(Arc<CustomerCones>),
}

impl Artifact {
    /// Short kind name used in error messages and the stage report.
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Sanitized(_) => "sanitized",
            Artifact::Degrees(_) => "degrees",
            Artifact::Clique(_) => "clique",
            Artifact::Arena(_) => "arena",
            Artifact::Kept(_) => "kept",
            Artifact::Links(_) => "links",
            Artifact::Steps(_) => "steps",
            Artifact::Inference(_) => "inference",
            Artifact::Cone(_) => "cone",
        }
    }

    /// Number of primary items in the artifact (paths, ASes, links, …) —
    /// the unit the stage report counts.
    pub fn items(&self) -> u64 {
        match self {
            Artifact::Sanitized(s) => s.samples.len() as u64,
            Artifact::Degrees(d) => d.len() as u64,
            Artifact::Clique(c) => c.len() as u64,
            Artifact::Arena(a) => a.len() as u64,
            Artifact::Kept(k) => k.kept.iter().filter(|&&b| b).count() as u64,
            Artifact::Links(l) => l.len() as u64,
            Artifact::Steps(s) => s.rels.len() as u64,
            Artifact::Inference(i) => i.relationships.len() as u64,
            Artifact::Cone(c) => c.len() as u64,
        }
    }

    /// Approximate heap size of the artifact in bytes, for the stage
    /// report. This is an estimate from item counts and fixed per-item
    /// costs, not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Artifact::Sanitized(s) => {
                let hops: usize = s.samples.iter().map(|p| p.path.len()).sum();
                (hops * 4 + s.samples.len() * 24) as u64
            }
            Artifact::Degrees(d) => (d.len() * 40) as u64,
            Artifact::Clique(c) => (c.len() * 4) as u64,
            Artifact::Arena(a) => (a.total_hops() * 8 + a.len() * 8) as u64,
            Artifact::Kept(k) => k.kept.len() as u64,
            Artifact::Links(l) => (l.len() * 8) as u64,
            Artifact::Steps(s) => (s.rels.len() * 16) as u64,
            Artifact::Inference(i) => {
                (i.relationships.len() * 16 + i.degrees.len() * 40) as u64
            }
            Artifact::Cone(c) => (c.len() * 24) as u64,
        }
    }
}

/// Per-stage instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage body actually executed.
    pub runs: u64,
    /// Materialization requests answered from the store.
    pub hits: u64,
    /// Materialization requests that required running the stage.
    pub misses: u64,
    /// Total wall time spent inside the stage body, nanoseconds.
    pub wall_ns: u64,
    /// Item count of the most recent output (see [`Artifact::items`]).
    pub items: u64,
    /// Approximate bytes of the most recent output.
    pub bytes: u64,
    /// Materialization requests answered from the persistent cache
    /// (in-memory miss, `--cache-dir` frame decoded instead of running
    /// the stage body).
    pub disk_hits: u64,
    /// Stage outputs spilled to the persistent cache.
    pub disk_stores: u64,
    /// Delta runs that reused the previous emission's artifact because
    /// no input aspect of this stage was dirty.
    pub delta_skipped: u64,
    /// Delta runs that re-executed this stage (body or incremental
    /// provider) because an input aspect was dirty.
    pub delta_recomputed: u64,
}

/// Immutable per-snapshot environment handed to stage bodies.
struct Env<'a> {
    paths: &'a PathSet,
    cfg: InferenceConfig,
    prefixes: Option<HashMap<Asn, Vec<Ipv4Prefix>>>,
    /// Fingerprint of `prefixes`, mixed into the cone stages only.
    prefix_fp: u64,
}

/// The fingerprint-visible slice of the environment: exactly what a
/// stage's config-subset hash may read. Deliberately **path-free** —
/// cache keys must be computable from configuration alone, so a serving
/// process can resolve the exact on-disk frame for a stage without ever
/// materializing the `PathSet` (see [`stage_disk_key`]).
struct FpCtx<'c> {
    cfg: &'c InferenceConfig,
    prefix_fp: u64,
}

impl<'a> Env<'a> {
    fn fp_ctx(&self) -> FpCtx<'_> {
        FpCtx {
            cfg: &self.cfg,
            prefix_fp: self.prefix_fp,
        }
    }
}

/// One node of the stage DAG: a name, the stages it consumes, the config
/// subset entering its fingerprint, and a pure body.
struct StageSpec {
    name: &'static str,
    /// Indices into [`STAGES`] of the artifacts this stage consumes, in
    /// the order the body expects them.
    inputs: &'static [usize],
    /// Hash of the config subset this stage reads (0 when it reads none).
    cfg_fp: fn(&FpCtx) -> u64,
    /// The stage body. Pure: output depends only on `env` and `inputs`.
    run: fn(&Env, &[Artifact]) -> Result<Artifact, EngineError>,
}

// Stage indices. Order is topological; `STAGES[i].inputs` only contains
// indices < i.
const S1_SANITIZE: usize = 0;
const S2_DEGREES: usize = 1;
const S3_CLIQUE: usize = 2;
const PATH_ARENA: usize = 3;
const S4_POISON: usize = 4;
const OBSERVED_LINKS: usize = 5;
const S5_TOPDOWN: usize = 6;
const S6_VP_PROVIDERS: usize = 7;
const S7_ANOMALY_REPAIR: usize = 8;
const S8_STUB_CLIQUE: usize = 9;
const S9_PROVIDERLESS: usize = 10;
const S10_P2P: usize = 11;
const S11_INFERENCE: usize = 12;
const CONE_RECURSIVE: usize = 13;
const CONE_BGP_OBSERVED: usize = 14;
const CONE_PROVIDER_PEER: usize = 15;

/// The stage DAG, in topological order.
static STAGES: &[StageSpec] = &[
    StageSpec {
        name: "s1_sanitize",
        inputs: &[],
        cfg_fp: fp_sanitize,
        run: run_sanitize,
    },
    StageSpec {
        name: "s2_degrees",
        inputs: &[S1_SANITIZE],
        cfg_fp: fp_none,
        run: run_degrees,
    },
    StageSpec {
        name: "s3_clique",
        inputs: &[S1_SANITIZE, S2_DEGREES],
        cfg_fp: fp_clique,
        run: run_clique,
    },
    StageSpec {
        name: "path_arena",
        inputs: &[S1_SANITIZE],
        cfg_fp: fp_none,
        run: run_arena,
    },
    StageSpec {
        name: "s4_poison",
        inputs: &[PATH_ARENA, S3_CLIQUE],
        cfg_fp: fp_poison,
        run: run_poison,
    },
    StageSpec {
        name: "observed_links",
        inputs: &[PATH_ARENA, S4_POISON],
        cfg_fp: fp_none,
        run: run_links,
    },
    StageSpec {
        name: "s5_topdown",
        inputs: &[PATH_ARENA, S4_POISON, S2_DEGREES, S3_CLIQUE],
        cfg_fp: fp_none,
        run: run_topdown,
    },
    StageSpec {
        name: "s6_vp_providers",
        inputs: &[S5_TOPDOWN, S1_SANITIZE, S2_DEGREES],
        cfg_fp: fp_vp,
        run: run_vp_providers,
    },
    StageSpec {
        name: "s7_anomaly_repair",
        inputs: &[S6_VP_PROVIDERS, S2_DEGREES],
        cfg_fp: fp_anomaly,
        run: run_anomaly_repair,
    },
    StageSpec {
        name: "s8_stub_clique",
        inputs: &[S7_ANOMALY_REPAIR, OBSERVED_LINKS, S2_DEGREES, S3_CLIQUE],
        cfg_fp: fp_stub,
        run: run_stub_clique,
    },
    StageSpec {
        name: "s9_providerless",
        inputs: &[S8_STUB_CLIQUE, PATH_ARENA, S4_POISON, S2_DEGREES, S3_CLIQUE],
        cfg_fp: fp_providerless,
        run: run_providerless,
    },
    StageSpec {
        name: "s10_p2p",
        inputs: &[S9_PROVIDERLESS, OBSERVED_LINKS],
        cfg_fp: fp_none,
        run: run_p2p,
    },
    StageSpec {
        name: "s11_inference",
        inputs: &[S10_P2P, S1_SANITIZE, S2_DEGREES, S3_CLIQUE],
        cfg_fp: fp_none,
        run: run_inference,
    },
    StageSpec {
        name: "cone_recursive",
        inputs: &[S11_INFERENCE],
        cfg_fp: fp_prefixes,
        run: run_cone_recursive,
    },
    StageSpec {
        name: "cone_bgp_observed",
        inputs: &[S11_INFERENCE, PATH_ARENA],
        cfg_fp: fp_prefixes,
        run: run_cone_bgp,
    },
    StageSpec {
        name: "cone_provider_peer",
        inputs: &[S11_INFERENCE, PATH_ARENA],
        cfg_fp: fp_prefixes,
        run: run_cone_provider_peer,
    },
];

// ---------------------------------------------------------------------
// Config-subset fingerprints. Parallelism never enters a fingerprint:
// results are identical for every thread budget.

fn fp_none(_ctx: &FpCtx) -> u64 {
    0
}

fn fp_sanitize(ctx: &FpCtx) -> u64 {
    let mut h = FxHasher::default();
    let mut ixps: Vec<Asn> = ctx.cfg.sanitize.ixp_asns.iter().copied().collect();
    ixps.sort_unstable();
    for a in ixps {
        h.write_u32(a.0);
    }
    h.finish()
}

fn fp_clique(ctx: &FpCtx) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.cfg.clique.candidates as u64);
    h.write_u8(u8::from(ctx.cfg.clique.require_seed));
    h.finish()
}

fn fp_poison(ctx: &FpCtx) -> u64 {
    u64::from(ctx.cfg.ablation.no_poison_filter)
}

fn fp_vp(ctx: &FpCtx) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.cfg.vp_provider_threshold.to_bits());
    h.write_u8(u8::from(ctx.cfg.ablation.no_vp_step));
    h.finish()
}

fn fp_anomaly(ctx: &FpCtx) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.cfg.degree_flip_ratio.to_bits());
    h.write_u8(u8::from(ctx.cfg.ablation.no_anomaly_repair));
    h.finish()
}

fn fp_stub(ctx: &FpCtx) -> u64 {
    u64::from(ctx.cfg.ablation.no_stub_clique)
}

fn fp_providerless(ctx: &FpCtx) -> u64 {
    u64::from(ctx.cfg.ablation.no_providerless)
}

fn fp_prefixes(ctx: &FpCtx) -> u64 {
    ctx.prefix_fp
}

/// Chained fingerprint of stage `idx` under a fingerprint context:
/// `mix(stage name, own config subset, fp(inputs)...)`. This is the one
/// definition both [`Snapshot`] and [`stage_disk_key`] use, so a key
/// computed without a dataset is bit-identical to the key the engine
/// writes under.
fn fingerprint_with(ctx: &FpCtx, idx: usize) -> u64 {
    let Some(spec) = STAGES.get(idx) else { return 0 };
    let mut h = FxHasher::default();
    h.write(spec.name.as_bytes());
    h.write_u64((spec.cfg_fp)(ctx));
    for &j in spec.inputs {
        h.write_u64(fingerprint_with(ctx, j));
    }
    h.finish()
}

fn mix_disk_key(content_fp: u64, fp: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(content_fp);
    h.write_u64(fp);
    h.finish()
}

/// The exact on-disk [`crate::persist::CacheDir`] key a snapshot uses
/// for `stage`, computed **without the dataset**: configuration, the
/// optional per-AS prefix table, and the dataset's content fingerprint
/// ([`crate::persist::pathset_fingerprint`], or its streaming twin
/// [`crate::persist::view::pathset_fingerprint_from_frame`]) fully
/// determine it. `None` for unknown stage names.
///
/// This is what lets `asrank serve` map cache frames directly: resolve
/// the RIB's content fingerprint from the ingest cache frame, then ask
/// for each stage's key — no `PathSet`, no engine run.
pub fn stage_disk_key(
    stage: &str,
    cfg: &InferenceConfig,
    prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>,
    content_fp: u64,
) -> Option<u64> {
    let idx = STAGES.iter().position(|s| s.name == stage)?;
    let ctx = FpCtx {
        cfg,
        prefix_fp: hash_prefixes(prefixes),
    };
    Some(mix_disk_key(content_fp, fingerprint_with(&ctx, idx)))
}

/// Hash the optional per-AS prefix table in sorted (deterministic) order.
fn hash_prefixes(prefixes: Option<&HashMap<Asn, Vec<Ipv4Prefix>>>) -> u64 {
    let Some(table) = prefixes else { return 1 };
    let mut h = FxHasher::default();
    let mut keys: Vec<Asn> = table.keys().copied().collect();
    keys.sort_unstable();
    for a in keys {
        h.write_u32(a.0);
        if let Some(list) = table.get(&a) {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            for p in sorted {
                h.write_u32(p.network());
                h.write_u8(p.len());
            }
        }
    }
    // Avoid colliding an empty table with the no-table case (hash 1) or
    // the no-config case (0).
    h.write_u8(2);
    h.finish()
}

// ---------------------------------------------------------------------
// Artifact downcast helpers: wiring bugs surface as EngineError, not as
// panics.

fn type_err(stage: &'static str, expected: &'static str, got: &Artifact) -> EngineError {
    EngineError::ArtifactType {
        stage: stage.to_string(),
        expected: expected.to_string(),
        got: got.kind().to_string(),
    }
}

fn want<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Artifact, EngineError> {
    inputs.get(i).ok_or_else(|| EngineError::StageFailed {
        stage: stage.to_string(),
        detail: format!("missing declared input #{i}"),
    })
}

fn as_sanitized<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<SanitizedPaths>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Sanitized(s) => Ok(s),
        other => Err(type_err(stage, "sanitized", other)),
    }
}

fn as_degrees<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<DegreeTable>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Degrees(d) => Ok(d),
        other => Err(type_err(stage, "degrees", other)),
    }
}

fn as_clique<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<Vec<Asn>>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Clique(c) => Ok(c),
        other => Err(type_err(stage, "clique", other)),
    }
}

fn as_arena<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<PathArena>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Arena(a) => Ok(a),
        other => Err(type_err(stage, "arena", other)),
    }
}

fn as_kept<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<KeptPaths>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Kept(k) => Ok(k),
        other => Err(type_err(stage, "kept", other)),
    }
}

fn as_links<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<Vec<AsLink>>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Links(l) => Ok(l),
        other => Err(type_err(stage, "links", other)),
    }
}

fn as_steps<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<StepState>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Steps(s) => Ok(s),
        other => Err(type_err(stage, "steps", other)),
    }
}

fn as_inference<'x>(
    inputs: &'x [Artifact],
    i: usize,
    stage: &'static str,
) -> Result<&'x Arc<Inference>, EngineError> {
    match want(inputs, i, stage)? {
        Artifact::Inference(inf) => Ok(inf),
        other => Err(type_err(stage, "inference", other)),
    }
}

// ---------------------------------------------------------------------
// Stage bodies. Together these replicate pipeline::infer_monolithic
// exactly (pinned by the engine-equivalence tests).

fn run_sanitize(env: &Env, _inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    Ok(Artifact::Sanitized(Arc::new(sanitize_with(
        env.paths,
        &env.cfg.sanitize,
        env.cfg.parallelism,
    ))))
}

fn run_degrees(_env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let sanitized = as_sanitized(inputs, 0, "s2_degrees")?;
    Ok(Artifact::Degrees(Arc::new(DegreeTable::compute(sanitized))))
}

fn run_clique(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let sanitized = as_sanitized(inputs, 0, "s3_clique")?;
    let degrees = as_degrees(inputs, 1, "s3_clique")?;
    Ok(Artifact::Clique(Arc::new(infer_clique(
        sanitized,
        degrees,
        &env.cfg.clique,
    ))))
}

fn run_arena(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let sanitized = as_sanitized(inputs, 0, "path_arena")?;
    Ok(Artifact::Arena(Arc::new(PathArena::build_with(
        sanitized,
        env.cfg.parallelism,
    ))))
}

/// Dense clique-membership mask over the arena's id space. Clique
/// members that appear in no path can never match a hop, so dropping
/// them from the mask is exact.
fn clique_mask_for(arena: &PathArena, clique: &[Asn]) -> Vec<bool> {
    let interner = arena.interner();
    let mut mask = vec![false; interner.len()];
    for &a in clique {
        if let Some(id) = interner.get(a) {
            mask[id as usize] = true;
        }
    }
    mask
}

fn run_poison(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let arena = as_arena(inputs, 0, "s4_poison")?;
    let clique = as_clique(inputs, 1, "s4_poison")?;
    let mut kept = vec![true; arena.len()];
    let mut discarded = 0usize;
    if !env.cfg.ablation.no_poison_filter {
        let clique_mask = clique_mask_for(arena, clique);
        for (p, keep) in kept.iter_mut().enumerate() {
            if steps::is_poisoned_ids(arena.path(p), &clique_mask) {
                *keep = false;
                discarded += 1;
            }
        }
    }
    Ok(Artifact::Kept(Arc::new(KeptPaths { kept, discarded })))
}

fn run_links(_env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let arena = as_arena(inputs, 0, "observed_links")?;
    let kept = as_kept(inputs, 1, "observed_links")?;
    Ok(Artifact::Links(Arc::new(steps::observed_links_arena(
        arena, &kept.kept,
    ))))
}

fn run_topdown(_env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let arena = as_arena(inputs, 0, "s5_topdown")?;
    let kept = as_kept(inputs, 1, "s5_topdown")?;
    let degrees = as_degrees(inputs, 2, "s5_topdown")?;
    let clique = as_clique(inputs, 3, "s5_topdown")?;

    let mut report = InferenceReport {
        discarded_poisoned: kept.discarded,
        ..Default::default()
    };
    let mut rels = RelationshipMap::new();
    // Clique links are p2p by construction.
    for (i, &a) in clique.iter().enumerate() {
        for &b in &clique[i + 1..] {
            rels.insert_p2p(a, b);
        }
    }
    let clique_mask = clique_mask_for(arena, clique);
    steps::infer_topdown_arena(arena, &kept.kept, degrees, &clique_mask, &mut rels, &mut report);
    Ok(Artifact::Steps(Arc::new(StepState { rels, report })))
}

fn run_vp_providers(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let prev = as_steps(inputs, 0, "s6_vp_providers")?;
    if env.cfg.ablation.no_vp_step {
        // Stage-level skip: pass the relationship state through.
        return Ok(Artifact::Steps(Arc::clone(prev)));
    }
    let sanitized = as_sanitized(inputs, 1, "s6_vp_providers")?;
    let degrees = as_degrees(inputs, 2, "s6_vp_providers")?;
    let mut state = StepState::clone(prev);
    steps::infer_vp_providers(sanitized, degrees, &env.cfg, &mut state.rels, &mut state.report);
    Ok(Artifact::Steps(Arc::new(state)))
}

fn run_anomaly_repair(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let prev = as_steps(inputs, 0, "s7_anomaly_repair")?;
    if env.cfg.ablation.no_anomaly_repair {
        return Ok(Artifact::Steps(Arc::clone(prev)));
    }
    let degrees = as_degrees(inputs, 1, "s7_anomaly_repair")?;
    let mut state = StepState::clone(prev);
    steps::repair_anomalies(degrees, &env.cfg, &mut state.rels, &mut state.report);
    Ok(Artifact::Steps(Arc::new(state)))
}

fn run_stub_clique(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let prev = as_steps(inputs, 0, "s8_stub_clique")?;
    if env.cfg.ablation.no_stub_clique {
        return Ok(Artifact::Steps(Arc::clone(prev)));
    }
    let links = as_links(inputs, 1, "s8_stub_clique")?;
    let degrees = as_degrees(inputs, 2, "s8_stub_clique")?;
    let clique = as_clique(inputs, 3, "s8_stub_clique")?;
    let clique_set: HashSet<Asn> = clique.iter().copied().collect();
    let mut state = StepState::clone(prev);
    steps::stub_clique_over(links, degrees, &clique_set, &mut state.rels, &mut state.report);
    Ok(Artifact::Steps(Arc::new(state)))
}

fn run_providerless(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let prev = as_steps(inputs, 0, "s9_providerless")?;
    if env.cfg.ablation.no_providerless {
        return Ok(Artifact::Steps(Arc::clone(prev)));
    }
    let arena = as_arena(inputs, 1, "s9_providerless")?;
    let kept = as_kept(inputs, 2, "s9_providerless")?;
    let degrees = as_degrees(inputs, 3, "s9_providerless")?;
    let clique = as_clique(inputs, 4, "s9_providerless")?;
    let clique_set: HashSet<Asn> = clique.iter().copied().collect();
    let mut state = StepState::clone(prev);
    steps::infer_providerless_arena(
        arena,
        &kept.kept,
        degrees,
        &clique_set,
        &mut state.rels,
        &mut state.report,
    );
    Ok(Artifact::Steps(Arc::new(state)))
}

fn run_p2p(_env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let prev = as_steps(inputs, 0, "s10_p2p")?;
    let links = as_links(inputs, 1, "s10_p2p")?;
    let mut state = StepState::clone(prev);
    steps::remaining_p2p_over(links, &mut state.rels, &mut state.report);
    Ok(Artifact::Steps(Arc::new(state)))
}

fn run_inference(_env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let state = as_steps(inputs, 0, "s11_inference")?;
    let sanitized = as_sanitized(inputs, 1, "s11_inference")?;
    let degrees = as_degrees(inputs, 2, "s11_inference")?;
    let clique = as_clique(inputs, 3, "s11_inference")?;

    let mut report = state.report;
    report.sanitize = sanitized.report;
    report.cycle_links = steps::try_audit_cycles(&state.rels)
        .map_err(|detail| EngineError::stage_failed("s11_inference", detail))?;
    report.total_links = state.rels.len();
    Ok(Artifact::Inference(Arc::new(Inference {
        relationships: state.rels.clone(),
        clique: Vec::clone(clique),
        degrees: DegreeTable::clone(degrees),
        report,
    })))
}

fn run_cone_recursive(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let inf = as_inference(inputs, 0, "cone_recursive")?;
    Ok(Artifact::Cone(Arc::new(CustomerCones::recursive_with(
        &inf.relationships,
        env.prefixes.as_ref(),
        env.cfg.parallelism,
    ))))
}

fn run_cone_bgp(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let inf = as_inference(inputs, 0, "cone_bgp_observed")?;
    let arena = as_arena(inputs, 1, "cone_bgp_observed")?;
    Ok(Artifact::Cone(Arc::new(
        CustomerCones::bgp_observed_from_arena_with_block(
            arena,
            &inf.relationships,
            env.prefixes.as_ref(),
            env.cfg.parallelism,
            env.cfg.cone_sweep_block,
        ),
    )))
}

fn run_cone_provider_peer(env: &Env, inputs: &[Artifact]) -> Result<Artifact, EngineError> {
    let inf = as_inference(inputs, 0, "cone_provider_peer")?;
    let arena = as_arena(inputs, 1, "cone_provider_peer")?;
    Ok(Artifact::Cone(Arc::new(
        CustomerCones::provider_peer_observed_from_arena_with_block(
            arena,
            &inf.relationships,
            env.prefixes.as_ref(),
            env.cfg.parallelism,
            env.cfg.cone_sweep_block,
        ),
    )))
}

// ---------------------------------------------------------------------
// The store.

/// Typed artifact store: stage outputs keyed by `(stage, fingerprint)`,
/// plus per-stage instrumentation.
#[derive(Default)]
struct ArtifactStore {
    slots: FxHashMap<(usize, u64), Artifact>,
    stats: Vec<StageStats>,
}

impl ArtifactStore {
    fn new() -> Self {
        ArtifactStore {
            slots: FxHashMap::default(),
            stats: vec![StageStats::default(); STAGES.len()],
        }
    }

    fn lookup(&mut self, idx: usize, fp: u64) -> Option<Artifact> {
        let found = self.slots.get(&(idx, fp)).cloned();
        if let Some(stat) = self.stats.get_mut(idx) {
            match found {
                Some(_) => stat.hits += 1,
                None => stat.misses += 1,
            }
        }
        found
    }

    fn record_run(&mut self, idx: usize, fp: u64, wall_ns: u64, artifact: &Artifact) {
        if let Some(stat) = self.stats.get_mut(idx) {
            stat.runs += 1;
            stat.wall_ns += wall_ns;
            stat.items = artifact.items();
            stat.bytes = artifact.approx_bytes();
        }
        self.slots.insert((idx, fp), artifact.clone());
    }

    /// An in-memory miss answered from the persistent cache: the loaded
    /// artifact enters the store (so the next request is an ordinary
    /// hit) without counting as a stage run.
    fn record_disk_hit(&mut self, idx: usize, fp: u64, artifact: &Artifact) {
        if let Some(stat) = self.stats.get_mut(idx) {
            stat.disk_hits += 1;
            stat.items = artifact.items();
            stat.bytes = artifact.approx_bytes();
        }
        self.slots.insert((idx, fp), artifact.clone());
    }

    fn record_disk_store(&mut self, idx: usize) {
        if let Some(stat) = self.stats.get_mut(idx) {
            stat.disk_stores += 1;
        }
    }

    /// Fetch without touching the hit/miss counters — the delta loop's
    /// input resolution, which must not distort the cache statistics the
    /// tests and bench reports pin.
    fn peek(&self, idx: usize, fp: u64) -> Option<Artifact> {
        self.slots.get(&(idx, fp)).cloned()
    }

    /// A delta run reused the previous emission's artifact: it enters
    /// the store (so accessors hit) without counting as a stage run.
    fn record_delta_skip(&mut self, idx: usize, fp: u64, artifact: &Artifact) {
        if let Some(stat) = self.stats.get_mut(idx) {
            stat.delta_skipped += 1;
            stat.items = artifact.items();
            stat.bytes = artifact.approx_bytes();
        }
        self.slots.insert((idx, fp), artifact.clone());
    }
}

// ---------------------------------------------------------------------
// The snapshot.

/// One dataset plus the memoized stage graph over it.
///
/// A `Snapshot` borrows the observed paths, owns the active
/// [`InferenceConfig`] and optional per-AS prefix table, and caches
/// every stage output in its [`ArtifactStore`]. Repeated queries — the
/// same accessor twice, or different accessors sharing upstream stages —
/// reuse artifacts instead of recomputing them; [`Snapshot::set_config`]
/// keeps the store, so only stages whose fingerprint actually changed
/// re-run.
///
/// ```
/// use asrank_core::engine::Snapshot;
/// use asrank_core::pipeline::InferenceConfig;
/// use asrank_types::{AsPath, Asn, Ipv4Prefix, PathSample, PathSet};
///
/// let paths: PathSet = [[100, 10, 1, 2, 20, 200], [200, 20, 2, 1, 10, 100]]
///     .into_iter()
///     .enumerate()
///     .map(|(i, hops)| PathSample {
///         vp: Asn(hops[0]),
///         prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
///         path: AsPath::from_u32s(hops),
///     })
///     .collect();
///
/// let mut snap = Snapshot::new(&paths, InferenceConfig::default());
/// let inference = snap.inference().unwrap();
/// assert_eq!(inference.clique, vec![Asn(1), Asn(2)]);
///
/// // A second query over the same snapshot is answered from the store.
/// let again = snap.inference().unwrap();
/// assert_eq!(again.report, inference.report);
/// assert_eq!(snap.stage_report().get("s1_sanitize").map(|s| s.runs), Some(1));
/// ```
pub struct Snapshot<'a> {
    env: Env<'a>,
    store: ArtifactStore,
    /// Optional persistent spill/load tier under a `--cache-dir`.
    cache: Option<crate::persist::CacheDir>,
    /// Content hash of `env.paths`, mixed into every on-disk key (the
    /// in-memory fingerprints deliberately exclude path content, since
    /// the store is bound to one dataset; a persistent key is not).
    /// Computed once when a cache is attached, 0 otherwise.
    content_fp: u64,
}

impl<'a> Snapshot<'a> {
    /// Bind a dataset and configuration into a fresh snapshot (empty
    /// store). When a process-wide cache directory has been set
    /// ([`crate::persist::set_process_cache_dir`] — the CLI's
    /// `--cache-dir`), the snapshot spills to and loads from it
    /// automatically.
    pub fn new(paths: &'a PathSet, cfg: InferenceConfig) -> Self {
        let snapshot = Snapshot {
            env: Env {
                paths,
                cfg,
                prefixes: None,
                prefix_fp: hash_prefixes(None),
            },
            store: ArtifactStore::new(),
            cache: None,
            content_fp: 0,
        };
        match crate::persist::process_cache_dir() {
            Some(dir) => snapshot.with_cache_dir(dir),
            None => snapshot,
        }
    }

    /// Attach a persistent artifact cache rooted at `dir`: stage outputs
    /// spill to frame files there, and future snapshots over the same
    /// paths + config load them back instead of running stage bodies.
    /// Corrupt, truncated, or version-mismatched entries are silently
    /// recomputed and rewritten.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = Some(crate::persist::CacheDir::new(dir));
        self.content_fp = crate::persist::pathset_fingerprint(self.env.paths);
        self
    }

    /// Detach the persistent cache (the CLI's `--no-cache`): the
    /// snapshot keeps only its in-memory store.
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self.content_fp = 0;
        self
    }

    /// The attached persistent cache directory, if any.
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache.as_ref().map(|c| c.root())
    }

    /// Attach a per-AS prefix table (used by the cone stages to weight
    /// cones by prefixes/addresses). Invalidates only the cone stages.
    pub fn with_prefixes(mut self, prefixes: HashMap<Asn, Vec<Ipv4Prefix>>) -> Self {
        self.env.prefix_fp = hash_prefixes(Some(&prefixes));
        self.env.prefixes = Some(prefixes);
        self
    }

    /// Replace the active configuration, keeping the artifact store:
    /// only stages whose config subset (or an upstream's) changed will
    /// re-run on the next materialization.
    pub fn set_config(&mut self, cfg: InferenceConfig) {
        self.env.cfg = cfg;
    }

    /// The active configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.env.cfg
    }

    /// Names of every stage, in DAG (topological) order.
    pub fn stage_names() -> Vec<&'static str> {
        STAGES.iter().map(|s| s.name).collect()
    }

    /// Chained fingerprint of stage `idx` under the current config.
    fn fingerprint(&self, idx: usize) -> u64 {
        fingerprint_with(&self.env.fp_ctx(), idx)
    }

    /// On-disk key for stage `idx` under fingerprint `fp`: the chained
    /// config fingerprint extended with the dataset content hash.
    fn disk_key(&self, fp: u64) -> u64 {
        mix_disk_key(self.content_fp, fp)
    }

    fn materialize_idx(&mut self, idx: usize) -> Result<Artifact, EngineError> {
        let Some(spec) = STAGES.get(idx) else {
            return Err(EngineError::UnknownStage(format!("#{idx}")));
        };
        let fp = self.fingerprint(idx);
        if let Some(found) = self.store.lookup(idx, fp) {
            return Ok(found);
        }
        // Spill tier: an in-memory miss may still be answered from the
        // persistent cache — the warm-process path that materializes a
        // stage without touching any of its inputs.
        if let (Some(cache), Some(tag)) = (&self.cache, crate::persist::tag_for_stage(spec.name)) {
            if let Some(artifact) = cache.load(spec.name, self.disk_key(fp), tag) {
                self.store.record_disk_hit(idx, fp, &artifact);
                return Ok(artifact);
            }
        }
        let mut inputs = Vec::with_capacity(spec.inputs.len());
        for &j in spec.inputs {
            inputs.push(self.materialize_idx(j)?);
        }
        let started = Instant::now();
        let artifact = (spec.run)(&self.env, &inputs)?;
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.store.record_run(idx, fp, wall_ns, &artifact);
        if let Some(cache) = &self.cache {
            if cache.store(spec.name, self.disk_key(fp), &artifact) {
                self.store.record_disk_store(idx);
            }
        }
        Ok(artifact)
    }

    /// Materialize a stage by name — the partial-materialization entry
    /// point (`asrank audit --stage`). Unknown names are an
    /// [`EngineError::UnknownStage`].
    pub fn materialize(&mut self, stage: &str) -> Result<Artifact, EngineError> {
        match STAGES.iter().position(|s| s.name == stage) {
            Some(idx) => self.materialize_idx(idx),
            None => Err(EngineError::UnknownStage(stage.to_string())),
        }
    }

    /// S1 output: sanitized paths + counters.
    pub fn sanitized(&mut self) -> Result<Arc<SanitizedPaths>, EngineError> {
        match self.materialize_idx(S1_SANITIZE)? {
            Artifact::Sanitized(s) => Ok(s),
            other => Err(type_err("s1_sanitize", "sanitized", &other)),
        }
    }

    /// S2 output: the degree table.
    pub fn degrees(&mut self) -> Result<Arc<DegreeTable>, EngineError> {
        match self.materialize_idx(S2_DEGREES)? {
            Artifact::Degrees(d) => Ok(d),
            other => Err(type_err("s2_degrees", "degrees", &other)),
        }
    }

    /// S3 output: the Tier-1 clique, sorted by ASN.
    pub fn clique(&mut self) -> Result<Arc<Vec<Asn>>, EngineError> {
        match self.materialize_idx(S3_CLIQUE)? {
            Artifact::Clique(c) => Ok(c),
            other => Err(type_err("s3_clique", "clique", &other)),
        }
    }

    /// The shared interned path arena.
    pub fn arena(&mut self) -> Result<Arc<PathArena>, EngineError> {
        match self.materialize_idx(PATH_ARENA)? {
            Artifact::Arena(a) => Ok(a),
            other => Err(type_err("path_arena", "arena", &other)),
        }
    }

    /// S11 output: the full [`Inference`] (relationships, clique,
    /// degrees, report).
    pub fn inference(&mut self) -> Result<Arc<Inference>, EngineError> {
        match self.materialize_idx(S11_INFERENCE)? {
            Artifact::Inference(inf) => Ok(inf),
            other => Err(type_err("s11_inference", "inference", &other)),
        }
    }

    /// The paper's recursive (transitive-closure) customer cone.
    pub fn recursive_cone(&mut self) -> Result<Arc<CustomerCones>, EngineError> {
        match self.materialize_idx(CONE_RECURSIVE)? {
            Artifact::Cone(c) => Ok(c),
            other => Err(type_err("cone_recursive", "cone", &other)),
        }
    }

    /// The BGP-observed customer cone.
    pub fn bgp_observed_cone(&mut self) -> Result<Arc<CustomerCones>, EngineError> {
        match self.materialize_idx(CONE_BGP_OBSERVED)? {
            Artifact::Cone(c) => Ok(c),
            other => Err(type_err("cone_bgp_observed", "cone", &other)),
        }
    }

    /// The provider/peer-observed customer cone.
    pub fn provider_peer_cone(&mut self) -> Result<Arc<CustomerCones>, EngineError> {
        match self.materialize_idx(CONE_PROVIDER_PEER)? {
            Artifact::Cone(c) => Ok(c),
            other => Err(type_err("cone_provider_peer", "cone", &other)),
        }
    }

    /// All three cone flavors, materialized through the store.
    pub fn cones(
        &mut self,
    ) -> Result<(Arc<CustomerCones>, Arc<CustomerCones>, Arc<CustomerCones>), EngineError> {
        Ok((
            self.recursive_cone()?,
            self.bgp_observed_cone()?,
            self.provider_peer_cone()?,
        ))
    }

    /// The incremental propagation pass behind [`crate::delta::DeltaSession`]:
    /// walk the DAG in topological order, decide per stage whether any
    /// input **aspect** is dirty, and either inject the previous
    /// emission's artifact (a delta skip) or re-execute the stage (body,
    /// or an incremental provider for S1/arena/S6) and compare the
    /// result against the previous artifact.
    ///
    /// Aspects are finer than whole-artifact dependencies — they are why
    /// a multiplicity-only batch leaves almost the whole DAG untouched:
    ///
    /// * `plan.samples` — some sanitized sample changed (S1, S6);
    /// * `plan.structure` — the distinct clean path set changed (S2, S3,
    ///   S4, links, S5, S9, the two path-observed cones);
    /// * `plan.mult` — only evidence weight moved (the arena alone);
    /// * `report_changed` — the sanitize counters moved (S11 embeds
    ///   them) even though downstream path structure did not;
    /// * `rels_changed` — S11's relationship map actually differs (the
    ///   cones read nothing else from it).
    ///
    /// Every recomputed stage is content-compared against its previous
    /// artifact, so a dirty input whose recomputation lands on the same
    /// output cuts the propagation off immediately. Both skipped and
    /// recomputed artifacts are (re-)spilled to the attached cache
    /// directory, keeping the emission serve-ready under the new dataset
    /// content fingerprint.
    pub(crate) fn delta_run(
        &mut self,
        prev: &[Artifact],
        plan: &DeltaPlan,
        provider: &mut dyn DeltaProvider,
    ) -> Result<(), EngineError> {
        if prev.len() != STAGES.len() {
            return Err(EngineError::stage_failed(
                "delta_run",
                format!("{} previous artifact(s) for {} stages", prev.len(), STAGES.len()),
            ));
        }
        let mut changed = vec![false; STAGES.len()];
        let mut report_changed = false;
        let mut rels_changed = false;
        for idx in 0..STAGES.len() {
            let dirty = match idx {
                S1_SANITIZE => plan.samples,
                S2_DEGREES => plan.structure,
                S3_CLIQUE => plan.structure || changed[S2_DEGREES],
                PATH_ARENA => plan.structure || plan.mult,
                S4_POISON => plan.structure || changed[S3_CLIQUE],
                OBSERVED_LINKS => plan.structure || changed[S4_POISON],
                S5_TOPDOWN => {
                    plan.structure
                        || changed[S4_POISON]
                        || changed[S2_DEGREES]
                        || changed[S3_CLIQUE]
                }
                S6_VP_PROVIDERS => {
                    changed[S5_TOPDOWN] || plan.samples || changed[S2_DEGREES]
                }
                S7_ANOMALY_REPAIR => changed[S6_VP_PROVIDERS],
                S8_STUB_CLIQUE => {
                    changed[S7_ANOMALY_REPAIR]
                        || changed[OBSERVED_LINKS]
                        || changed[S2_DEGREES]
                        || changed[S3_CLIQUE]
                }
                S9_PROVIDERLESS => {
                    changed[S8_STUB_CLIQUE]
                        || plan.structure
                        || changed[S4_POISON]
                        || changed[S2_DEGREES]
                        || changed[S3_CLIQUE]
                }
                S10_P2P => changed[S9_PROVIDERLESS] || changed[OBSERVED_LINKS],
                S11_INFERENCE => {
                    changed[S10_P2P]
                        || report_changed
                        || changed[S2_DEGREES]
                        || changed[S3_CLIQUE]
                }
                CONE_RECURSIVE => rels_changed,
                _ => rels_changed || plan.structure,
            };
            let fp = self.fingerprint(idx);
            let spec = &STAGES[idx];
            if !dirty {
                self.store.record_delta_skip(idx, fp, &prev[idx]);
                if let Some(cache) = &self.cache {
                    if cache.store(spec.name, self.disk_key(fp), &prev[idx]) {
                        self.store.record_disk_store(idx);
                    }
                }
                continue;
            }
            let started = Instant::now();
            let artifact = match idx {
                S1_SANITIZE => Artifact::Sanitized(provider.sanitized()),
                PATH_ARENA => Artifact::Arena(provider.arena()),
                S2_DEGREES => Artifact::Degrees(provider.degrees()),
                S6_VP_PROVIDERS if !self.env.cfg.ablation.no_vp_step => {
                    let step = match self.store.peek(S5_TOPDOWN, self.fingerprint(S5_TOPDOWN)) {
                        Some(Artifact::Steps(s)) => s,
                        _ => {
                            return Err(EngineError::stage_failed(
                                "s6_vp_providers",
                                "delta run found no s5_topdown artifact in the store",
                            ))
                        }
                    };
                    let degrees = match self.store.peek(S2_DEGREES, self.fingerprint(S2_DEGREES)) {
                        Some(Artifact::Degrees(d)) => d,
                        _ => {
                            return Err(EngineError::stage_failed(
                                "s6_vp_providers",
                                "delta run found no s2_degrees artifact in the store",
                            ))
                        }
                    };
                    Artifact::Steps(provider.vp_providers(&step, &degrees))
                }
                _ => {
                    let mut inputs = Vec::with_capacity(spec.inputs.len());
                    for &j in spec.inputs {
                        inputs.push(self.store.peek(j, self.fingerprint(j)).ok_or_else(|| {
                            EngineError::stage_failed(
                                spec.name,
                                format!("delta run found no input #{j} in the store"),
                            )
                        })?);
                    }
                    (spec.run)(&self.env, &inputs)?
                }
            };
            let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Content-equality cutoff. S1 and the arena propagate through
            // the finer aspects above (report_changed / plan.*) instead of
            // whole-artifact comparisons, which would be the two most
            // expensive equality checks for no consumer.
            match (idx, &artifact, &prev[idx]) {
                (S1_SANITIZE, Artifact::Sanitized(n), Artifact::Sanitized(p)) => {
                    report_changed = n.report != p.report;
                }
                (PATH_ARENA, ..) => {}
                (S11_INFERENCE, Artifact::Inference(n), Artifact::Inference(p)) => {
                    rels_changed = n.relationships != p.relationships;
                }
                _ => changed[idx] = !artifact_eq(&artifact, &prev[idx]),
            }
            self.store.record_run(idx, fp, wall_ns, &artifact);
            if let Some(stat) = self.store.stats.get_mut(idx) {
                stat.delta_recomputed += 1;
            }
            if let Some(cache) = &self.cache {
                if cache.store(spec.name, self.disk_key(fp), &artifact) {
                    self.store.record_disk_store(idx);
                }
            }
        }
        Ok(())
    }

    /// Snapshot of the per-stage instrumentation counters.
    pub fn stage_report(&self) -> StageReport {
        StageReport {
            stages: STAGES
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    (
                        spec.name,
                        self.store.stats.get(i).copied().unwrap_or_default(),
                    )
                })
                .collect(),
        }
    }
}

/// The base dirt tokens a [`crate::delta::DeltaSession`] accumulated
/// between emissions — the aspect-level summary of what its applied
/// batches actually touched.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DeltaPlan {
    /// Some sanitized sample changed (content, addition, or removal).
    pub samples: bool,
    /// The distinct clean path set changed.
    pub structure: bool,
    /// Path multiplicities changed.
    pub mult: bool,
}

/// The incremental recomputation hooks a delta run may call instead of
/// the full stage bodies. Implemented by [`crate::delta::DeltaSession`],
/// which owns the per-sample evidence (sanitize fates, the mutable
/// arena, the VP first-hop counters) these providers are cheap with.
pub(crate) trait DeltaProvider {
    /// S1 without re-sanitizing: rebuild [`SanitizedPaths`] from cached
    /// per-sample fates.
    fn sanitized(&mut self) -> Arc<SanitizedPaths>;
    /// The arena without re-deduplicating: canonicalize the in-place
    /// slot table.
    fn arena(&mut self) -> Arc<PathArena>;
    /// S2 without re-scanning every sanitized path: assemble the degree
    /// table from maintained per-link refcounts (`O(V log V)` in
    /// observed ASes instead of `O(total hops)`).
    fn degrees(&mut self) -> Arc<DegreeTable>;
    /// S6 without re-scanning every sample: classify over maintained
    /// `(vp, first hop)` distinct-prefix counters, starting from the
    /// current S5 state.
    fn vp_providers(&mut self, step: &Arc<StepState>, degrees: &Arc<DegreeTable>)
        -> Arc<StepState>;
}

/// Structural equality between two artifacts of the same stage — the
/// delta run's propagation cutoff. Arc-pointer equality short-circuits;
/// cones compare by pointer only (no stage consumes a cone, so a false
/// "changed" is harmless and a deep compare would be pure cost).
fn artifact_eq(a: &Artifact, b: &Artifact) -> bool {
    match (a, b) {
        (Artifact::Sanitized(x), Artifact::Sanitized(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Degrees(x), Artifact::Degrees(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Clique(x), Artifact::Clique(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Arena(x), Artifact::Arena(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Kept(x), Artifact::Kept(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Links(x), Artifact::Links(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Steps(x), Artifact::Steps(y)) => Arc::ptr_eq(x, y) || x == y,
        (Artifact::Inference(x), Artifact::Inference(y)) => {
            Arc::ptr_eq(x, y)
                || (x.relationships == y.relationships
                    && x.clique == y.clique
                    && x.degrees == y.degrees
                    && x.report == y.report)
        }
        (Artifact::Cone(x), Artifact::Cone(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

/// Stage indices of the artifacts a [`crate::delta::DeltaSession`] keeps
/// between emissions, re-exported for its typed accessors.
pub(crate) mod stage_idx {
    pub(crate) const S1_SANITIZE: usize = super::S1_SANITIZE;
    pub(crate) const S2_DEGREES: usize = super::S2_DEGREES;
    pub(crate) const S3_CLIQUE: usize = super::S3_CLIQUE;
    pub(crate) const PATH_ARENA: usize = super::PATH_ARENA;
    pub(crate) const S11_INFERENCE: usize = super::S11_INFERENCE;
    pub(crate) const CONE_RECURSIVE: usize = super::CONE_RECURSIVE;
    pub(crate) const CONE_BGP_OBSERVED: usize = super::CONE_BGP_OBSERVED;
    pub(crate) const CONE_PROVIDER_PEER: usize = super::CONE_PROVIDER_PEER;
}

/// Per-stage instrumentation, in DAG order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// `(stage name, counters)` in the DAG's topological order.
    pub stages: Vec<(&'static str, StageStats)>,
}

impl StageReport {
    /// Counters for one stage by name.
    pub fn get(&self, name: &str) -> Option<StageStats> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// The same report with wall-clock fields zeroed — everything left
    /// is bit-deterministic across runs, so reports can be compared in
    /// tests and CI gates.
    pub fn without_timing(&self) -> StageReport {
        StageReport {
            stages: self
                .stages
                .iter()
                .map(|&(n, s)| (n, StageStats { wall_ns: 0, ..s }))
                .collect(),
        }
    }

    /// Render as JSON with a fixed stage order and fixed key order:
    /// deterministic apart from the `wall_ns` values (zero them via
    /// [`StageReport::without_timing`] for byte-stable output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stages\": [\n");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{name}\", \"runs\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"disk_hits\": {}, \"disk_stores\": {}, \
                 \"wall_ns\": {}, \"items\": {}, \"bytes\": {}, \
                 \"delta_skipped\": {}, \"delta_recomputed\": {}}}{}\n",
                s.runs,
                s.hits,
                s.misses,
                s.disk_hits,
                s.disk_stores,
                s.wall_ns,
                s.items,
                s.bytes,
                s.delta_skipped,
                s.delta_recomputed,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        let totals = self.stages.iter().fold(StageStats::default(), |mut t, &(_, s)| {
            t.runs += s.runs;
            t.hits += s.hits;
            t.misses += s.misses;
            t.disk_hits += s.disk_hits;
            t.disk_stores += s.disk_stores;
            t.wall_ns += s.wall_ns;
            t.delta_skipped += s.delta_skipped;
            t.delta_recomputed += s.delta_recomputed;
            t
        });
        out.push_str(&format!(
            "  ],\n  \"totals\": {{\"runs\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"disk_hits\": {}, \"disk_stores\": {}, \"wall_ns\": {}, \
             \"delta_skipped\": {}, \"delta_recomputed\": {}, \"dirty_set_size\": {}}}\n}}\n",
            totals.runs,
            totals.hits,
            totals.misses,
            totals.disk_hits,
            totals.disk_stores,
            totals.wall_ns,
            totals.delta_skipped,
            totals.delta_recomputed,
            totals.delta_recomputed
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::infer_monolithic;

    fn hierarchy_paths() -> PathSet {
        let routes: Vec<&[u32]> = vec![
            &[100, 10, 1, 11, 110],
            &[100, 10, 1, 2, 20, 200],
            &[100, 10, 1, 2, 21, 210],
            &[100, 10, 1, 2],
            &[210, 21, 2, 20, 200],
            &[210, 21, 2, 1, 10, 100],
            &[210, 21, 2, 1, 11, 110],
            &[210, 21, 2, 1],
        ];
        routes
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn engine_matches_monolithic_on_fixture() {
        let paths = hierarchy_paths();
        let cfg = InferenceConfig::default();
        let mono = infer_monolithic(&paths, &cfg);
        let mut snap = Snapshot::new(&paths, cfg);
        let inf = snap.inference().unwrap();
        assert_eq!(inf.relationships, mono.relationships);
        assert_eq!(inf.clique, mono.clique);
        assert_eq!(inf.report, mono.report);
    }

    #[test]
    fn second_query_is_all_cache_hits() {
        let paths = hierarchy_paths();
        let mut snap = Snapshot::new(&paths, InferenceConfig::default());
        let first = snap.inference().unwrap();
        let before = snap.stage_report();
        let second = snap.inference().unwrap();
        let after = snap.stage_report();
        assert_eq!(first.report, second.report);
        for name in ["s1_sanitize", "s2_degrees", "path_arena", "s11_inference"] {
            let (b, a) = (before.get(name).unwrap(), after.get(name).unwrap());
            assert_eq!(a.runs, b.runs, "{name} re-ran on a warm store");
        }
        // The repeat materialization of s11 is a hit, not a miss.
        assert_eq!(
            after.get("s11_inference").unwrap().hits,
            before.get("s11_inference").unwrap().hits + 1
        );
        assert_eq!(
            after.get("s11_inference").unwrap().misses,
            before.get("s11_inference").unwrap().misses
        );
    }

    #[test]
    fn shared_upstream_stages_are_reused_across_accessors() {
        let paths = hierarchy_paths();
        let mut snap = Snapshot::new(&paths, InferenceConfig::default());
        snap.inference().unwrap();
        snap.cones().unwrap();
        let report = snap.stage_report();
        // The cones pulled s11 + arena from the store: still one run each.
        assert_eq!(report.get("s1_sanitize").unwrap().runs, 1);
        assert_eq!(report.get("path_arena").unwrap().runs, 1);
        assert_eq!(report.get("s11_inference").unwrap().runs, 1);
        assert_eq!(report.get("cone_recursive").unwrap().runs, 1);
    }

    #[test]
    fn unknown_stage_is_a_structured_error() {
        let paths = hierarchy_paths();
        let mut snap = Snapshot::new(&paths, InferenceConfig::default());
        match snap.materialize("s99_bogus") {
            Err(EngineError::UnknownStage(name)) => assert_eq!(name, "s99_bogus"),
            other => panic!("expected UnknownStage, got {other:?}"),
        }
    }

    #[test]
    fn stage_names_cover_every_artifact() {
        let names = Snapshot::stage_names();
        assert_eq!(names.len(), STAGES.len());
        for required in [
            "s1_sanitize",
            "s2_degrees",
            "s3_clique",
            "path_arena",
            "s11_inference",
            "cone_recursive",
            "cone_bgp_observed",
            "cone_provider_peer",
        ] {
            assert!(names.contains(&required), "missing stage {required}");
        }
    }

    #[test]
    fn stage_report_json_is_deterministic_without_timing() {
        let paths = hierarchy_paths();
        let render = |snap: &mut Snapshot| {
            snap.inference().unwrap();
            snap.stage_report().without_timing().to_json()
        };
        let a = render(&mut Snapshot::new(&paths, InferenceConfig::default()));
        let b = render(&mut Snapshot::new(&paths, InferenceConfig::default()));
        assert_eq!(a, b);
        assert!(a.contains("\"stage\": \"s1_sanitize\""));
        assert!(a.contains("\"totals\""));
    }

    #[test]
    fn prefix_table_invalidates_only_cones() {
        let paths = hierarchy_paths();
        let mut snap = Snapshot::new(&paths, InferenceConfig::default());
        let no_table = snap.fingerprint(CONE_RECURSIVE);
        let inf_fp = snap.fingerprint(S11_INFERENCE);
        let mut table: HashMap<Asn, Vec<Ipv4Prefix>> = HashMap::new();
        table.insert(Asn(100), vec![Ipv4Prefix::new(0x0a000000, 8).unwrap()]);
        snap = Snapshot::new(&paths, InferenceConfig::default()).with_prefixes(table);
        assert_ne!(no_table, snap.fingerprint(CONE_RECURSIVE));
        assert_eq!(inf_fp, snap.fingerprint(S11_INFERENCE));
    }

    #[test]
    fn stage_disk_key_matches_snapshot_cache_files() {
        // The path-free key computation must land on exactly the frame
        // files a cached snapshot writes — the contract the serve tier's
        // frame resolution depends on.
        let paths = hierarchy_paths();
        let dir = std::env::temp_dir().join(format!(
            "asrank_engine_diskkey_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = InferenceConfig::default();
        let mut snap = Snapshot::new(&paths, cfg.clone()).with_cache_dir(&dir);
        for name in Snapshot::stage_names() {
            snap.materialize(name).unwrap();
        }
        let cache = crate::persist::CacheDir::new(&dir);
        let content_fp = crate::persist::pathset_fingerprint(&paths);
        for name in Snapshot::stage_names() {
            let key = stage_disk_key(name, &cfg, None, content_fp).unwrap();
            assert!(
                cache.entry_path(name, key).is_file(),
                "stage {name}: no frame at the path-free key"
            );
        }
        assert!(stage_disk_key("nope", &cfg, None, content_fp).is_none());
        // A different config or dataset moves the key.
        let mut other = InferenceConfig::default();
        other.sanitize = crate::SanitizeConfig::with_ixps([Asn(999)]);
        assert_ne!(
            stage_disk_key("s1_sanitize", &cfg, None, content_fp),
            stage_disk_key("s1_sanitize", &other, None, content_fp)
        );
        assert_ne!(
            stage_disk_key("s1_sanitize", &cfg, None, content_fp),
            stage_disk_key("s1_sanitize", &cfg, None, content_fp ^ 1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ablation_skips_are_pass_through_stages() {
        let paths = hierarchy_paths();
        let mut cfg = InferenceConfig::default();
        cfg.ablation.no_stub_clique = true;
        cfg.ablation.no_providerless = true;
        let mono = infer_monolithic(&paths, &cfg);
        let mut snap = Snapshot::new(&paths, cfg);
        let inf = snap.inference().unwrap();
        assert_eq!(inf.relationships, mono.relationships);
        assert_eq!(inf.report, mono.report);
        assert_eq!(inf.report.c2p_stub_clique, 0);
        assert_eq!(inf.report.c2p_providerless, 0);
    }
}
