//! The relationship-classification steps S4–S11.
//!
//! Each step is a standalone function taking the working
//! [`RelationshipMap`] so tests can exercise them in isolation; [`run`]
//! executes them in paper order.
//!
//! [`run`] operates over the shared [`PathArena`]: distinct paths (the
//! old `HashSet<&AsPath>` + clone + sort), the S5 occurrence index (the
//! old per-run `HashMap<Asn, Vec<(u32, u32)>>`), and the observed link
//! list S8/S10 both need are all read from the arena the pipeline built
//! exactly once. The path-slice step functions remain `pub` — they are
//! the unit-testable definitions the arena versions must (and are
//! tested to) agree with.

use super::{InferenceConfig, InferenceReport};
use crate::degree::DegreeTable;
use crate::patharena::PathArena;
use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use asrank_types::FxHashMap;
use std::collections::{HashMap, HashSet};

/// Execute S4–S11 over the shared path arena and return the final
/// relationship map.
pub fn run(
    arena: &PathArena,
    sanitized: &SanitizedPaths,
    degrees: &DegreeTable,
    clique: &[Asn],
    cfg: &InferenceConfig,
    report: &mut InferenceReport,
) -> RelationshipMap {
    let clique_set: HashSet<Asn> = clique.iter().copied().collect();
    let interner = arena.interner();

    // Dense clique mask over the arena's id space (clique members that
    // appear in no path can never match a hop, so dropping them from
    // the mask is exact).
    let mut clique_mask = vec![false; interner.len()];
    for &a in clique {
        if let Some(id) = interner.get(a) {
            clique_mask[id as usize] = true;
        }
    }

    // S4: discard poisoned paths — a kept-mask over the arena's
    // distinct paths instead of materializing a filtered Vec<AsPath>.
    // (Distinct paths only: multiplicity — one sample per prefix — adds
    // no relationship evidence and would inflate the S5 index.)
    let mut kept = vec![true; arena.len()];
    if !cfg.ablation.no_poison_filter {
        let mut discarded = 0usize;
        for (p, keep) in kept.iter_mut().enumerate() {
            if is_poisoned_ids(arena.path(p), &clique_mask) {
                *keep = false;
                discarded += 1;
            }
        }
        report.discarded_poisoned = discarded;
    }

    let mut rels = RelationshipMap::new();

    // Clique links are p2p by construction.
    for (i, &a) in clique.iter().enumerate() {
        for &b in &clique[i + 1..] {
            rels.insert_p2p(a, b);
        }
    }

    // S5: top-down c2p inference via the arena's inverted index.
    infer_topdown_arena(arena, &kept, degrees, &clique_mask, &mut rels, report);

    // S6: VP-side providers.
    if !cfg.ablation.no_vp_step {
        infer_vp_providers(sanitized, degrees, cfg, &mut rels, report);
    }

    // S7: repair degree anomalies.
    if !cfg.ablation.no_anomaly_repair {
        repair_anomalies(degrees, cfg, &mut rels, report);
    }

    // Observed links of the kept paths, computed once for S8 and S10.
    let links = observed_links_arena(arena, &kept);

    // S8: stub-to-clique.
    if !cfg.ablation.no_stub_clique {
        stub_clique_over(&links, degrees, &clique_set, &mut rels, report);
    }

    // S9: providers for provider-less transit ASes.
    if !cfg.ablation.no_providerless {
        infer_providerless_arena(arena, &kept, degrees, &clique_set, &mut rels, report);
    }

    // S10: the rest is p2p.
    remaining_p2p_over(&links, &mut rels, report);

    // S11: audit.
    report.cycle_links = audit_cycles(&rels);

    rels
}

/// S4 — a path is poisoned when a non-clique AS appears between two
/// clique members: legitimate routing never sandwiches a smaller AS
/// between two Tier-1s.
pub fn discard_poisoned(
    paths: Vec<AsPath>,
    clique_set: &HashSet<Asn>,
    report: &mut InferenceReport,
) -> Vec<AsPath> {
    let before = paths.len();
    let kept: Vec<AsPath> = paths
        .into_iter()
        .filter(|p| !is_poisoned(p, clique_set))
        .collect();
    report.discarded_poisoned = before - kept.len();
    kept
}

fn is_poisoned(path: &AsPath, clique_set: &HashSet<Asn>) -> bool {
    // Scan for clique, then ≥1 non-clique, then clique again.
    let mut seen_clique = false;
    let mut gap_since_clique = false;
    for asn in path.iter() {
        if clique_set.contains(&asn) {
            if seen_clique && gap_since_clique {
                return true;
            }
            seen_clique = true;
            gap_since_clique = false;
        } else if seen_clique {
            gap_since_clique = true;
        }
    }
    false
}

/// [`is_poisoned`] over dense-id hops with a clique bitmask — the same
/// clique / gap / clique scan, minus the hash probe per hop.
pub(crate) fn is_poisoned_ids(hops: &[u32], clique_mask: &[bool]) -> bool {
    let mut seen_clique = false;
    let mut gap_since_clique = false;
    for &id in hops {
        if clique_mask[id as usize] {
            if seen_clique && gap_since_clique {
                return true;
            }
            seen_clique = true;
            gap_since_clique = false;
        } else if seen_clique {
            gap_since_clique = true;
        }
    }
    false
}

/// S5 — visit ASes in decreasing transit-degree order. When visiting `z`,
/// every (distinct) path where `z` is preceded by an already-visited
/// (higher-ranked) AS is treated as evidence that the rest of the path is
/// `z`'s customer chain: `z` exported the route to a bigger network,
/// which (by the economics the paper leans on) it would only do for
/// customer routes. Each link of the remaining chain is inferred p2c
/// unless an earlier (higher-ranked, more trusted) inference disagrees,
/// in which case the walk stops and the conflict is recorded.
pub fn infer_topdown(
    paths: &[AsPath],
    degrees: &DegreeTable,
    clique_set: &HashSet<Asn>,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    // Index: AS → (path index, position) occurrences, with checked id
    // narrowing (L005) — a >4G-path or >4G-hop input is corrupt, not big.
    let mut occurrences: HashMap<Asn, Vec<(u32, u32)>> = HashMap::new();
    for (pi, path) in paths.iter().enumerate() {
        for (pos, asn) in path.iter().enumerate() {
            occurrences
                .entry(asn)
                .or_default()
                .push((dense_id(pi), dense_id(pos)));
        }
    }

    let mut visited: HashSet<Asn> = clique_set.clone();

    for &z in degrees.ranked() {
        let Some(occ) = occurrences.get(&z) else {
            visited.insert(z);
            continue;
        };
        for &(pi, pos) in occ {
            let hops = &paths[pi as usize].0;
            let i = pos as usize;
            // Evidence requires a higher-ranked AS on the VP side of z
            // and an unvisited (lower-ranked) AS on the origin side.
            if i == 0 || i + 1 >= hops.len() {
                continue;
            }
            if !visited.contains(&hops[i - 1]) || hops[i - 1] == z {
                continue;
            }
            if visited.contains(&hops[i + 1]) {
                continue;
            }
            // Walk the customer chain toward the origin.
            for j in i..hops.len() - 1 {
                let provider = hops[j];
                let customer = hops[j + 1];
                match rels.orientation(customer, provider) {
                    None => {
                        rels.insert_c2p(customer, provider);
                        report.c2p_from_topdown += 1;
                    }
                    Some(Orientation::Provider) => {} // agrees; keep walking
                    Some(_) => {
                        report.conflicts += 1;
                        break;
                    }
                }
            }
        }
        visited.insert(z);
    }
}

/// [`infer_topdown`] over the arena's prebuilt inverted index: the
/// occurrence list of each ranked AS comes straight from the arena
/// (ascending by path then position — the exact order the hash-map
/// index yielded), `kept` masks out S4-discarded paths, and the visited
/// set is a dense bitmask instead of a hashed `Asn` set. Agreement with
/// the path-slice definition is pinned by unit test.
pub(crate) fn infer_topdown_arena(
    arena: &PathArena,
    kept: &[bool],
    degrees: &DegreeTable,
    clique_mask: &[bool],
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    let interner = arena.interner();
    let mut visited = clique_mask.to_vec();

    for &z in degrees.ranked() {
        // Every ranked AS appears in a sanitized path, hence in the
        // arena; skip defensively rather than panic (L002).
        let Some(zid) = interner.get(z) else { continue };
        for (pi, pos) in arena.occurrences(zid) {
            if !kept[pi as usize] {
                continue;
            }
            let hops = arena.path(pi as usize);
            let i = pos as usize;
            // Evidence requires a higher-ranked AS on the VP side of z
            // and an unvisited (lower-ranked) AS on the origin side.
            if i == 0 || i + 1 >= hops.len() {
                continue;
            }
            if !visited[hops[i - 1] as usize] || hops[i - 1] == zid {
                continue;
            }
            if visited[hops[i + 1] as usize] {
                continue;
            }
            // Walk the customer chain toward the origin.
            for j in i..hops.len() - 1 {
                let provider = interner.resolve(hops[j]);
                let customer = interner.resolve(hops[j + 1]);
                match rels.orientation(customer, provider) {
                    None => {
                        rels.insert_c2p(customer, provider);
                        report.c2p_from_topdown += 1;
                    }
                    Some(Orientation::Provider) => {} // agrees; keep walking
                    Some(_) => {
                        report.conflicts += 1;
                        break;
                    }
                }
            }
        }
        visited[zid as usize] = true;
    }
}

/// S6 — a vantage point's own links are rarely seen in descent (no other
/// path routes *through* a stub VP), so classify them from feed shares:
/// a first-hop neighbor delivering at least `vp_provider_threshold` of
/// the VP's distinct prefixes is inferred to be its provider — a peer
/// would only deliver its own customer cone.
pub fn infer_vp_providers(
    sanitized: &SanitizedPaths,
    degrees: &DegreeTable,
    cfg: &InferenceConfig,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    // Distinct-prefix evidence, flattened: instead of one prefix set
    // per `(vp, first hop)` key (millions of hashed inserts at scale),
    // gather a flat `(vp, first hop, prefix)` triple per qualifying
    // sample — a cheap per-chunk append on worker threads — then sort
    // and run-length count. The triple sort also yields the candidate
    // walk order directly, so the classification consumes exactly the
    // sequence the per-set construction sorted into.
    let per_chunk = crate::par::map_chunks(cfg.parallelism, 512, &sanitized.samples, |chunk| {
        let mut triples: Vec<(Asn, Asn, Ipv4Prefix)> = Vec::with_capacity(chunk.len());
        for s in chunk {
            let hops = &s.path.0;
            if hops.len() < 2 || hops[0] != s.vp {
                continue;
            }
            triples.push((s.vp, hops[1], s.prefix));
        }
        triples
    });
    let mut triples: Vec<(Asn, Asn, Ipv4Prefix)> =
        Vec::with_capacity(per_chunk.iter().map(Vec::len).sum());
    for chunk in per_chunk {
        triples.extend_from_slice(&chunk);
    }
    triples.sort_unstable();
    triples.dedup();

    // `via[(vp, w)]` = run length over the sorted triples; candidates
    // come out in sorted `(vp, w)` order for free.
    let mut candidates: Vec<(Asn, Asn)> = Vec::new();
    let mut via: FxHashMap<(Asn, Asn), usize> = FxHashMap::default();
    let mut i = 0usize;
    while i < triples.len() {
        let (vp, w, _) = triples[i];
        let mut j = i + 1;
        while j < triples.len() && triples[j].0 == vp && triples[j].1 == w {
            j += 1;
        }
        candidates.push((vp, w));
        via.insert((vp, w), j - i);
        i = j;
    }

    // `totals[vp]` = distinct prefixes per VP. A `(vp, prefix)` key can
    // recur under different first hops when the input holds duplicate
    // samples for it, so the per-VP count needs its own dedup pass.
    let mut vp_prefixes: Vec<(Asn, Ipv4Prefix)> =
        triples.iter().map(|&(vp, _, p)| (vp, p)).collect();
    vp_prefixes.sort_unstable();
    vp_prefixes.dedup();
    let mut totals: FxHashMap<Asn, usize> = FxHashMap::default();
    for &(vp, _) in &vp_prefixes {
        *totals.entry(vp).or_default() += 1;
    }

    classify_vp_providers(
        &candidates,
        |vp, w| via[&(vp, w)],
        |vp| totals.get(&vp).copied().unwrap_or(0),
        degrees,
        cfg,
        rels,
        report,
    );
}

/// The classification half of S6, shared with the incremental engine:
/// given sorted `(vp, first hop)` candidates and closures yielding the
/// distinct-prefix evidence counts (however gathered — prefix sets here,
/// maintained counters on the delta path, identical because `(vp,
/// prefix)` samples are unique there), apply the share/degree rule in
/// candidate order. Order matters: an inserted c2p can suppress a later
/// candidate on the same link, so both callers must walk the same sorted
/// sequence.
pub(crate) fn classify_vp_providers(
    candidates: &[(Asn, Asn)],
    via_count: impl Fn(Asn, Asn) -> usize,
    total_count: impl Fn(Asn) -> usize,
    degrees: &DegreeTable,
    cfg: &InferenceConfig,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    let threshold = cfg.vp_provider_threshold;
    for &(vp, w) in candidates {
        if rels.get(vp, w).is_some() {
            continue;
        }
        let total = total_count(vp);
        if total == 0 {
            continue;
        }
        let share = via_count(vp, w) as f64 / total as f64;
        if share >= threshold && degrees.transit_degree(w) >= degrees.transit_degree(vp) {
            rels.insert_c2p(vp, w);
            report.c2p_from_vps += 1;
        }
    }
}

/// S7 — demote c2p inferences whose customer dwarfs the provider: a
/// "customer" with 10× the provider's transit degree is overwhelmingly
/// more likely a peer observed at a path peak than an actual customer.
pub fn repair_anomalies(
    degrees: &DegreeTable,
    cfg: &InferenceConfig,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    let ratio = cfg.degree_flip_ratio;
    let offenders: Vec<(Asn, Asn)> = rels
        .c2p_pairs()
        .filter(|&(c, p)| {
            let tc = degrees.transit_degree(c);
            let tp = degrees.transit_degree(p);
            tp > 0 && tc as f64 > ratio * tp as f64 && tc >= 10
        })
        .collect();
    for (c, p) in offenders {
        rels.insert_p2p(c, p);
        report.repaired_anomalies += 1;
    }
}

/// S8 — an unclassified link between a stub (transit degree 0) and a
/// clique member is c2p: Tier-1 networks do not peer with stubs.
pub fn infer_stub_clique(
    paths: &[AsPath],
    degrees: &DegreeTable,
    clique_set: &HashSet<Asn>,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    stub_clique_over(&observed_links(paths), degrees, clique_set, rels, report);
}

/// [`infer_stub_clique`] over a precomputed sorted link list (shared
/// with S10 when running from the arena).
pub(crate) fn stub_clique_over(
    links: &[AsLink],
    degrees: &DegreeTable,
    clique_set: &HashSet<Asn>,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    for link in links {
        if rels.get(link.a, link.b).is_some() {
            continue;
        }
        let (stub, top) = if clique_set.contains(&link.a) && degrees.transit_degree(link.b) == 0 {
            (link.b, link.a)
        } else if clique_set.contains(&link.b) && degrees.transit_degree(link.a) == 0 {
            (link.a, link.b)
        } else {
            continue;
        };
        rels.insert_c2p(stub, top);
        report.c2p_stub_clique += 1;
    }
}

/// S9 — every non-clique AS that transits traffic must buy transit from
/// someone. For provider-less transit ASes, the most frequently adjacent
/// higher-ranked neighbor with an unclassified link is inferred to be a
/// provider.
pub fn infer_providerless(
    paths: &[AsPath],
    degrees: &DegreeTable,
    clique_set: &HashSet<Asn>,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    // Adjacency frequency per AS.
    let mut freq: HashMap<Asn, HashMap<Asn, usize>> = HashMap::new();
    for path in paths {
        for (a, b) in path.links() {
            *freq.entry(a).or_default().entry(b).or_default() += 1;
            *freq.entry(b).or_default().entry(a).or_default() += 1;
        }
    }

    let has_provider = |rels: &RelationshipMap, z: Asn, neigh: &HashMap<Asn, usize>| {
        neigh
            .keys()
            .any(|&w| rels.orientation(z, w) == Some(Orientation::Provider))
    };

    // Visit from the bottom of the hierarchy upward: small ASes have the
    // clearest upstream signal.
    for &z in degrees.ranked().iter().rev() {
        if clique_set.contains(&z) || degrees.transit_degree(z) == 0 {
            continue;
        }
        let Some(neigh) = freq.get(&z) else { continue };
        if has_provider(rels, z, neigh) {
            continue;
        }
        // Most frequent higher-ranked neighbor with an unclassified link.
        let mut cands: Vec<(&Asn, &usize)> = neigh
            .iter()
            .filter(|(&w, _)| {
                rels.get(z, w).is_none() && degrees.transit_degree(w) > degrees.transit_degree(z)
            })
            .collect();
        cands.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        if let Some((&w, _)) = cands.first() {
            rels.insert_c2p(z, w);
            report.c2p_providerless += 1;
        }
    }
}

/// [`infer_providerless`] over the arena: the nested
/// `HashMap<Asn, HashMap<Asn, usize>>` frequency table becomes one
/// sorted packed-pair list run-length-encoded into per-source
/// `(neighbor, count)` runs. Neighbors iterate in ascending id (==
/// ascending ASN) order, so keeping the strictly-greatest count
/// reproduces the old "max count, ties to lowest ASN" sort exactly.
/// Agreement with the path-slice definition is pinned by unit test.
pub(crate) fn infer_providerless_arena(
    arena: &PathArena,
    kept: &[bool],
    degrees: &DegreeTable,
    clique_set: &HashSet<Asn>,
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    let interner = arena.interner();
    let n = interner.len();

    // Directed adjacency occurrences of kept paths, both directions:
    // (source << 32) | neighbor, one entry per adjacency per path.
    let mut packed: Vec<u64> = Vec::with_capacity(2 * arena.total_hops());
    for p in 0..arena.len() {
        if !kept[p] {
            continue;
        }
        for w in arena.path(p).windows(2) {
            packed.push((w[0] as u64) << 32 | w[1] as u64);
            packed.push((w[1] as u64) << 32 | w[0] as u64);
        }
    }
    packed.sort_unstable();

    // Run-length encode into per-source neighbor/count runs.
    let mut nbrs: Vec<u32> = Vec::new();
    let mut cnts: Vec<u32> = Vec::new();
    let mut run_offsets = vec![0u32; n + 1];
    let mut i = 0usize;
    while i < packed.len() {
        let v = packed[i];
        let mut j = i + 1;
        while j < packed.len() && packed[j] == v {
            j += 1;
        }
        nbrs.push(v as u32);
        cnts.push(dense_id(j - i));
        run_offsets[(v >> 32) as usize + 1] += 1;
        i = j;
    }
    for s in 1..=n {
        run_offsets[s] += run_offsets[s - 1];
    }

    // Visit from the bottom of the hierarchy upward: small ASes have the
    // clearest upstream signal.
    for &z in degrees.ranked().iter().rev() {
        if clique_set.contains(&z) || degrees.transit_degree(z) == 0 {
            continue;
        }
        let Some(zid) = interner.get(z) else { continue };
        let (lo, hi) = (
            run_offsets[zid as usize] as usize,
            run_offsets[zid as usize + 1] as usize,
        );
        if lo == hi {
            continue;
        }
        if nbrs[lo..hi]
            .iter()
            .any(|&w| rels.orientation(z, interner.resolve(w)) == Some(Orientation::Provider))
        {
            continue;
        }
        // Most frequent higher-ranked neighbor with an unclassified link.
        let tz = degrees.transit_degree(z);
        let mut best: Option<(Asn, u32)> = None;
        for k in lo..hi {
            let w = interner.resolve(nbrs[k]);
            if rels.get(z, w).is_none() && degrees.transit_degree(w) > tz {
                let better = match best {
                    None => true,
                    Some((_, c)) => cnts[k] > c,
                };
                if better {
                    best = Some((w, cnts[k]));
                }
            }
        }
        if let Some((w, _)) = best {
            rels.insert_c2p(z, w);
            report.c2p_providerless += 1;
        }
    }
}

/// S10 — every observed link not yet classified is p2p. Peering links are
/// exactly the ones that never show up in a descent (peers export only
/// customer routes to each other), so this default captures them.
pub fn assign_remaining_p2p(
    paths: &[AsPath],
    rels: &mut RelationshipMap,
    report: &mut InferenceReport,
) {
    remaining_p2p_over(&observed_links(paths), rels, report);
}

/// [`assign_remaining_p2p`] over a precomputed sorted link list.
pub(crate) fn remaining_p2p_over(links: &[AsLink], rels: &mut RelationshipMap, report: &mut InferenceReport) {
    for link in links {
        if rels.get(link.a, link.b).is_none() {
            rels.insert_p2p(link.a, link.b);
            report.p2p_assigned += 1;
        }
    }
}

/// S11 — count links participating in a customer→provider cycle. A sound
/// inference has none; every counted link is an inference error the
/// validation framework will surface.
pub fn audit_cycles(rels: &RelationshipMap) -> usize {
    // lint: allow(panics, interner seeded from rels.ases covers every endpoint)
    try_audit_cycles(rels).expect("interner seeded from rels.ases covers every endpoint")
}

/// [`audit_cycles`] without the unreachable-panic shortcut: the engine's
/// S11 stage propagates the error instead of aborting the process.
pub(crate) fn try_audit_cycles(rels: &RelationshipMap) -> Result<usize, String> {
    // Dense ids over the c2p digraph, then exact SCCs: a link is on a
    // cycle iff both endpoints share a non-trivial component.
    let interner = AsnInterner::from_ases(rels.ases());
    let n = interner.len();
    let resolve = |a: Asn| {
        interner
            .get(a)
            .ok_or_else(|| format!("relationship endpoint {a} missing from its own interner"))
    };
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (c, p) in rels.c2p_pairs() {
        edges.push((resolve(c)?, resolve(p)?));
    }
    let adj = crate::csr::Csr::from_edges(n, &edges);
    let scc = crate::scc::tarjan(n, &adj);
    let mut on_cycle = 0usize;
    for &(ci, pi) in &edges {
        if scc.comp[ci as usize] == scc.comp[pi as usize] && scc.on_cycle(ci as usize) {
            on_cycle += 1;
        }
    }
    Ok(on_cycle)
}

/// Distinct links across a set of paths, in deterministic order.
fn observed_links(paths: &[AsPath]) -> Vec<AsLink> {
    let mut set: HashSet<AsLink> = HashSet::new();
    for p in paths {
        for (a, b) in p.links() {
            set.insert(AsLink::new(a, b));
        }
    }
    let mut v: Vec<AsLink> = set.into_iter().collect();
    v.sort();
    v
}

/// [`observed_links`] over the arena's kept paths: canonical packed
/// (min, max) id pairs, sort + dedup. Ids ascend with ASN, so the
/// resolved list comes out in the same `AsLink` order the hashed
/// version sorted into.
pub(crate) fn observed_links_arena(arena: &PathArena, kept: &[bool]) -> Vec<AsLink> {
    let interner = arena.interner();
    let mut packed: Vec<u64> = Vec::with_capacity(arena.total_hops());
    for p in 0..arena.len() {
        if !kept[p] {
            continue;
        }
        for w in arena.path(p).windows(2) {
            let (lo, hi) = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
            packed.push((lo as u64) << 32 | hi as u64);
        }
    }
    packed.sort_unstable();
    packed.dedup();
    packed
        .iter()
        .map(|&e| AsLink::new(interner.resolve((e >> 32) as u32), interner.resolve(e as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths(raw: &[&[u32]]) -> Vec<AsPath> {
        raw.iter()
            .map(|p| AsPath::from_u32s(p.iter().copied()))
            .collect()
    }

    fn degrees_for(raw: &[&[u32]]) -> DegreeTable {
        use crate::sanitize::{sanitize, SanitizeConfig};
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        DegreeTable::compute(&sanitize(&ps, &SanitizeConfig::default()))
    }

    #[test]
    fn poison_detection() {
        let clique: HashSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        assert!(is_poisoned(&AsPath::from_u32s([9, 1, 7, 2, 8]), &clique));
        assert!(!is_poisoned(&AsPath::from_u32s([9, 1, 2, 8]), &clique));
        assert!(!is_poisoned(&AsPath::from_u32s([9, 1, 7, 8]), &clique));
        assert!(!is_poisoned(&AsPath::from_u32s([1, 7, 8]), &clique));
        // Same clique AS twice would be a loop, caught by S1, not here.
    }

    #[test]
    fn discard_poisoned_counts() {
        let clique: HashSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let mut report = InferenceReport::default();
        let kept = discard_poisoned(paths(&[&[9, 1, 7, 2], &[9, 1, 2, 8]]), &clique, &mut report);
        assert_eq!(kept.len(), 1);
        assert_eq!(report.discarded_poisoned, 1);
    }

    #[test]
    fn topdown_infers_descending_chain() {
        // Path 9 → 1 → 5 → 7: clique {1}; visiting 1 is implicit (clique
        // pre-visited); when 5 is visited, 1 (before it) is visited and 7
        // (after) is not → infer 5→7 p2c. The 1→5 link is inferred when
        // visiting 1?? — no: clique members are pre-visited, so the walk
        // happens when z=1 is dequeued in rank order with hops[i-1]=9
        // unvisited… 9 is ranked *lower*. The chain 1→5→7 is instead
        // inferred when visiting z=5: i=2, hops[1]=1 visited → walk infers
        // (5,7). The (1,5) link needs a path where 1 is preceded by a
        // visited AS: add a second clique member 2 and a path 2 1 5.
        let raw: Vec<&[u32]> = vec![&[9, 2, 1, 5, 7], &[9, 1, 5, 7]];
        let degrees = degrees_for(&raw);
        let clique: HashSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let mut rels = RelationshipMap::new();
        rels.insert_p2p(Asn(1), Asn(2));
        let mut report = InferenceReport::default();
        infer_topdown(&paths(&raw), &degrees, &clique, &mut rels, &mut report);
        assert!(rels.is_c2p(Asn(5), Asn(1)), "5 should be 1's customer");
        assert!(rels.is_c2p(Asn(7), Asn(5)), "7 should be 5's customer");
        assert_eq!(report.c2p_from_topdown, 2);
        assert_eq!(report.conflicts, 0);
    }

    #[test]
    fn topdown_does_not_classify_peak_link() {
        // 9 → 5 → 1: ascending toward the clique; the 9–5 and 5–1 links
        // must NOT be inferred by the top-down walk (no visited AS
        // precedes 5 when it is visited… 1 comes *after* 5 here).
        let raw: Vec<&[u32]> = vec![&[9, 5, 1]];
        let degrees = degrees_for(&raw);
        let clique: HashSet<Asn> = [Asn(1)].into_iter().collect();
        let mut rels = RelationshipMap::new();
        let mut report = InferenceReport::default();
        infer_topdown(&paths(&raw), &degrees, &clique, &mut rels, &mut report);
        assert_eq!(rels.len(), 0);
        assert_eq!(report.c2p_from_topdown, 0);
    }

    #[test]
    fn topdown_conflict_stops_walk() {
        let raw: Vec<&[u32]> = vec![&[9, 2, 1, 5, 7]];
        let degrees = degrees_for(&raw);
        let clique: HashSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let mut rels = RelationshipMap::new();
        // Pre-classify 5–7 *against* the walk: 5 is 7's customer.
        rels.insert_c2p(Asn(5), Asn(7));
        let mut report = InferenceReport::default();
        infer_topdown(&paths(&raw), &degrees, &clique, &mut rels, &mut report);
        // Walk inferred (1,5) then hit the conflict on (5,7); later
        // visits may re-encounter the same conflict.
        assert!(rels.is_c2p(Asn(5), Asn(1)));
        assert!(report.conflicts >= 1);
        // The conflicting link retains its earlier classification.
        assert!(rels.is_c2p(Asn(5), Asn(7)));
    }

    #[test]
    fn stub_clique_links_become_c2p() {
        let raw: Vec<&[u32]> = vec![&[9, 1, 5], &[9, 1, 6]];
        let degrees = degrees_for(&raw);
        let clique: HashSet<Asn> = [Asn(1)].into_iter().collect();
        let mut rels = RelationshipMap::new();
        let mut report = InferenceReport::default();
        infer_stub_clique(&paths(&raw), &degrees, &clique, &mut rels, &mut report);
        // 5, 6, 9 are stubs adjacent to clique member 1.
        assert!(rels.is_c2p(Asn(5), Asn(1)));
        assert!(rels.is_c2p(Asn(6), Asn(1)));
        assert!(rels.is_c2p(Asn(9), Asn(1)));
        assert_eq!(report.c2p_stub_clique, 3);
    }

    #[test]
    fn remaining_links_become_p2p() {
        let raw: Vec<&[u32]> = vec![&[9, 5, 7]];
        let mut rels = RelationshipMap::new();
        rels.insert_c2p(Asn(7), Asn(5));
        let mut report = InferenceReport::default();
        assign_remaining_p2p(&paths(&raw), &mut rels, &mut report);
        assert!(rels.is_p2p(Asn(9), Asn(5)));
        assert!(rels.is_c2p(Asn(7), Asn(5)), "existing inference untouched");
        assert_eq!(report.p2p_assigned, 1);
    }

    #[test]
    fn anomaly_repair_demotes_giant_customers() {
        // Transit degrees: make 5 huge and 7 tiny via synthetic paths.
        let raw: Vec<&[u32]> = vec![
            &[90, 5, 91],
            &[92, 5, 93],
            &[94, 5, 95],
            &[96, 5, 97],
            &[98, 5, 99],
            &[80, 5, 81],
            &[82, 5, 83],
            &[84, 5, 85],
            &[86, 5, 87],
            &[88, 5, 89],
            &[66, 5, 67],
            &[68, 5, 69],
            &[70, 7, 71], // 7 transits a little
        ];
        let degrees = degrees_for(&raw);
        assert!(degrees.transit_degree(Asn(5)) >= 20);
        assert_eq!(degrees.transit_degree(Asn(7)), 2);
        let mut rels = RelationshipMap::new();
        rels.insert_c2p(Asn(5), Asn(7)); // giant customer of a minnow
        let mut report = InferenceReport::default();
        let cfg = InferenceConfig::default();
        repair_anomalies(&degrees, &cfg, &mut rels, &mut report);
        assert!(rels.is_p2p(Asn(5), Asn(7)));
        assert_eq!(report.repaired_anomalies, 1);
    }

    #[test]
    fn providerless_transit_gets_a_provider() {
        // 5 transits (appears mid-path) but has no inferred provider;
        // 3 is its higher-ranked frequent neighbor.
        let raw: Vec<&[u32]> = vec![
            &[9, 3, 5, 7],
            &[8, 3, 5, 6],
            &[4, 3, 2, 11],
            &[12, 3, 13, 14],
        ];
        let degrees = degrees_for(&raw);
        assert!(degrees.transit_degree(Asn(3)) > degrees.transit_degree(Asn(5)));
        let clique: HashSet<Asn> = HashSet::new();
        let mut rels = RelationshipMap::new();
        let mut report = InferenceReport::default();
        infer_providerless(&paths(&raw), &degrees, &clique, &mut rels, &mut report);
        assert!(rels.is_c2p(Asn(5), Asn(3)), "{rels:?}");
        assert!(report.c2p_providerless >= 1);
    }

    #[test]
    fn cycle_audit_counts_only_cycles() {
        let mut rels = RelationshipMap::new();
        rels.insert_c2p(Asn(1), Asn(2));
        rels.insert_c2p(Asn(2), Asn(3));
        assert_eq!(audit_cycles(&rels), 0);
        rels.insert_c2p(Asn(3), Asn(1)); // 1→2→3→1
        assert_eq!(audit_cycles(&rels), 3);
        rels.insert_c2p(Asn(9), Asn(1)); // dangling customer, not in cycle
        assert_eq!(audit_cycles(&rels), 3);
    }

    #[test]
    fn vp_provider_inference_uses_share() {
        use crate::sanitize::{sanitize, SanitizeConfig};
        // VP 100 sees 10 prefixes: 8 via neighbor 5, 2 via neighbor 6.
        let mut ps = PathSet::new();
        for i in 0..8u32 {
            ps.push(PathSample {
                vp: Asn(100),
                prefix: Ipv4Prefix::new(i << 8, 24).unwrap(),
                path: AsPath::from_u32s([100, 5, 50 + i]),
            });
        }
        for i in 8..10u32 {
            ps.push(PathSample {
                vp: Asn(100),
                prefix: Ipv4Prefix::new(i << 8, 24).unwrap(),
                path: AsPath::from_u32s([100, 6, 50 + i]),
            });
        }
        let sanitized = sanitize(&ps, &SanitizeConfig::default());
        let degrees = DegreeTable::compute(&sanitized);
        let mut rels = RelationshipMap::new();
        let mut report = InferenceReport::default();
        let cfg = InferenceConfig::default();
        infer_vp_providers(&sanitized, &degrees, &cfg, &mut rels, &mut report);
        assert!(rels.is_c2p(Asn(100), Asn(5)), "80% share ⇒ provider");
        assert_eq!(rels.get(Asn(100), Asn(6)), None, "20% share ⇒ unknown");
        assert_eq!(report.c2p_from_vps, 1);
    }

    fn sanitized_for(raw: &[&[u32]]) -> SanitizedPaths {
        use crate::sanitize::{sanitize, SanitizeConfig};
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    /// Pin: the arena-driven S4/S5/S9/S10 step implementations produce
    /// the exact relationship map and report counters of the retained
    /// path-slice definitions on a fixture with duplicates, a poisoned
    /// path, and a provider-less transit AS.
    #[test]
    fn arena_steps_agree_with_path_slice_steps() {
        let raw: Vec<&[u32]> = vec![
            &[9, 2, 1, 5, 7],
            &[9, 1, 5, 7],
            &[9, 1, 5, 7], // duplicate: multiplicity must not change inference
            &[8, 2, 6, 11],
            &[9, 1, 6, 11, 12],
            &[7, 5, 3, 4],
            &[9, 1, 7, 2, 8], // poisoned: non-clique 7 between clique 1 and 2
            &[10, 5, 7],
        ];
        let sanitized = sanitized_for(&raw);
        let degrees = DegreeTable::compute(&sanitized);
        let clique: HashSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let arena = sanitized.arena();

        // Reference: the pre-arena sequence — hash-dedup distinct paths,
        // sort, poison-filter, then the path-slice step functions.
        let distinct: Vec<AsPath> = {
            let set: HashSet<&AsPath> = sanitized.paths().collect();
            let mut v: Vec<AsPath> = set.into_iter().cloned().collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut report_old = InferenceReport::default();
        let kept_paths = discard_poisoned(distinct, &clique, &mut report_old);
        let mut rels_old = RelationshipMap::new();
        rels_old.insert_p2p(Asn(1), Asn(2));
        infer_topdown(&kept_paths, &degrees, &clique, &mut rels_old, &mut report_old);
        infer_providerless(&kept_paths, &degrees, &clique, &mut rels_old, &mut report_old);
        assign_remaining_p2p(&kept_paths, &mut rels_old, &mut report_old);

        // Arena-driven versions of the same steps.
        let interner = arena.interner();
        let mut clique_mask = vec![false; interner.len()];
        for &a in &clique {
            if let Some(id) = interner.get(a) {
                clique_mask[id as usize] = true;
            }
        }
        let mut report_new = InferenceReport::default();
        let mut kept = vec![true; arena.len()];
        let mut discarded = 0usize;
        for (p, keep) in kept.iter_mut().enumerate() {
            if is_poisoned_ids(arena.path(p), &clique_mask) {
                *keep = false;
                discarded += 1;
            }
        }
        report_new.discarded_poisoned = discarded;
        let mut rels_new = RelationshipMap::new();
        rels_new.insert_p2p(Asn(1), Asn(2));
        infer_topdown_arena(&arena, &kept, &degrees, &clique_mask, &mut rels_new, &mut report_new);
        infer_providerless_arena(&arena, &kept, &degrees, &clique, &mut rels_new, &mut report_new);
        let links = observed_links_arena(&arena, &kept);
        assert_eq!(links, observed_links(&kept_paths));
        remaining_p2p_over(&links, &mut rels_new, &mut report_new);

        assert_eq!(report_old.discarded_poisoned, report_new.discarded_poisoned);
        assert_eq!(report_old.c2p_from_topdown, report_new.c2p_from_topdown);
        assert_eq!(report_old.conflicts, report_new.conflicts);
        assert_eq!(report_old.c2p_providerless, report_new.c2p_providerless);
        assert_eq!(report_old.p2p_assigned, report_new.p2p_assigned);
        assert_eq!(rels_old, rels_new);
        assert!(!rels_new.is_empty(), "fixture must actually infer links");
    }
}
