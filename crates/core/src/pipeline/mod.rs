//! Steps S4–S11 — the ASRank relationship-inference pipeline.
//!
//! [`infer`] wires the whole algorithm together: sanitize (S1), rank by
//! transit degree (S2), infer the clique (S3), then run the relationship
//! steps in [`steps`]. The output [`Inference`] carries the relationship
//! map plus everything needed to audit how each link was classified.

pub mod steps;

use crate::clique::{infer_clique, CliqueConfig};
use crate::degree::DegreeTable;
use crate::patharena::PathArena;
use crate::sanitize::{sanitize_with, SanitizeConfig, SanitizeReport};
use asrank_types::prelude::*;
use asrank_types::EngineError;
use serde::{Deserialize, Serialize};

/// Pipeline configuration. `Default` matches the paper's published
/// parameters where known and conservative values elsewhere.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct InferenceConfig {
    /// S1: sanitization (IXP ASN list).
    pub sanitize: SanitizeConfig,
    /// S3: clique inference parameters.
    pub clique: CliqueConfig,
    /// S6: minimum share of a VP's distinct prefixes that must arrive via
    /// a first-hop neighbor before the neighbor is inferred to be the
    /// VP's provider.
    pub vp_provider_threshold: f64,
    /// S7: a c2p inference is demoted to p2p when the customer's transit
    /// degree exceeds the provider's by this factor.
    pub degree_flip_ratio: f64,
    /// Ablation switches: disable individual steps to measure their
    /// contribution (all `false` = full pipeline).
    pub ablation: Ablation,
    /// Thread budget for the fan-out stages (S1 sanitize, S6 evidence
    /// collection). The default (`auto`) uses all available cores;
    /// [`Parallelism::sequential`] runs single-threaded. Results are
    /// identical for every value.
    // lint: allow(fp-excluded, thread budget only — outputs are bit-identical for every value, so it must not invalidate cached artifacts)
    pub parallelism: Parallelism,
    /// Owner-block width (in dense ids) for the cone sweep's pair
    /// merge. `0` (the default) sizes blocks automatically so each
    /// block's sort working set stays cache-resident; any other value
    /// forces that width. A layout knob like `parallelism`: the merged
    /// pairs are bit-identical for every value, so it must not
    /// invalidate cached artifacts.
    // lint: allow(fp-excluded, cache-blocking width only — outputs are bit-identical for every value, so it must not invalidate cached artifacts)
    pub cone_sweep_block: usize,
    /// Dirty-sample fraction above which a
    /// [`crate::delta::DeltaSession::refresh`] abandons the incremental
    /// walk and recomputes from scratch. `benches/delta.rs` measured the
    /// crossover at the 8k tier and found none up to 20% churn: the
    /// session's maintained evidence makes the walk's S1/S2/arena/S6
    /// strictly cheaper than their cold scans while every other stage
    /// runs identically, so the walk undercuts a cold rebuild at every
    /// churn fraction. The default of `1.0` therefore disables the
    /// fallback for any single-emission churn up to full replacement;
    /// the knob remains as an operational escape hatch (the fraction
    /// can exceed 1.0 for withdraw-heavy streams, and other datasets
    /// may balance differently). A scheduling policy, not an algorithm
    /// parameter: both paths emit byte-identical artifacts.
    // lint: allow(fp-excluded, refresh scheduling policy only — outputs are bit-identical for every value, so it must not invalidate cached artifacts)
    pub delta_cold_cutover: f64,
}

/// Per-step ablation switches (used by the E12 ablation experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ablation {
    /// Skip S4 (poisoned-path discard).
    pub no_poison_filter: bool,
    /// Skip S6 (VP-side provider inference).
    pub no_vp_step: bool,
    /// Skip S7 (degree-anomaly repair).
    pub no_anomaly_repair: bool,
    /// Skip S8 (stub-to-clique links).
    pub no_stub_clique: bool,
    /// Skip S9 (providers for provider-less transit ASes).
    pub no_providerless: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            sanitize: SanitizeConfig::default(),
            clique: CliqueConfig::default(),
            // The paper's published parameters: a first-hop neighbor must
            // carry ≥ 35% of a VP's prefixes to be inferred its provider
            // (S6), and a customer whose transit degree exceeds its
            // provider's 10× triggers the S7 demotion.
            vp_provider_threshold: 0.35,
            degree_flip_ratio: 10.0,
            ablation: Ablation::default(),
            parallelism: Parallelism::default(),
            cone_sweep_block: 0,
            delta_cold_cutover: 1.0,
        }
    }
}

impl InferenceConfig {
    /// Defaults plus a known IXP route-server ASN list.
    pub fn with_ixps<I: IntoIterator<Item = Asn>>(ixps: I) -> Self {
        InferenceConfig {
            sanitize: SanitizeConfig::with_ixps(ixps),
            ..Default::default()
        }
    }
}

/// Per-step accounting of the pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// S1 counters.
    pub sanitize: SanitizeReport,
    /// S4: distinct paths discarded as poisoned.
    pub discarded_poisoned: usize,
    /// S5: c2p links inferred by the top-down walk.
    pub c2p_from_topdown: usize,
    /// S5: walks aborted by a conflicting earlier inference.
    pub conflicts: usize,
    /// S6: c2p links inferred from VP table shares.
    pub c2p_from_vps: usize,
    /// S7: c2p inferences demoted to p2p for degree anomalies.
    pub repaired_anomalies: usize,
    /// S8: stub-to-clique c2p links.
    pub c2p_stub_clique: usize,
    /// S9: providers assigned to otherwise provider-less transit ASes.
    pub c2p_providerless: usize,
    /// S10: remaining links classified p2p.
    pub p2p_assigned: usize,
    /// S11: links participating in a c2p cycle (audit only).
    pub cycle_links: usize,
    /// Total classified links.
    pub total_links: usize,
}

/// Full inference output.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The inferred relationship for every observed (non-discarded) link.
    pub relationships: RelationshipMap,
    /// The inferred Tier-1 clique, sorted by ASN.
    pub clique: Vec<Asn>,
    /// Transit/node degrees and the visiting order.
    pub degrees: DegreeTable,
    /// Per-step accounting.
    pub report: InferenceReport,
}

/// Run the full ASRank pipeline over observed paths.
///
/// ```
/// use asrank_core::pipeline::{infer, InferenceConfig};
/// use asrank_types::{AsPath, Asn, Ipv4Prefix, PathSample, PathSet};
///
/// // Two vantage points observing a tiny hierarchy: clique {1, 2}.
/// let paths: PathSet = [
///     [100, 10, 1, 2, 20, 200],
///     [200, 20, 2, 1, 10, 100],
/// ]
/// .into_iter()
/// .enumerate()
/// .map(|(i, hops)| PathSample {
///     vp: Asn(hops[0]),
///     prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
///     path: AsPath::from_u32s(hops),
/// })
/// .collect();
///
/// let inference = infer(&paths, &InferenceConfig::default());
/// assert_eq!(inference.clique, vec![Asn(1), Asn(2)]);
/// assert!(inference.relationships.is_p2p(Asn(1), Asn(2)));
/// assert!(inference.relationships.is_c2p(Asn(10), Asn(1)));
/// ```
pub fn infer(paths: &PathSet, cfg: &InferenceConfig) -> Inference {
    // lint: allow(panics, every stage body is total over sanitized input; only a RelationshipMap corrupting its own endpoint set can fail S11)
    try_infer(paths, cfg).expect("inference stages are total over sanitized input")
}

/// [`infer`] with structured errors: drives the staged engine
/// ([`crate::engine::Snapshot`]) and surfaces any stage failure as an
/// [`EngineError`] instead of panicking.
pub fn try_infer(paths: &PathSet, cfg: &InferenceConfig) -> Result<Inference, EngineError> {
    let mut snapshot = crate::engine::Snapshot::new(paths, cfg.clone());
    let inference = snapshot.inference()?;
    Ok(Inference::clone(&inference))
}

/// The original single-call pipeline, kept as the reference
/// implementation the staged engine is tested bit-identical against
/// (see `tests/engine_equivalence.rs`). Prefer [`infer`] — it memoizes
/// through the engine — for everything except equivalence oracles.
pub fn infer_monolithic(paths: &PathSet, cfg: &InferenceConfig) -> Inference {
    // S1: sanitize.
    let sanitized = sanitize_with(paths, &cfg.sanitize, cfg.parallelism);
    let mut report = InferenceReport {
        sanitize: sanitized.report,
        ..Default::default()
    };

    // S2: degrees & visiting order.
    let degrees = DegreeTable::compute(&sanitized);

    // S3: clique.
    let clique = infer_clique(&sanitized, &degrees, &cfg.clique);

    // Interned path arena: paths are parsed, deduplicated, and indexed
    // exactly once; S4–S10 share this view.
    let arena = PathArena::build_with(&sanitized, cfg.parallelism);

    // S4–S10.
    let relationships = steps::run(&arena, &sanitized, &degrees, &clique, cfg, &mut report);

    report.total_links = relationships.len();
    Inference {
        relationships,
        clique,
        degrees,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test on a hand-built hierarchy:
    ///
    /// ```text
    ///   1 ===== 2      clique
    ///  / \     / \
    /// 10  11 20  21    transit
    /// |   |  |   |
    /// 100 110 200 210  stubs (VPs at 100 and 210)
    /// ```
    fn hierarchy_paths() -> PathSet {
        let routes: Vec<&[u32]> = vec![
            // VP 100 toward everything.
            &[100, 10, 1, 11, 110],
            &[100, 10, 1, 2, 20, 200],
            &[100, 10, 1, 2, 21, 210],
            &[100, 10, 1, 2, 20],
            &[100, 10, 1, 2, 21],
            &[100, 10, 1, 11],
            &[100, 10, 1, 2],
            &[100, 10, 1],
            // VP 210 toward everything.
            &[210, 21, 2, 20, 200],
            &[210, 21, 2, 1, 10, 100],
            &[210, 21, 2, 1, 11, 110],
            &[210, 21, 2, 1, 10],
            &[210, 21, 2, 1, 11],
            &[210, 21, 2, 20],
            &[210, 21, 2, 1],
            &[210, 21, 2],
        ];
        routes
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn end_to_end_hierarchy() {
        let inf = infer(&hierarchy_paths(), &InferenceConfig::default());
        assert_eq!(inf.clique, vec![Asn(1), Asn(2)]);
        let r = &inf.relationships;
        assert!(r.is_p2p(Asn(1), Asn(2)), "clique link must be p2p");
        for (c, p) in [(10u32, 1u32), (11, 1), (20, 2), (21, 2)] {
            assert!(
                r.is_c2p(Asn(c), Asn(p)),
                "expected {c} c2p {p}, got {:?}",
                r.get(Asn(c), Asn(p))
            );
        }
        for (c, p) in [(100u32, 10u32), (110, 11), (200, 20), (210, 21)] {
            assert!(
                r.is_c2p(Asn(c), Asn(p)),
                "expected {c} c2p {p}, got {:?}",
                r.get(Asn(c), Asn(p))
            );
        }
        // Every observed link classified.
        assert_eq!(inf.report.total_links, 9);
    }

    #[test]
    fn report_accounts_for_every_classification() {
        let inf = infer(&hierarchy_paths(), &InferenceConfig::default());
        let rep = &inf.report;
        let (c2p, p2p, s2s) = inf.relationships.counts();
        assert_eq!(s2s, 0);
        assert_eq!(c2p + p2p, rep.total_links);
        // Clique p2p links are assigned before S10, so p2p_assigned counts
        // only leftovers.
        assert!(rep.p2p_assigned <= p2p);
        assert_eq!(
            rep.c2p_from_topdown + rep.c2p_from_vps + rep.c2p_stub_clique + rep.c2p_providerless
                - rep.repaired_anomalies,
            c2p,
            "c2p accounting mismatch: {rep:?}"
        );
    }

    #[test]
    fn empty_input() {
        let inf = infer(&PathSet::new(), &InferenceConfig::default());
        assert!(inf.relationships.is_empty());
        assert!(inf.clique.is_empty());
        assert_eq!(inf.report.total_links, 0);
    }
}
