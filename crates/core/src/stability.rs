//! Inference stability via vantage-point resampling.
//!
//! The paper argues (and its successors quantify) that inference
//! confidence varies enormously across links: a link crossed by hundreds
//! of VPs' paths is effectively certain, while one seen from a single VP
//! is a guess. This module makes that operational with a **jackknife
//! over vantage points**: re-run the pipeline on `k` half-VP subsamples
//! and record, per link, how often each classification recurs. Links
//! whose classification flips across subsamples are exactly the
//! weakly-observed tail of [`crate::visibility`].

use crate::pipeline::{infer, InferenceConfig};
use asrank_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stability of one link's classification across subsamples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStability {
    /// Subsamples in which the link was observed at all.
    pub observed: usize,
    /// Subsamples agreeing with the full-data classification.
    pub agreeing: usize,
}

impl LinkStability {
    /// Agreement ratio over the subsamples that observed the link
    /// (1.0 when never observed — no evidence against).
    pub fn agreement(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            self.agreeing as f64 / self.observed as f64
        }
    }
}

/// Result of a jackknife run.
#[derive(Debug, Clone, Default)]
pub struct StabilityReport {
    per_link: HashMap<AsLink, LinkStability>,
    /// Number of subsamples executed.
    pub subsamples: usize,
}

impl StabilityReport {
    /// Stability of one link (`None` when the full-data inference never
    /// classified it).
    pub fn get(&self, a: Asn, b: Asn) -> Option<LinkStability> {
        self.per_link.get(&AsLink::new(a, b)).copied()
    }

    /// Iterate over all tracked links.
    pub fn iter(&self) -> impl Iterator<Item = (AsLink, LinkStability)> + '_ {
        self.per_link.iter().map(|(&l, &s)| (l, s))
    }

    /// Links whose agreement falls below `threshold` (the unstable tail),
    /// sorted.
    pub fn unstable(&self, threshold: f64) -> Vec<AsLink> {
        let mut v: Vec<AsLink> = self
            .per_link
            .iter()
            .filter(|(_, s)| s.observed > 0 && s.agreement() < threshold)
            .map(|(&l, _)| l)
            .collect();
        v.sort();
        v
    }

    /// Mean agreement across links observed at least once.
    pub fn mean_agreement(&self) -> f64 {
        let obs: Vec<f64> = self
            .per_link
            .values()
            .filter(|s| s.observed > 0)
            .map(LinkStability::agreement)
            .collect();
        if obs.is_empty() {
            1.0
        } else {
            obs.iter().sum::<f64>() / obs.len() as f64
        }
    }
}

/// Deterministically split VPs into a half-subsample keyed by `round`.
fn half_sample(vps: &[Asn], round: u64, seed: u64) -> std::collections::HashSet<Asn> {
    vps.iter()
        .copied()
        .filter(|vp| {
            // splitmix-style per-(vp, round) coin.
            let mut x = seed
                ^ (vp.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ round.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 30;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            x & 1 == 0
        })
        .collect()
}

/// Run a jackknife: `subsamples` half-VP re-inferences compared against
/// the full-data inference.
pub fn jackknife(
    paths: &PathSet,
    cfg: &InferenceConfig,
    subsamples: usize,
    seed: u64,
) -> StabilityReport {
    let full = infer(paths, cfg);
    let mut report = StabilityReport {
        per_link: full
            .relationships
            .iter()
            .map(|(l, _)| (l, LinkStability::default()))
            .collect(),
        subsamples,
    };
    let mut vps: Vec<Asn> = paths.vantage_points().into_iter().collect();
    vps.sort();

    for round in 0..subsamples {
        let keep = half_sample(&vps, round as u64, seed);
        let subset: PathSet = paths
            .iter()
            .filter(|s| keep.contains(&s.vp))
            .cloned()
            .collect();
        if subset.is_empty() {
            continue;
        }
        let sub = infer(&subset, cfg);
        for (link, rel) in sub.relationships.iter() {
            if let Some(stab) = report.per_link.get_mut(&link) {
                stab.observed += 1;
                if full.relationships.get(link.a, link.b) == Some(rel) {
                    stab.agreeing += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy_paths() -> PathSet {
        // Several VPs over a stable hierarchy: classifications should be
        // highly stable under VP subsampling.
        let routes: Vec<&[u32]> = vec![
            &[100, 10, 1, 2, 20, 200],
            &[100, 10, 1, 2, 21, 210],
            &[200, 20, 2, 1, 10, 100],
            &[200, 20, 2, 1, 11, 110],
            &[210, 21, 2, 1, 10, 100],
            &[110, 11, 1, 2, 20, 200],
            &[110, 11, 1, 2, 21, 210],
            &[210, 21, 2, 20, 200],
        ];
        routes
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect()
    }

    #[test]
    fn stable_hierarchy_agrees() {
        let report = jackknife(&hierarchy_paths(), &InferenceConfig::default(), 8, 1);
        assert_eq!(report.subsamples, 8);
        assert!(
            report.mean_agreement() > 0.8,
            "mean agreement {:.3}",
            report.mean_agreement()
        );
        // The clique link is the most-observed link: must be tracked.
        let s = report.get(Asn(1), Asn(2)).expect("clique link tracked");
        assert!(s.observed > 0);
    }

    #[test]
    fn deterministic() {
        let a = jackknife(&hierarchy_paths(), &InferenceConfig::default(), 4, 9);
        let b = jackknife(&hierarchy_paths(), &InferenceConfig::default(), 4, 9);
        let mut la: Vec<_> = a.iter().collect();
        let mut lb: Vec<_> = b.iter().collect();
        la.sort_by_key(|(l, _)| (l.a, l.b));
        lb.sort_by_key(|(l, _)| (l.a, l.b));
        assert_eq!(la, lb);
    }

    #[test]
    fn unstable_listing_respects_threshold() {
        let report = jackknife(&hierarchy_paths(), &InferenceConfig::default(), 6, 2);
        let none = report.unstable(0.0);
        assert!(none.is_empty(), "nothing is below agreement 0.0");
        let all = report.unstable(1.01);
        // Everything observed is below 101% agreement.
        let observed = report.iter().filter(|(_, s)| s.observed > 0).count();
        assert_eq!(all.len(), observed);
    }

    #[test]
    fn half_sample_varies_by_round() {
        let vps: Vec<Asn> = (1..40).map(Asn).collect();
        let a = half_sample(&vps, 0, 7);
        let b = half_sample(&vps, 1, 7);
        assert_ne!(a, b);
        // Roughly half retained.
        assert!(a.len() > 10 && a.len() < 30, "{}", a.len());
    }
}
