//! The interned path arena — the shared, deduplicated path substrate.
//!
//! Every path-consuming stage of the system (S4/S5 top-down inference,
//! the two path-observed cone definitions, valley-free grading, the
//! audit) needs the same three things from [`SanitizedPaths`]: the
//! *distinct* paths, a dense-id encoding of their hops, and — for the
//! rank-ordered S5 walk — an inverted index from AS to the paths that
//! contain it. Before this module each consumer rebuilt those views
//! independently (a `HashSet<&AsPath>` + clone here, an interner +
//! `Vec<Vec<u32>>` sort there), so the pipeline paid for parsing,
//! hashing, and deduplicating the same paths several times over.
//!
//! [`PathArena`] performs that work exactly once:
//!
//! * **Dedup by sort.** Sample indices are sorted by their `Asn` hop
//!   slices and collapsed into runs; each run becomes one distinct path
//!   with a **multiplicity** count. Because the bulk [`AsnInterner`]
//!   assigns ids in ascending ASN order, lexicographic order of id
//!   slices equals lexicographic order of ASN slices — the arena's path
//!   order is *identical* to the old `sort_by(|a, b| a.0.cmp(&b.0))`
//!   over cloned `AsPath`s, so downstream traversal order (and hence
//!   every inference) is bit-for-bit unchanged.
//! * **CSR flattening.** Distinct paths live in one `offsets`/`ids`
//!   arena of dense `u32` ids: path `p` is `ids[offsets[p]..offsets[p+1]]`.
//!   No per-path heap allocation survives the build.
//! * **Inverted index.** A counting sort over the flat `ids` produces,
//!   for every dense id, the `(path, position)` occurrences packed into
//!   one `u64` each — ascending by path then position, matching the
//!   insertion order of the hash-map index it replaces.
//!
//! The id-mapping pass fans out over worker threads ([`crate::par`]) in
//! contiguous path ranges reassembled in range order, so the arena is
//! bit-identical for every thread count.

use crate::par;
use crate::sanitize::SanitizedPaths;
use asrank_types::prelude::*;
use asrank_types::FxHashMap;
use std::sync::Arc;

/// Deduplicated, interned, CSR-flattened view of a sanitized path set.
///
/// See the [module docs](self) for the layout. Construct with
/// [`PathArena::build`] / [`PathArena::build_with`] (or
/// [`PathArena::from_raw`] for audit fixtures), then hand shared
/// references to every consumer — the arena is immutable.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    /// Dense ids over every AS appearing in a distinct path; ids ascend
    /// with ASN.
    interner: AsnInterner,
    /// Path `p` spans `ids[offsets[p] as usize..offsets[p + 1] as usize]`.
    offsets: Vec<u32>,
    /// Hop ids of all distinct paths, concatenated in sorted path order.
    ids: Vec<u32>,
    /// Number of sanitized samples collapsed into each distinct path
    /// (≥ 1): the evidence weight dedup would otherwise discard.
    multiplicity: Vec<u32>,
    /// Occurrences of id `a` span
    /// `inv_entries[inv_offsets[a]..inv_offsets[a + 1]]`.
    inv_offsets: Vec<u32>,
    /// `(path << 32) | position`, ascending within each id's span.
    inv_entries: Vec<u64>,
}

impl PathArena {
    /// Build the arena from sanitized paths with the default thread
    /// budget.
    pub fn build(sanitized: &SanitizedPaths) -> Self {
        Self::build_with(sanitized, Parallelism::auto())
    }

    /// [`PathArena::build`] with an explicit thread budget. The result
    /// is bit-identical for every `par` value.
    pub fn build_with(sanitized: &SanitizedPaths, par: Parallelism) -> Self {
        let samples = &sanitized.samples;

        // Flatten every sample's raw hops into one contiguous buffer so
        // the dedup sort compares cache-local u32 slices instead of
        // chasing pointers into per-sample `Vec<Asn>` allocations.
        let total_raw: usize = samples.iter().map(|s| s.path.len()).sum();
        let mut tmp_offsets: Vec<u32> = Vec::with_capacity(samples.len() + 1);
        tmp_offsets.push(0);
        let mut tmp_hops: Vec<u32> = Vec::with_capacity(total_raw);
        for s in samples {
            tmp_hops.extend(s.path.iter().map(|a| a.0));
            tmp_offsets.push(dense_id(tmp_hops.len()));
        }
        let hops_of = |i: u32| {
            &tmp_hops[tmp_offsets[i as usize] as usize..tmp_offsets[i as usize + 1] as usize]
        };

        // Sort sample indices by hop content; equal runs collapse into
        // one distinct path with a multiplicity count. A packed
        // (hop0, hop1) prefix key resolves almost every comparison in
        // registers — sanitized paths have ≥ 2 hops, and packed-u64
        // order equals lexicographic (hop0, hop1) order. sort_unstable
        // is deterministic (pattern-defeating quicksort, no randomness);
        // fully equal keys reference identical hop slices, so which
        // sample represents a run cannot matter.
        let prefix_key = |h: &[u32]| -> u64 {
            let h0 = h.first().copied().unwrap_or(0) as u64;
            let h1 = h.get(1).copied().unwrap_or(0) as u64;
            h0 << 32 | h1
        };
        let mut order: Vec<(u64, u32)> = (0..dense_id(samples.len()))
            .map(|i| (prefix_key(hops_of(i)), i))
            .collect();
        order.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| hops_of(a.1).cmp(hops_of(b.1)))
        });

        // Counting pre-pass: a sample starts a new run exactly when its
        // prefix key or hop slice differs from its predecessor's (equal
        // runs are contiguous after the sort, and the key comparison
        // short-circuits almost every slice compare). Knowing the
        // distinct-path and total-hop counts up front lets every buffer
        // below be allocated once at its exact final size — the build
        // used to grow reps/multiplicity by doubling and pay a second
        // copy of `ids` through per-chunk Vecs + `concat`.
        let new_run = |w: usize| -> bool {
            w == 0
                || order[w - 1].0 != order[w].0
                || hops_of(order[w - 1].1) != hops_of(order[w].1)
        };
        let mut distinct = 0usize;
        let mut total = 0usize;
        for w in 0..order.len() {
            if new_run(w) {
                distinct += 1;
                total += hops_of(order[w].1).len();
            }
        }

        let mut reps: Vec<u32> = Vec::with_capacity(distinct);
        let mut multiplicity: Vec<u32> = Vec::with_capacity(distinct);
        let mut offsets: Vec<u32> = Vec::with_capacity(distinct + 1);
        offsets.push(0);
        let mut hop_cursor = 0usize;
        for w in 0..order.len() {
            if new_run(w) {
                reps.push(order[w].1);
                multiplicity.push(1);
                hop_cursor += hops_of(order[w].1).len();
                offsets.push(dense_id(hop_cursor));
            } else if let Some(m) = multiplicity.last_mut() {
                *m += 1;
            }
        }
        debug_assert_eq!(reps.len(), distinct);
        debug_assert_eq!(hop_cursor, total);

        // Ids ascend with ASN (bulk interner) — the property the whole
        // determinism story above rests on.
        let interner = AsnInterner::from_ases(
            reps.iter()
                .flat_map(|&si| hops_of(si).iter().map(|&v| Asn(v))),
        );

        // Map hops to dense ids over contiguous path ranges in parallel,
        // each range writing its offset-table span of `ids` in place.
        let mut ids: Vec<u32> = vec![0; total];
        par::fill_ranges(
            par,
            256,
            reps.len(),
            &mut ids,
            |range| (offsets[range.end] - offsets[range.start]) as usize,
            |range, span| {
                let mut w = 0usize;
                for d in range {
                    for &v in hops_of(reps[d]) {
                        // lint: allow(panics, interner seeded from these same distinct paths covers every hop)
                        span[w] = interner.get(Asn(v)).expect("interned");
                        w += 1;
                    }
                }
            },
        );

        let (inv_offsets, inv_entries) = invert(&offsets, &ids, interner.len());
        PathArena {
            interner,
            offsets,
            ids,
            multiplicity,
            inv_offsets,
            inv_entries,
        }
    }

    /// Assemble an arena from raw parts **without** establishing the
    /// invariants — the corruption-fixture entry point for the audit
    /// tests. The inverted index is built only when the base invariants
    /// hold (a corrupt arena keeps an empty index so [`PathArena::validate`]
    /// can report the underlying problems instead of panicking).
    pub fn from_raw(
        interner: AsnInterner,
        offsets: Vec<u32>,
        ids: Vec<u32>,
        multiplicity: Vec<u32>,
    ) -> Self {
        let mut arena = PathArena {
            interner,
            offsets,
            ids,
            multiplicity,
            inv_offsets: Vec::new(),
            inv_entries: Vec::new(),
        };
        if arena.base_problems().is_empty() {
            let (io, ie) = invert(&arena.offsets, &arena.ids, arena.interner.len());
            arena.inv_offsets = io;
            arena.inv_entries = ie;
        }
        arena
    }

    /// Clone the arena's immutable structure with new multiplicities —
    /// the [`MutablePathArena`] fast path for batches that only shifted
    /// evidence weight between already-known paths. `multiplicity` must
    /// be in arena order with one entry per path.
    pub(crate) fn with_multiplicity(&self, multiplicity: Vec<u32>) -> PathArena {
        debug_assert_eq!(multiplicity.len(), self.multiplicity.len());
        PathArena {
            interner: self.interner.clone(),
            offsets: self.offsets.clone(),
            ids: self.ids.clone(),
            multiplicity,
            inv_offsets: self.inv_offsets.clone(),
            inv_entries: self.inv_entries.clone(),
        }
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.multiplicity.len()
    }

    /// True when the arena holds no paths.
    pub fn is_empty(&self) -> bool {
        self.multiplicity.is_empty()
    }

    /// Total hops across all distinct paths.
    pub fn total_hops(&self) -> usize {
        self.ids.len()
    }

    /// Number of distinct ASes appearing in the paths.
    pub fn num_ases(&self) -> usize {
        self.interner.len()
    }

    /// The dense-id interner (ids ascend with ASN).
    pub fn interner(&self) -> &AsnInterner {
        &self.interner
    }

    /// Hop ids of distinct path `p` (VP first, origin last).
    pub fn path(&self, p: usize) -> &[u32] {
        &self.ids[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// How many sanitized samples collapsed into distinct path `p`.
    pub fn multiplicity(&self, p: usize) -> u32 {
        self.multiplicity[p]
    }

    /// The raw CSR offsets (`len() + 1` entries, monotone).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat hop-id array.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Occurrences of dense id `a` as `(path, position)` pairs,
    /// ascending by path then position. `a` must be `< num_ases()`.
    pub fn occurrences(&self, a: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.inv_offsets[a as usize] as usize;
        let hi = self.inv_offsets[a as usize + 1] as usize;
        self.inv_entries[lo..hi]
            .iter()
            .map(|&e| ((e >> 32) as u32, e as u32))
    }

    /// Resolve distinct path `p` back to an [`AsPath`].
    pub fn resolve_path(&self, p: usize) -> AsPath {
        AsPath(self.path(p).iter().map(|&id| self.interner.resolve(id)).collect())
    }

    /// All distinct paths as owned [`AsPath`]s, in arena (ASN-lexicographic)
    /// order — the exact set and order the pipeline's old
    /// `HashSet<&AsPath>` + clone + sort produced.
    pub fn distinct_aspaths(&self) -> Vec<AsPath> {
        (0..self.len()).map(|p| self.resolve_path(p)).collect()
    }

    /// Violations of the base layout invariants: offsets monotone and
    /// terminated by `ids.len()`, every id in range, every multiplicity
    /// ≥ 1, and paths strictly ascending (sorted + actually distinct).
    fn base_problems(&self) -> Vec<String> {
        let mut problems: Vec<String> = Vec::new();
        let np = self.multiplicity.len();
        if self.offsets.len() != np + 1 {
            problems.push(format!(
                "offsets has {} entries for {np} path(s); expected {}",
                self.offsets.len(),
                np + 1
            ));
            return problems; // layout unusable; nothing below is safe
        }
        if self.offsets.first() != Some(&0) {
            problems.push("offsets does not start at 0".to_string());
        }
        if let Some(w) = self
            .offsets
            .windows(2)
            .position(|w| w[0] >= w[1])
        {
            problems.push(format!(
                "offsets not strictly increasing at path {w} ({} → {}); every sanitized path has ≥ 2 hops",
                self.offsets[w],
                self.offsets[w + 1]
            ));
            return problems;
        }
        if self.offsets.last().copied().unwrap_or(0) as usize != self.ids.len() {
            problems.push(format!(
                "offsets end at {} but ids has {} entries",
                self.offsets.last().copied().unwrap_or(0),
                self.ids.len()
            ));
            return problems;
        }
        let n = self.interner.len();
        for (i, &id) in self.ids.iter().enumerate() {
            if id as usize >= n {
                problems.push(format!("ids[{i}] = {id} out of range for {n} interned AS(es)"));
                break;
            }
        }
        if let Some(p) = self.multiplicity.iter().position(|&m| m == 0) {
            problems.push(format!("multiplicity[{p}] = 0; every distinct path collapses ≥ 1 sample"));
        }
        for p in 1..np {
            if self.path(p - 1) >= self.path(p) {
                problems.push(format!(
                    "paths {} and {p} not strictly ascending — arena not sorted or not deduplicated",
                    p - 1
                ));
                break;
            }
        }
        problems
    }

    /// Check every arena invariant, returning human-readable violations
    /// (empty = well-formed). Beyond the base layout checks this also
    /// verifies the inverted index: correct span totals and every
    /// `(path, position)` entry mapping back to its id.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = self.base_problems();
        if !problems.is_empty() {
            return problems;
        }
        let n = self.interner.len();
        if self.inv_offsets.len() != n + 1 || self.inv_entries.len() != self.ids.len() {
            problems.push(format!(
                "inverted index shape mismatch: {} offset(s) / {} entr(ies) for {n} AS(es) / {} hop(s)",
                self.inv_offsets.len(),
                self.inv_entries.len(),
                self.ids.len()
            ));
            return problems;
        }
        for a in 0..n {
            let (lo, hi) = (self.inv_offsets[a] as usize, self.inv_offsets[a + 1] as usize);
            if lo > hi || hi > self.inv_entries.len() {
                problems.push(format!("inverted index span of id {a} is malformed ({lo}..{hi})"));
                return problems;
            }
            for &e in &self.inv_entries[lo..hi] {
                let (p, pos) = ((e >> 32) as usize, e as u32 as usize);
                if p >= self.len() || pos >= self.path(p).len() || self.path(p)[pos] as usize != a {
                    problems.push(format!(
                        "inverted index entry (path {p}, pos {pos}) of id {a} does not map back"
                    ));
                    return problems;
                }
            }
        }
        problems
    }
}

impl PartialEq for PathArena {
    /// Structural equality over the defining fields; the inverted index
    /// is a deterministic function of `offsets`/`ids` and is not
    /// re-compared.
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.ids == other.ids
            && self.multiplicity == other.multiplicity
            && self.interner.len() == other.interner.len()
            && self.interner.iter().eq(other.interner.iter())
    }
}

impl Eq for PathArena {}

/// What one add/remove did to the distinct-path set — the event stream
/// the incremental engine's degree/clique evidence feeds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEvent {
    /// The path entered the distinct set (first sample, or a tombstone
    /// revived).
    AddedDistinct,
    /// The path left the distinct set (last sample gone).
    RemovedDistinct,
    /// Only the multiplicity moved; the distinct set is unchanged.
    MultChanged,
}

/// The in-place counterpart of [`PathArena`]: a canonical slot table
/// that absorbs per-sample path add/remove deltas and periodically
/// re-emits a bit-identical [`PathArena`].
///
/// Layout invariants (pinned by the build oracle proptest):
///
/// * **Slots are stable between compactions.** Base slots `0..base_n`
///   hold the distinct paths of some fully-built arena in arena
///   (ASN-lexicographic) order; appended paths occupy tail slots
///   `base_n + i` in arrival order. `index` maps hop content to its
///   slot, covering base and tail.
/// * **Multiplicity 0 is a tombstone.** Removing the last sample of a
///   path keeps its slot (and index entry) so a re-announce revives it
///   in place; tombstoned paths are excluded from canonicalization.
/// * **Canonicalize merges, never re-sorts the base.** Live base slots
///   are already in arena order; live tail paths are sorted and merged
///   in, then interned/flattened through the same `from_raw` path the
///   cold build uses — so the emitted arena is byte-identical to
///   rebuilding from scratch over the surviving sample multiset.
/// * **Compaction is threshold-driven.** When tombstones + tail exceed
///   ~1/8 of the live set, the merged result is adopted as the new base
///   and the index rebuilt; otherwise the (cheap) merge is recomputed
///   per canonicalize and the index keeps amortizing.
#[derive(Debug, Clone, Default)]
pub struct MutablePathArena {
    /// Flat ASN (not dense-id) hops of the base slots.
    base_hops: Vec<u32>,
    /// Base slot `b` spans `base_hops[off[b]..off[b+1]]`.
    base_offsets: Vec<u32>,
    /// Per-slot sample count, base slots then tail slots; 0 = tombstone.
    slot_mult: Vec<u32>,
    /// ASN hops of appended paths; tail slot `base_n + i`.
    tail: Vec<Box<[u32]>>,
    /// Hop content → slot, covering base and tail.
    index: FxHashMap<Box<[u32]>, u32>,
    /// Slot → position in the last canonicalized arena (`u32::MAX` when
    /// the slot was tombstoned or not yet emitted).
    canon_pos: Vec<u32>,
    /// Distinct set changed since the last canonicalize.
    structure_dirty: bool,
    /// Tombstoned slots (mult 0).
    dead: usize,
    /// The last canonicalized arena, reused wholesale when nothing (or
    /// only multiplicity) changed.
    prev: Option<Arc<PathArena>>,
}

impl MutablePathArena {
    /// Seed the mutable view from a fully-built arena (the cold run's).
    pub fn from_arena(arena: &Arc<PathArena>) -> Self {
        let base_hops: Vec<u32> = arena
            .ids
            .iter()
            .map(|&id| arena.interner.resolve(id).0)
            .collect();
        let base_offsets = arena.offsets.clone();
        let slot_mult = arena.multiplicity.clone();
        let mut index = FxHashMap::default();
        for p in 0..arena.len() {
            let span = &base_hops[base_offsets[p] as usize..base_offsets[p + 1] as usize];
            index.insert(span.to_vec().into_boxed_slice(), dense_id(p));
        }
        MutablePathArena {
            base_hops,
            base_offsets,
            slot_mult,
            tail: Vec::new(),
            index,
            canon_pos: (0..dense_id(arena.len())).collect(),
            structure_dirty: false,
            dead: 0,
            prev: Some(Arc::clone(arena)),
        }
    }

    /// Distinct live paths.
    pub fn live_len(&self) -> usize {
        self.slot_mult.len() - self.dead
    }

    /// Record one more sample observing `hops` (ASN values, ≥ 2 hops).
    pub fn add_one(&mut self, hops: &[u32]) -> PathEvent {
        if let Some(&slot) = self.index.get(hops) {
            let m = &mut self.slot_mult[slot as usize];
            *m += 1;
            if *m == 1 {
                // Tombstone revived: the distinct set regains the path.
                self.dead -= 1;
                self.structure_dirty = true;
                PathEvent::AddedDistinct
            } else {
                PathEvent::MultChanged
            }
        } else {
            let slot = dense_id(self.slot_mult.len());
            self.index.insert(hops.to_vec().into_boxed_slice(), slot);
            self.tail.push(hops.to_vec().into_boxed_slice());
            self.slot_mult.push(1);
            self.canon_pos.push(u32::MAX);
            self.structure_dirty = true;
            PathEvent::AddedDistinct
        }
    }

    /// Record the removal of one sample observing `hops`. Returns `None`
    /// when the path was not live — an upstream accounting bug the
    /// caller must surface as a typed error.
    pub fn remove_one(&mut self, hops: &[u32]) -> Option<PathEvent> {
        let &slot = self.index.get(hops)?;
        let m = &mut self.slot_mult[slot as usize];
        if *m == 0 {
            return None;
        }
        *m -= 1;
        Some(if *m == 0 {
            self.dead += 1;
            self.structure_dirty = true;
            PathEvent::RemovedDistinct
        } else {
            PathEvent::MultChanged
        })
    }

    /// Emit the canonical arena for the current state — bit-identical to
    /// [`PathArena::build_with`] over the equivalent sample multiset.
    ///
    /// Returns the previous `Arc` untouched when nothing changed, a
    /// structure-sharing multiplicity patch when only evidence weight
    /// moved, and a full merge + re-intern otherwise (compacting the
    /// slot table when the tombstone + tail overhead crosses the
    /// threshold).
    pub fn canonicalize(&mut self) -> Arc<PathArena> {
        let base_n = self.base_offsets.len() - 1;
        if !self.structure_dirty {
            if let Some(prev) = &self.prev {
                // Same distinct set as the last emission: project slot
                // multiplicities into canonical order and patch.
                let mut mult = vec![0u32; prev.len()];
                for (slot, &m) in self.slot_mult.iter().enumerate() {
                    if m > 0 {
                        mult[self.canon_pos[slot] as usize] = m;
                    }
                }
                if mult == prev.multiplicity {
                    return Arc::clone(prev);
                }
                let patched = Arc::new(prev.with_multiplicity(mult));
                self.prev = Some(Arc::clone(&patched));
                return patched;
            }
        }

        // Slow path: merge live base slots (already in arena order) with
        // the sorted live tail, then intern + flatten through from_raw —
        // the same constructors the cold build uses.
        let mut tail_live: Vec<u32> = (0..self.tail.len())
            .filter(|&i| self.slot_mult[base_n + i] > 0)
            .map(|i| dense_id(base_n + i))
            .collect();
        tail_live.sort_unstable_by(|&a, &b| self.slot_hops(a).cmp(self.slot_hops(b)));

        let live = self.live_len();
        let mut merged_slots: Vec<u32> = Vec::with_capacity(live);
        let mut ti = 0usize;
        for b in 0..base_n {
            if self.slot_mult[b] == 0 {
                continue;
            }
            let bh = self.slot_hops(dense_id(b));
            while ti < tail_live.len() && self.slot_hops(tail_live[ti]) < bh {
                merged_slots.push(tail_live[ti]);
                ti += 1;
            }
            merged_slots.push(dense_id(b));
        }
        merged_slots.extend_from_slice(&tail_live[ti..]);
        debug_assert_eq!(merged_slots.len(), live);

        for pos in self.canon_pos.iter_mut() {
            *pos = u32::MAX;
        }
        let mut offsets: Vec<u32> = Vec::with_capacity(live + 1);
        offsets.push(0);
        let mut total = 0usize;
        let mut multiplicity: Vec<u32> = Vec::with_capacity(live);
        for (pos, &slot) in merged_slots.iter().enumerate() {
            self.canon_pos[slot as usize] = dense_id(pos);
            total += self.slot_hops(slot).len();
            offsets.push(dense_id(total));
            multiplicity.push(self.slot_mult[slot as usize]);
        }
        let interner = AsnInterner::from_ases(
            merged_slots
                .iter()
                .flat_map(|&slot| self.slot_hops(slot).iter().map(|&v| Asn(v))),
        );
        let mut ids: Vec<u32> = Vec::with_capacity(total);
        for &slot in &merged_slots {
            for &v in self.slot_hops(slot) {
                // lint: allow(panics, interner seeded from these same live slots covers every hop)
                ids.push(interner.get(Asn(v)).expect("interned"));
            }
        }
        let arena = Arc::new(PathArena::from_raw(interner, offsets, ids, multiplicity));
        debug_assert!(arena.validate().is_empty());

        // Threshold compaction: adopt the merged order as the new base
        // once tombstones + tail cost more than ~1/8 of the live set.
        if self.dead + self.tail.len() > live / 8 + 64 {
            let mut base_hops: Vec<u32> = Vec::with_capacity(arena.total_hops());
            for &slot in &merged_slots {
                base_hops.extend_from_slice(self.slot_hops(slot));
            }
            self.base_hops = base_hops;
            self.base_offsets = arena.offsets.clone();
            self.slot_mult = arena.multiplicity.clone();
            self.tail.clear();
            self.dead = 0;
            self.canon_pos = (0..dense_id(live)).collect();
            self.index.clear();
            for p in 0..live {
                let span =
                    &self.base_hops[self.base_offsets[p] as usize..self.base_offsets[p + 1] as usize];
                self.index.insert(span.to_vec().into_boxed_slice(), dense_id(p));
            }
        }
        self.structure_dirty = false;
        self.prev = Some(Arc::clone(&arena));
        arena
    }

    /// ASN hops of `slot` (base or tail).
    fn slot_hops(&self, slot: u32) -> &[u32] {
        let base_n = self.base_offsets.len() - 1;
        let s = slot as usize;
        if s < base_n {
            &self.base_hops[self.base_offsets[s] as usize..self.base_offsets[s + 1] as usize]
        } else {
            &self.tail[s - base_n]
        }
    }
}

/// Counting-sort inversion of the flat hop array: for every dense id,
/// the packed `(path << 32) | position` occurrences, ascending.
fn invert(offsets: &[u32], ids: &[u32], n: usize) -> (Vec<u32>, Vec<u64>) {
    let mut inv_offsets = vec![0u32; n + 1];
    for &id in ids {
        inv_offsets[id as usize + 1] += 1;
    }
    for i in 1..=n {
        inv_offsets[i] += inv_offsets[i - 1];
    }
    let mut cursor: Vec<u32> = inv_offsets[..n].to_vec();
    let mut entries = vec![0u64; ids.len()];
    for p in 0..offsets.len().saturating_sub(1) {
        let (lo, hi) = (offsets[p] as usize, offsets[p + 1] as usize);
        for (pos, &id) in ids[lo..hi].iter().enumerate() {
            let slot = cursor[id as usize];
            entries[slot as usize] = ((p as u64) << 32) | pos as u64;
            cursor[id as usize] = slot + 1;
        }
    }
    (inv_offsets, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitize::{sanitize, SanitizeConfig};
    use std::collections::HashSet;

    fn sanitized(raw: &[&[u32]]) -> SanitizedPaths {
        let ps: PathSet = raw
            .iter()
            .enumerate()
            .map(|(i, p)| PathSample {
                vp: Asn(p[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(p.iter().copied()),
            })
            .collect();
        sanitize(&ps, &SanitizeConfig::default())
    }

    #[test]
    fn dedup_matches_hashset_distinct_sort() {
        // Satellite 1 pin: arena dedup order == old HashSet + clone +
        // sort_by(path.0) order, multiplicities counted.
        let raw: Vec<&[u32]> = vec![
            &[9, 1, 5, 7],
            &[9, 1, 5, 7], // duplicate
            &[8, 1, 5],
            &[9, 2, 5, 7],
            &[8, 1, 5], // duplicate
            &[7, 2, 1],
        ];
        let clean = sanitized(&raw);
        let arena = PathArena::build(&clean);

        let mut old: Vec<AsPath> = {
            let set: HashSet<&AsPath> = clean.paths().collect();
            set.into_iter().cloned().collect()
        };
        old.sort_by(|a, b| a.0.cmp(&b.0));

        assert_eq!(arena.distinct_aspaths(), old);
        assert_eq!(arena.len(), 4);
        let mults: Vec<u32> = (0..arena.len()).map(|p| arena.multiplicity(p)).collect();
        assert_eq!(mults.iter().sum::<u32>() as usize, clean.samples.len());
        assert!(mults.iter().filter(|&&m| m == 2).count() == 2);
    }

    #[test]
    fn inverted_index_is_complete_and_ordered() {
        let clean = sanitized(&[&[9, 1, 5, 7], &[8, 1, 5], &[7, 2, 1]]);
        let arena = PathArena::build(&clean);
        assert!(arena.validate().is_empty(), "{:?}", arena.validate());
        let mut seen = 0usize;
        for a in 0..dense_id(arena.num_ases()) {
            let occ: Vec<(u32, u32)> = arena.occurrences(a).collect();
            // Ascending by (path, position).
            assert!(occ.windows(2).all(|w| w[0] < w[1]), "id {a}: {occ:?}");
            for &(p, pos) in &occ {
                assert_eq!(arena.path(p as usize)[pos as usize], a);
            }
            seen += occ.len();
        }
        assert_eq!(seen, arena.total_hops());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let raw: Vec<Vec<u32>> = (0..120)
            .map(|i| vec![900 + i % 7, 50 + i % 11, 20 + i % 5, 10 + i % 3, 1])
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        let clean = sanitized(&refs);
        let seq = PathArena::build_with(&clean, Parallelism::sequential());
        let par = PathArena::build_with(&clean, Parallelism::threads(4));
        assert_eq!(seq.offsets, par.offsets);
        assert_eq!(seq.ids, par.ids);
        assert_eq!(seq.multiplicity, par.multiplicity);
        assert_eq!(seq.inv_offsets, par.inv_offsets);
        assert_eq!(seq.inv_entries, par.inv_entries);
    }

    #[test]
    fn validate_catches_corruption() {
        let clean = sanitized(&[&[9, 1, 5], &[8, 1, 5]]);
        let good = PathArena::build(&clean);
        assert!(good.validate().is_empty());

        // Non-monotone offsets.
        let bad = PathArena::from_raw(
            good.interner.clone(),
            vec![0, 3, 2],
            good.ids.clone(),
            good.multiplicity.clone(),
        );
        assert!(bad.validate().iter().any(|p| p.contains("strictly increasing")));

        // Out-of-range id.
        let mut ids = good.ids.clone();
        ids[0] = 999;
        let bad = PathArena::from_raw(
            good.interner.clone(),
            good.offsets.clone(),
            ids,
            good.multiplicity.clone(),
        );
        assert!(bad.validate().iter().any(|p| p.contains("out of range")));

        // Zero multiplicity.
        let bad = PathArena::from_raw(
            good.interner.clone(),
            good.offsets.clone(),
            good.ids.clone(),
            vec![1, 0],
        );
        assert!(bad.validate().iter().any(|p| p.contains("multiplicity")));

        // Duplicate (non-distinct) paths.
        let dup_ids: Vec<u32> = [good.path(0), good.path(0)].concat();
        let dup_off = vec![0, dense_id(good.path(0).len()), dense_id(dup_ids.len())];
        let bad = PathArena::from_raw(good.interner.clone(), dup_off, dup_ids, vec![1, 1]);
        assert!(bad.validate().iter().any(|p| p.contains("ascending")));
    }

    #[test]
    fn empty_input_yields_empty_arena() {
        let clean = sanitized(&[]);
        let arena = PathArena::build(&clean);
        assert!(arena.is_empty());
        assert_eq!(arena.offsets(), &[0]);
        assert!(arena.validate().is_empty());
        assert!(arena.distinct_aspaths().is_empty());
    }

    /// The rebuilt-from-scratch oracle: an arena built over one synthetic
    /// sample per `(path, repeat)` entry of the multiset. `build_with`
    /// only reads `sample.path`, so dummy vp/prefix values are fine.
    fn oracle_arena(multiset: &[Vec<u32>]) -> PathArena {
        let samples: Vec<PathSample> = multiset
            .iter()
            .enumerate()
            .map(|(i, hops)| PathSample {
                vp: Asn(hops[0]),
                prefix: Ipv4Prefix::new((i as u32) << 8, 24).unwrap(),
                path: AsPath::from_u32s(hops.iter().copied()),
            })
            .collect();
        let clean = SanitizedPaths {
            samples,
            report: Default::default(),
        };
        PathArena::build_with(&clean, Parallelism::sequential())
    }

    #[test]
    fn mutable_arena_no_change_returns_same_arc() {
        let base = Arc::new(oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5]]));
        let mut m = MutablePathArena::from_arena(&base);
        let out = m.canonicalize();
        assert!(Arc::ptr_eq(&base, &out), "unchanged state must reuse the Arc");
    }

    #[test]
    fn mutable_arena_mult_only_patch_matches_oracle() {
        let base = Arc::new(oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5]]));
        let mut m = MutablePathArena::from_arena(&base);
        assert_eq!(m.add_one(&[9, 1, 5]), PathEvent::MultChanged);
        let out = m.canonicalize();
        assert!(!Arc::ptr_eq(&base, &out));
        assert_eq!(
            *out,
            oracle_arena(&[vec![9, 1, 5], vec![9, 1, 5], vec![8, 1, 5]])
        );
        // Structure (offsets/ids) shared with the previous emission.
        assert_eq!(out.offsets(), base.offsets());
        assert_eq!(out.ids(), base.ids());
    }

    #[test]
    fn mutable_arena_add_remove_revive_matches_oracle() {
        let base = Arc::new(oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5]]));
        let mut m = MutablePathArena::from_arena(&base);

        // New distinct path with an unseen AS → full re-intern.
        assert_eq!(m.add_one(&[7, 3, 5]), PathEvent::AddedDistinct);
        let out = m.canonicalize();
        assert_eq!(
            *out,
            oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5], vec![7, 3, 5]])
        );
        assert!(out.validate().is_empty());

        // Tombstone the tail path again; the distinct set shrinks back.
        assert_eq!(m.remove_one(&[7, 3, 5]), Some(PathEvent::RemovedDistinct));
        assert_eq!(*m.canonicalize(), *base);

        // Revive it in place.
        assert_eq!(m.add_one(&[7, 3, 5]), PathEvent::AddedDistinct);
        assert_eq!(
            *m.canonicalize(),
            oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5], vec![7, 3, 5]])
        );

        // Removing a path that is not live is an upstream bug, not a panic.
        assert_eq!(m.remove_one(&[1, 2, 3, 4]), None);
        assert_eq!(m.remove_one(&[7, 3, 5]), Some(PathEvent::RemovedDistinct));
        assert_eq!(m.remove_one(&[7, 3, 5]), None);
    }

    #[test]
    fn mutable_arena_compaction_stays_canonical() {
        let base = Arc::new(oracle_arena(&[vec![9, 1, 5], vec![8, 1, 5]]));
        let mut m = MutablePathArena::from_arena(&base);
        // Push far past the tail threshold (live/8 + 64) to force the
        // compaction branch, canonicalizing along the way.
        let mut multiset = vec![vec![9, 1, 5], vec![8, 1, 5]];
        for i in 0..90u32 {
            let hops = vec![1000 + i, 500 + (i % 13), 1 + (i % 7)];
            assert_eq!(m.add_one(&hops), PathEvent::AddedDistinct);
            multiset.push(hops);
            if i % 17 == 0 {
                assert_eq!(*m.canonicalize(), oracle_arena(&multiset));
            }
        }
        let out = m.canonicalize();
        assert_eq!(*out, oracle_arena(&multiset));
        assert!(out.validate().is_empty());
        // Post-compaction the slot table keeps behaving canonically.
        assert_eq!(m.remove_one(&[9, 1, 5]), Some(PathEvent::RemovedDistinct));
        multiset.retain(|h| h != &[9, 1, 5]);
        assert_eq!(*m.canonicalize(), oracle_arena(&multiset));
    }

    mod mutable_oracle {
        use super::*;
        use proptest::prelude::*;

        /// One scripted mutation: add or remove the `i % pool`-th pool
        /// path, with a canonicalize sprinkled in every few ops.
        #[derive(Debug, Clone)]
        enum Op {
            Add(usize),
            Remove(usize),
            Canon,
        }

        fn op_strategy(pool: usize) -> impl Strategy<Value = Op> {
            (0u8..7, 0..pool).prop_map(|(kind, i)| match kind {
                0..=2 => Op::Add(i),
                3..=5 => Op::Remove(i),
                _ => Op::Canon,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Tentpole pin: any interleaving of adds, removes, and
            /// canonicalizations over a fixed path pool emits arenas
            /// bit-identical to rebuilding from scratch over the
            /// surviving sample multiset.
            #[test]
            fn mutation_matches_rebuild_oracle(
                pool in proptest::collection::vec(
                    proptest::collection::vec(1u32..40, 2..5),
                    1..12,
                ),
                init in proptest::collection::vec(any::<usize>(), 0..10),
                ops in proptest::collection::vec(op_strategy(64), 0..40),
            ) {
                let mut multiset: Vec<Vec<u32>> = init
                    .iter()
                    .map(|&ix| pool[ix % pool.len()].clone())
                    .collect();
                let base = Arc::new(oracle_arena(&multiset));
                let mut m = MutablePathArena::from_arena(&base);

                for op in ops {
                    match op {
                        Op::Add(i) => {
                            let hops = &pool[i % pool.len()];
                            let before_live = m.live_len();
                            let ev = m.add_one(hops);
                            multiset.push(hops.clone());
                            let was_new = !multiset[..multiset.len() - 1].contains(hops);
                            prop_assert_eq!(
                                ev,
                                if was_new { PathEvent::AddedDistinct } else { PathEvent::MultChanged }
                            );
                            prop_assert_eq!(m.live_len(), before_live + usize::from(was_new));
                        }
                        Op::Remove(i) => {
                            let hops = &pool[i % pool.len()];
                            let ev = m.remove_one(hops);
                            if let Some(pos) = multiset.iter().position(|h| h == hops) {
                                multiset.remove(pos);
                                let still_there = multiset.contains(hops);
                                prop_assert_eq!(
                                    ev,
                                    Some(if still_there {
                                        PathEvent::MultChanged
                                    } else {
                                        PathEvent::RemovedDistinct
                                    })
                                );
                            } else {
                                prop_assert_eq!(ev, None);
                            }
                        }
                        Op::Canon => {
                            let out = m.canonicalize();
                            prop_assert!(out.validate().is_empty());
                            prop_assert_eq!(&*out, &oracle_arena(&multiset));
                        }
                    }
                }
                let out = m.canonicalize();
                prop_assert!(out.validate().is_empty());
                prop_assert_eq!(&*out, &oracle_arena(&multiset));
                // Canonicalizing again without mutations reuses the Arc.
                let again = m.canonicalize();
                prop_assert!(Arc::ptr_eq(&out, &again));
            }
        }
    }
}
